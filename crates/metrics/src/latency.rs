//! Streaming latency histogram.

use mp2p_sim::SimDuration;

/// Number of log₂ buckets: bucket `i` holds latencies in
/// `[2^i, 2^(i+1)) ms`, bucket 0 holds `[0, 2) ms`; 32 buckets cover
/// ~49 days, far beyond any simulated latency.
const BUCKETS: usize = 32;

/// A streaming histogram of query latencies (the metric of Fig. 8 and
/// Fig. 9(b), plotted by the paper in log scale — hence log buckets).
///
/// # Example
///
/// ```
/// use mp2p_metrics::LatencyStats;
/// use mp2p_sim::SimDuration;
///
/// let mut l = LatencyStats::default();
/// for ms in [10, 20, 30, 40] {
///     l.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(l.count(), 4);
/// assert_eq!(l.mean(), SimDuration::from_millis(25));
/// assert!(l.percentile(0.5) >= SimDuration::from_millis(16));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyStats {
    buckets: [u64; BUCKETS],
    count: u64,
    total_ms: u64,
    max_ms: u64,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            buckets: [0; BUCKETS],
            count: 0,
            total_ms: 0,
            max_ms: 0,
        }
    }
}

impl LatencyStats {
    /// Records one observed latency.
    pub fn record(&mut self, latency: SimDuration) {
        let ms = latency.as_millis();
        let bucket = if ms < 2 {
            0
        } else {
            (ms.ilog2() as usize).min(BUCKETS - 1)
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ms += ms;
        self.max_ms = self.max_ms.max(ms);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean (not bucket-quantised).
    pub fn mean(&self) -> SimDuration {
        match self.total_ms.checked_div(self.count) {
            Some(ms) => SimDuration::from_millis(ms),
            None => SimDuration::ZERO,
        }
    }

    /// Mean in fractional seconds (convenient for tables).
    pub fn mean_secs(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ms as f64 / self.count as f64 / 1_000.0
        }
    }

    /// Largest observation.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_millis(self.max_ms)
    }

    /// Approximate `p`-quantile (bucket upper bound), `p` in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!(
            (0.0..=1.0).contains(&p),
            "percentile must be in [0,1], got {p}"
        );
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let rank = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket i, clamped to the observed max.
                let bound = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)).saturating_sub(1)
                };
                return SimDuration::from_millis(bound.min(self.max_ms));
            }
        }
        self.max()
    }

    /// Number of log₂ buckets (see [`LatencyStats::bucket`]).
    pub const BUCKETS: usize = BUCKETS;

    /// Observations in bucket `i`, which covers `[2^i, 2^(i+1)) ms`
    /// (bucket 0 covers `[0, 2) ms`). Used by the windowed registry's
    /// Prometheus exposition.
    ///
    /// # Panics
    ///
    /// Panics if `i >= LatencyStats::BUCKETS`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Exact sum of all observations, in milliseconds.
    pub fn sum_millis(&self) -> u64 {
        self.total_ms
    }

    /// Adds another instrument's observations into this one.
    pub fn merge(&mut self, other: &LatencyStats) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_ms += other.total_ms;
        self.max_ms = self.max_ms.max(other.max_ms);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_zero() {
        let l = LatencyStats::default();
        assert_eq!(l.count(), 0);
        assert_eq!(l.mean(), SimDuration::ZERO);
        assert_eq!(l.percentile(0.99), SimDuration::ZERO);
        assert_eq!(l.max(), SimDuration::ZERO);
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut l = LatencyStats::default();
        for ms in [5, 15, 100] {
            l.record(SimDuration::from_millis(ms));
        }
        assert_eq!(l.mean(), SimDuration::from_millis(40));
        assert_eq!(l.max(), SimDuration::from_millis(100));
    }

    #[test]
    fn percentile_is_monotone() {
        let mut l = LatencyStats::default();
        for ms in 1..=1_000u64 {
            l.record(SimDuration::from_millis(ms));
        }
        let p50 = l.percentile(0.5);
        let p90 = l.percentile(0.9);
        let p99 = l.percentile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= l.max());
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyStats::default();
        let mut b = LatencyStats::default();
        let mut c = LatencyStats::default();
        for ms in [3, 9, 27] {
            a.record(SimDuration::from_millis(ms));
            c.record(SimDuration::from_millis(ms));
        }
        for ms in [81, 243] {
            b.record(SimDuration::from_millis(ms));
            c.record(SimDuration::from_millis(ms));
        }
        a.merge(&b);
        assert_eq!(a, c);
    }

    #[test]
    fn bucket_boundaries_land_in_the_right_bucket() {
        // ms < 2 goes to bucket 0; otherwise bucket = floor(log2 ms),
        // so an exact power of two 2^i opens bucket i and 2^i - 1
        // still belongs to bucket i-1.
        let mut l = LatencyStats::default();
        l.record(SimDuration::from_millis(0));
        l.record(SimDuration::from_millis(1));
        assert_eq!(l.bucket(0), 2);
        for i in 1..20usize {
            let mut l = LatencyStats::default();
            let edge = 1u64 << i;
            l.record(SimDuration::from_millis(edge));
            l.record(SimDuration::from_millis(edge - 1));
            l.record(SimDuration::from_millis(2 * edge - 1));
            assert_eq!(l.bucket(i), 2, "2^{i} and 2^{{{i}+1}}-1 share bucket {i}");
            assert_eq!(l.bucket(i - 1), 1, "2^{i}-1 stays below bucket {i}");
        }
    }

    #[test]
    fn huge_values_clamp_to_the_last_bucket() {
        let mut l = LatencyStats::default();
        l.record(SimDuration::from_millis(u64::MAX / 2));
        assert_eq!(l.bucket(LatencyStats::BUCKETS - 1), 1);
        assert_eq!(l.count(), 1);
        // The percentile reports the last bucket's upper bound
        // (2^BUCKETS - 1 ms), which caps below the observed max.
        let bound = (1u64 << LatencyStats::BUCKETS) - 1;
        assert_eq!(l.percentile(1.0), SimDuration::from_millis(bound));
        assert!(l.percentile(1.0) <= l.max());
    }

    #[test]
    fn p99_on_tiny_samples_returns_the_top_observation_bucket() {
        // One observation: every percentile must resolve to it.
        let mut one = LatencyStats::default();
        one.record(SimDuration::from_millis(100));
        assert_eq!(one.percentile(0.99), SimDuration::from_millis(100));
        assert_eq!(one.percentile(0.01), SimDuration::from_millis(100));

        // Two observations far apart: p99 ranks to the larger one, p50
        // to the smaller one's bucket (upper bound 2^(i+1)-1).
        let mut two = LatencyStats::default();
        two.record(SimDuration::from_millis(10));
        two.record(SimDuration::from_millis(5_000));
        assert_eq!(two.percentile(0.99), SimDuration::from_millis(5_000));
        assert_eq!(two.percentile(0.5), SimDuration::from_millis(15));

        // p = 0 still ranks at least one observation deep.
        assert_eq!(two.percentile(0.0), SimDuration::from_millis(15));
    }

    #[test]
    fn sum_and_bucket_accessors_agree_with_recording() {
        let mut l = LatencyStats::default();
        for ms in [1, 2, 3, 4, 1_000] {
            l.record(SimDuration::from_millis(ms));
        }
        assert_eq!(l.sum_millis(), 1_010);
        let total: u64 = (0..LatencyStats::BUCKETS).map(|i| l.bucket(i)).sum();
        assert_eq!(total, l.count());
    }

    proptest! {
        #[test]
        fn prop_percentile_bounded_by_max(ms_list in proptest::collection::vec(0u64..100_000, 1..200), p in 0.0f64..1.0) {
            let mut l = LatencyStats::default();
            for ms in &ms_list {
                l.record(SimDuration::from_millis(*ms));
            }
            prop_assert!(l.percentile(p) <= l.max());
            prop_assert_eq!(l.count(), ms_list.len() as u64);
        }
    }
}
