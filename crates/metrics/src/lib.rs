//! Measurement instruments for the RPCC evaluation.
//!
//! The paper's figures report two primary metrics — **network traffic**
//! (number of messages, Fig. 7/9a) and **query latency** (Fig. 8/9b) —
//! plus motivating concerns it discusses but does not plot (energy,
//! staleness). This crate provides the corresponding instruments:
//!
//! * [`TrafficStats`] — MAC-level transmissions and bytes by
//!   [`MessageClass`] (each hop of each message counts once, matching the
//!   GloMoSim message counters the paper plots).
//! * [`LatencyStats`] — a streaming log-bucket histogram of query
//!   latencies with mean/percentile/max readouts.
//! * [`ConsistencyAudit`] + [`VersionHistory`] — ground-truth staleness
//!   auditing: for every served query, how far behind the master copy the
//!   answer was (in versions and in seconds), per consistency level.
//! * [`EnergyModel`] / [`PeerEnergy`] — the battery model behind the
//!   paper's `CE` coefficient (Eq. 4.2.7).
//! * [`Gauge`] — a generic sampled time series (relay-peer population,
//!   route-table sizes, …).
//! * [`Registry`] — named windowed counters/gauges/histograms with JSON
//!   and Prometheus-style snapshots (percentiles *over time*, not just
//!   end-of-run aggregates).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod energy;
mod gauge;
mod latency;
mod registry;
mod staleness;
mod traffic;

pub use energy::{EnergyModel, PeerEnergy};
pub use gauge::Gauge;
pub use latency::LatencyStats;
pub use registry::{
    metric_name, valid_label_key, valid_metric_name, Registry, WindowedCounter, WindowedGauge,
    WindowedHistogram,
};
pub use staleness::{
    age_bucket, ConsistencyAudit, ServedQuery, VersionHistory, AGE_BUCKETS, AGE_BUCKET_EDGES,
};
pub use traffic::{MessageClass, TrafficStats};
