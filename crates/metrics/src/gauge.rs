//! Sampled time-series gauge.

/// A periodically sampled scalar (relay-peer population, route-table
/// size, …) with streaming mean/min/max.
///
/// # Example
///
/// ```
/// use mp2p_metrics::Gauge;
///
/// let mut g = Gauge::default();
/// g.sample(2.0);
/// g.sample(4.0);
/// assert_eq!(g.mean(), 3.0);
/// assert_eq!(g.max(), 4.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Gauge {
    count: u64,
    total: f64,
    min: f64,
    max: f64,
    last: f64,
}

impl Gauge {
    /// Records one sample.
    pub fn sample(&mut self, value: f64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.total += value;
        self.last = value;
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total / self.count as f64
        }
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Most recent sample (0 when empty).
    pub fn last(&self) -> f64 {
        self.last
    }

    /// Adds another gauge's samples into this one.
    pub fn merge(&mut self, other: &Gauge) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.total += other.total;
        self.last = other.last;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_gauge_reads_zero() {
        let g = Gauge::default();
        assert_eq!((g.count(), g.mean(), g.min(), g.max()), (0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn tracks_extremes_and_mean() {
        let mut g = Gauge::default();
        for v in [5.0, -1.0, 8.0] {
            g.sample(v);
        }
        assert_eq!(g.min(), -1.0);
        assert_eq!(g.max(), 8.0);
        assert_eq!(g.mean(), 4.0);
        assert_eq!(g.last(), 8.0);
    }

    #[test]
    fn merge_matches_sequential_sampling() {
        let mut a = Gauge::default();
        let mut b = Gauge::default();
        let mut c = Gauge::default();
        for v in [1.0, 2.0] {
            a.sample(v);
            c.sample(v);
        }
        for v in [3.0, 4.0] {
            b.sample(v);
            c.sample(v);
        }
        a.merge(&b);
        assert_eq!(a, c);
        let mut empty = Gauge::default();
        empty.merge(&c);
        assert_eq!(empty, c);
    }
}
