//! Ground-truth consistency auditing.
//!
//! The simulator knows the master version of every item at every instant,
//! so it can audit each served query against the definitions of
//! Section 3: strong consistency (Eq. 3.2.1) demands the served version
//! equals the master version at serve time; Δ-consistency (Eq. 3.2.2)
//! allows the served value to be at most Δ behind; weak consistency
//! (Eq. 3.2.3) only demands *some* previous correct value.

use mp2p_cache::Version;
use mp2p_sim::{SimDuration, SimTime};

/// The times at which each version of one item became current.
///
/// Version `v` became current at `installed(v)`; it stopped being current
/// at `installed(v + 1)` (if that update happened yet).
///
/// # Example
///
/// ```
/// use mp2p_cache::Version;
/// use mp2p_metrics::VersionHistory;
/// use mp2p_sim::{SimDuration, SimTime};
///
/// let mut h = VersionHistory::new();
/// h.record_update(SimTime::from_millis(1_000)); // v1
/// assert_eq!(h.current(), Version::new(1));
/// // v0 was superseded at t=1s, so at t=3s it is 2s stale:
/// let staleness = h.staleness(Version::new(0), SimTime::from_millis(3_000));
/// assert_eq!(staleness, SimDuration::from_secs(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VersionHistory {
    /// `installed[v]` = when version `v` became current; `installed[0]` is
    /// creation (time zero).
    installed: Vec<SimTime>,
}

impl VersionHistory {
    /// History of an item created at time zero with version 0.
    pub fn new() -> Self {
        VersionHistory {
            installed: vec![SimTime::ZERO],
        }
    }

    /// Records a master update at `now`; the item's version increments.
    pub fn record_update(&mut self, now: SimTime) {
        self.installed.push(now);
    }

    /// The current master version.
    pub fn current(&self) -> Version {
        Version::new(self.installed.len() as u64 - 1)
    }

    /// When `version` became current, if it ever existed.
    pub fn installed_at(&self, version: Version) -> Option<SimTime> {
        self.installed.get(version.get() as usize).copied()
    }

    /// How long `version` had been superseded by `now`
    /// ([`SimDuration::ZERO`] if it is still current).
    pub fn staleness(&self, version: Version, now: SimTime) -> SimDuration {
        match self.installed.get(version.get() as usize + 1) {
            Some(&superseded) => now.saturating_since(superseded),
            None => SimDuration::ZERO,
        }
    }
}

/// Upper edges (exclusive) of the staleness-age histogram buckets used by
/// the consistency observatory's divergence sampler. An age falls in
/// bucket `i` iff it is `< AGE_BUCKET_EDGES[i]` and not below any earlier
/// edge; ages at or past the last edge land in the overflow bucket. An
/// age *exactly on* an edge therefore belongs to the bucket above it.
pub const AGE_BUCKET_EDGES: [SimDuration; 5] = [
    SimDuration::from_secs(1),
    SimDuration::from_secs(5),
    SimDuration::from_secs(15),
    SimDuration::from_secs(60),
    SimDuration::from_secs(300),
];

/// Number of staleness-age histogram buckets (the edges plus overflow).
pub const AGE_BUCKETS: usize = AGE_BUCKET_EDGES.len() + 1;

/// The histogram bucket a staleness age falls into (see
/// [`AGE_BUCKET_EDGES`] for the edge convention).
///
/// # Example
///
/// ```
/// use mp2p_metrics::{age_bucket, AGE_BUCKETS};
/// use mp2p_sim::SimDuration;
///
/// assert_eq!(age_bucket(SimDuration::ZERO), 0);
/// assert_eq!(age_bucket(SimDuration::from_secs(1)), 1); // exact edge: above
/// assert_eq!(age_bucket(SimDuration::from_secs(999)), AGE_BUCKETS - 1);
/// ```
pub fn age_bucket(age: SimDuration) -> usize {
    AGE_BUCKET_EDGES
        .iter()
        .position(|&edge| age < edge)
        .unwrap_or(AGE_BUCKET_EDGES.len())
}

/// One served query, as reported to the audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServedQuery {
    /// Version the cache answered with.
    pub served: Version,
    /// Master version at the moment of the answer.
    pub master: Version,
    /// How long the served version had been superseded (zero if current).
    pub staleness: SimDuration,
}

/// Aggregate consistency audit over all served queries of a run.
///
/// # Example
///
/// ```
/// use mp2p_cache::Version;
/// use mp2p_metrics::{ConsistencyAudit, ServedQuery};
/// use mp2p_sim::SimDuration;
///
/// let mut audit = ConsistencyAudit::default();
/// audit.record(ServedQuery {
///     served: Version::new(2),
///     master: Version::new(2),
///     staleness: SimDuration::ZERO,
/// });
/// assert_eq!(audit.fresh_fraction(), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConsistencyAudit {
    served: u64,
    stale_served: u64,
    total_staleness_ms: u64,
    max_staleness_ms: u64,
    max_version_lag: u64,
}

impl ConsistencyAudit {
    /// Records one served query.
    ///
    /// # Panics
    ///
    /// Panics if `served` exceeds `master` — a cache can never hold a
    /// version the source has not produced; such a report is a simulator
    /// bug, not a protocol property.
    pub fn record(&mut self, q: ServedQuery) {
        assert!(
            q.served <= q.master,
            "cache served {} but master is {}: version invented from nowhere",
            q.served,
            q.master
        );
        self.served += 1;
        if q.served < q.master {
            self.stale_served += 1;
            self.total_staleness_ms += q.staleness.as_millis();
            self.max_staleness_ms = self.max_staleness_ms.max(q.staleness.as_millis());
            self.max_version_lag = self.max_version_lag.max(q.master.get() - q.served.get());
        }
    }

    /// Queries served in total.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Queries answered with a superseded version.
    pub fn stale_served(&self) -> u64 {
        self.stale_served
    }

    /// Fraction of answers that were the current master version
    /// (1.0 when nothing was served).
    pub fn fresh_fraction(&self) -> f64 {
        if self.served == 0 {
            1.0
        } else {
            1.0 - self.stale_served as f64 / self.served as f64
        }
    }

    /// Largest observed time-staleness of an answer.
    pub fn max_staleness(&self) -> SimDuration {
        SimDuration::from_millis(self.max_staleness_ms)
    }

    /// Mean time-staleness over *stale* answers only.
    pub fn mean_staleness_of_stale(&self) -> SimDuration {
        match self.total_staleness_ms.checked_div(self.stale_served) {
            Some(ms) => SimDuration::from_millis(ms),
            None => SimDuration::ZERO,
        }
    }

    /// Largest observed version lag of an answer.
    pub fn max_version_lag(&self) -> u64 {
        self.max_version_lag
    }

    /// Adds another audit into this one.
    pub fn merge(&mut self, other: &ConsistencyAudit) {
        self.served += other.served;
        self.stale_served += other.stale_served;
        self.total_staleness_ms += other.total_staleness_ms;
        self.max_staleness_ms = self.max_staleness_ms.max(other.max_staleness_ms);
        self.max_version_lag = self.max_version_lag.max(other.max_version_lag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn history_tracks_current_version() {
        let mut h = VersionHistory::new();
        assert_eq!(h.current(), Version::new(0));
        h.record_update(SimTime::from_millis(100));
        h.record_update(SimTime::from_millis(300));
        assert_eq!(h.current(), Version::new(2));
        assert_eq!(
            h.installed_at(Version::new(1)),
            Some(SimTime::from_millis(100))
        );
        assert_eq!(h.installed_at(Version::new(9)), None);
    }

    #[test]
    fn staleness_of_current_version_is_zero() {
        let mut h = VersionHistory::new();
        h.record_update(SimTime::from_millis(100));
        assert_eq!(
            h.staleness(Version::new(1), SimTime::from_millis(5_000)),
            SimDuration::ZERO
        );
        assert_eq!(
            h.staleness(Version::new(0), SimTime::from_millis(5_000)),
            SimDuration::from_millis(4_900)
        );
    }

    #[test]
    fn audit_accumulates() {
        let mut a = ConsistencyAudit::default();
        a.record(ServedQuery {
            served: Version::new(1),
            master: Version::new(1),
            staleness: SimDuration::ZERO,
        });
        a.record(ServedQuery {
            served: Version::new(1),
            master: Version::new(3),
            staleness: SimDuration::from_secs(7),
        });
        assert_eq!(a.served(), 2);
        assert_eq!(a.stale_served(), 1);
        assert_eq!(a.fresh_fraction(), 0.5);
        assert_eq!(a.max_staleness(), SimDuration::from_secs(7));
        assert_eq!(a.max_version_lag(), 2);
        assert_eq!(a.mean_staleness_of_stale(), SimDuration::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "version invented")]
    fn audit_rejects_future_versions() {
        let mut a = ConsistencyAudit::default();
        a.record(ServedQuery {
            served: Version::new(2),
            master: Version::new(1),
            staleness: SimDuration::ZERO,
        });
    }

    #[test]
    fn merge_combines() {
        let mut a = ConsistencyAudit::default();
        let mut b = ConsistencyAudit::default();
        a.record(ServedQuery {
            served: Version::new(0),
            master: Version::new(0),
            staleness: SimDuration::ZERO,
        });
        b.record(ServedQuery {
            served: Version::new(0),
            master: Version::new(2),
            staleness: SimDuration::from_secs(1),
        });
        a.merge(&b);
        assert_eq!(a.served(), 2);
        assert_eq!(a.stale_served(), 1);
    }
}
