//! Windowed time-series metrics registry.
//!
//! End-of-run instruments ([`crate::TrafficStats`], [`crate::LatencyStats`])
//! answer "what happened over the whole run"; production stacks are driven
//! by *percentiles over time*. A [`Registry`] holds named counters, gauges
//! and histograms, each sliced into fixed sim-time windows (60 s by
//! default), and snapshots either as hand-rolled JSON or as a
//! Prometheus-style text exposition.
//!
//! Metric names are plain strings and may embed Prometheus-style labels
//! (`traffic_sends_total{class="POLL"}`); the registry treats the whole
//! string as the key and only splits the base name off for `# TYPE`
//! comment lines.

use std::collections::BTreeMap;

use mp2p_sim::{SimDuration, SimTime};

use crate::latency::LatencyStats;

/// A monotone counter sliced into fixed windows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowedCounter {
    /// Increment sum per window, index = window number since t = 0.
    series: Vec<u64>,
    total: u64,
}

impl WindowedCounter {
    /// Total across all windows.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-window increments (index = window number; trailing windows
    /// with no activity are absent).
    pub fn series(&self) -> &[u64] {
        &self.series
    }
}

/// A last-write-wins gauge sampled into fixed windows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowedGauge {
    /// Last value set within each window (`None` = never set there).
    series: Vec<Option<i64>>,
    last: Option<i64>,
}

impl WindowedGauge {
    /// The most recently set value.
    pub fn last(&self) -> Option<i64> {
        self.last
    }

    /// Per-window last values (index = window number).
    pub fn series(&self) -> &[Option<i64>] {
        &self.series
    }
}

/// A latency histogram sliced into fixed windows, with a cumulative
/// all-run histogram kept alongside so whole-run percentiles stay exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WindowedHistogram {
    series: Vec<LatencyStats>,
    cumulative: LatencyStats,
}

impl WindowedHistogram {
    /// The whole-run histogram (every observation, all windows).
    pub fn cumulative(&self) -> &LatencyStats {
        &self.cumulative
    }

    /// Per-window histograms (index = window number).
    pub fn series(&self) -> &[LatencyStats] {
        &self.series
    }
}

/// A registry of named windowed metrics.
///
/// # Example
///
/// ```
/// use mp2p_metrics::Registry;
/// use mp2p_sim::{SimDuration, SimTime};
///
/// let mut reg = Registry::new(SimDuration::from_secs(60));
/// reg.counter_add("queries_total", SimTime::from_millis(5_000), 1);
/// reg.counter_add("queries_total", SimTime::from_millis(65_000), 2);
/// reg.observe(
///     "latency_ms",
///     SimTime::from_millis(65_000),
///     SimDuration::from_millis(40),
/// );
/// let c = reg.counter("queries_total").unwrap();
/// assert_eq!(c.total(), 3);
/// assert_eq!(c.series(), &[1, 2]);
/// assert!(reg.to_json().starts_with("{\"window_ms\":60000"));
/// ```
#[derive(Debug, Clone)]
pub struct Registry {
    window: SimDuration,
    counters: BTreeMap<String, WindowedCounter>,
    gauges: BTreeMap<String, WindowedGauge>,
    histograms: BTreeMap<String, WindowedHistogram>,
}

impl Registry {
    /// Creates a registry slicing time into `window`-sized buckets.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: SimDuration) -> Self {
        assert!(
            window > SimDuration::ZERO,
            "registry window must be non-zero"
        );
        Registry {
            window,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// The configured window width.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    fn window_index(&self, at: SimTime) -> usize {
        (at.as_millis() / self.window.as_millis()) as usize
    }

    /// Adds `delta` to the counter `name` in the window containing `at`.
    pub fn counter_add(&mut self, name: &str, at: SimTime, delta: u64) {
        let idx = self.window_index(at);
        let c = self.counters.entry(name.to_owned()).or_default();
        if c.series.len() <= idx {
            c.series.resize(idx + 1, 0);
        }
        c.series[idx] += delta;
        c.total += delta;
    }

    /// Sets the gauge `name` to `value` in the window containing `at`
    /// (last write within a window wins).
    pub fn gauge_set(&mut self, name: &str, at: SimTime, value: i64) {
        let idx = self.window_index(at);
        let g = self.gauges.entry(name.to_owned()).or_default();
        if g.series.len() <= idx {
            g.series.resize(idx + 1, None);
        }
        g.series[idx] = Some(value);
        g.last = Some(value);
    }

    /// Records one observation into the histogram `name`, both in the
    /// window containing `at` and cumulatively.
    pub fn observe(&mut self, name: &str, at: SimTime, value: SimDuration) {
        let idx = self.window_index(at);
        let h = self.histograms.entry(name.to_owned()).or_default();
        if h.series.len() <= idx {
            h.series.resize(idx + 1, LatencyStats::default());
        }
        h.series[idx].record(value);
        h.cumulative.record(value);
    }

    /// Looks up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<&WindowedCounter> {
        self.counters.get(name)
    }

    /// Looks up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<&WindowedGauge> {
        self.gauges.get(name)
    }

    /// Looks up a histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&WindowedHistogram> {
        self.histograms.get(name)
    }

    /// Names of all counters, sorted.
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// Names of all gauges, sorted.
    pub fn gauge_names(&self) -> impl Iterator<Item = &str> {
        self.gauges.keys().map(String::as_str)
    }

    /// Names of all histograms, sorted.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }

    /// The number of windows spanned by the busiest series.
    pub fn window_count(&self) -> usize {
        let c = self.counters.values().map(|c| c.series.len()).max();
        let g = self.gauges.values().map(|g| g.series.len()).max();
        let h = self.histograms.values().map(|h| h.series.len()).max();
        c.into_iter().chain(g).chain(h).max().unwrap_or(0)
    }

    /// Serialises the whole registry as one JSON object (hand-rolled —
    /// the build environment has no serde).
    pub fn to_json(&self) -> String {
        use std::fmt::Write;

        let mut out = String::with_capacity(1024);
        let _ = write!(out, "{{\"window_ms\":{}", self.window.as_millis());

        out.push_str(",\"counters\":{");
        for (i, (name, c)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            let _ = write!(out, ":{{\"total\":{},\"series\":[", c.total);
            for (j, v) in c.series.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push_str("]}");
        }
        out.push('}');

        out.push_str(",\"gauges\":{");
        for (i, (name, g)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            out.push_str(":{\"last\":");
            match g.last {
                Some(v) => {
                    let _ = write!(out, "{v}");
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"series\":[");
            for (j, v) in g.series.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match v {
                    Some(v) => {
                        let _ = write!(out, "{v}");
                    }
                    None => out.push_str("null"),
                }
            }
            out.push_str("]}");
        }
        out.push('}');

        out.push_str(",\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            escape_into(&mut out, name);
            out.push(':');
            write_histogram_json(&mut out, &h.cumulative);
            // Re-open the cumulative object to append the window series.
            out.pop();
            out.push_str(",\"series\":[");
            for (j, w) in h.series.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_histogram_json(&mut out, w);
            }
            out.push_str("]}");
        }
        out.push('}');

        out.push('}');
        out
    }

    /// Renders the registry in Prometheus text exposition format
    /// (counters and gauges as-is, histograms as summaries with
    /// `quantile` labels plus `_sum`/`_count`).
    ///
    /// Each metric *family* (base name with labels stripped) gets exactly
    /// one `# TYPE` line, even when many labelled series share it.
    pub fn render_prometheus(&self) -> String {
        use std::collections::BTreeSet;
        use std::fmt::Write;

        // Families already typed. A set rather than compare-with-previous:
        // BTreeMap iteration order can interleave families ('{' sorts
        // after some name characters), so same-family keys need not be
        // adjacent.
        let mut typed: BTreeSet<&str> = BTreeSet::new();
        let mut out = String::with_capacity(1024);
        for (name, c) in &self.counters {
            let base = base_name(name);
            if typed.insert(base) {
                let _ = writeln!(out, "# TYPE {base} counter");
            }
            let _ = writeln!(out, "{} {}", name, c.total);
        }
        for (name, g) in &self.gauges {
            let base = base_name(name);
            if typed.insert(base) {
                let _ = writeln!(out, "# TYPE {base} gauge");
            }
            let _ = writeln!(out, "{} {}", name, g.last.unwrap_or(0));
        }
        for (name, h) in &self.histograms {
            let base = base_name(name);
            if typed.insert(base) {
                let _ = writeln!(out, "# TYPE {base} summary");
            }
            let cum = &h.cumulative;
            for (p, tag) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                let _ = writeln!(
                    out,
                    "{} {}",
                    with_label(name, "quantile", tag),
                    cum.percentile(p).as_millis()
                );
            }
            let _ = writeln!(out, "{} {}", suffixed(name, "_sum"), cum.sum_millis());
            let _ = writeln!(out, "{} {}", suffixed(name, "_count"), cum.count());
        }
        out
    }
}

/// Writes one histogram snapshot object: count, mean, max, p50/p95/p99.
fn write_histogram_json(out: &mut String, h: &LatencyStats) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"count\":{},\"sum_ms\":{},\"max_ms\":{},\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{}}}",
        h.count(),
        h.sum_millis(),
        h.max().as_millis(),
        h.percentile(0.5).as_millis(),
        h.percentile(0.95).as_millis(),
        h.percentile(0.99).as_millis(),
    );
}

/// The metric name with any `{label="…"}` suffix stripped (for `# TYPE`).
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Builds a registry key `base{k1="v1",k2="v2"}` with label values
/// escaped per the Prometheus text exposition format (`\\` for a
/// backslash, `\"` for a double quote, `\n` for a line feed). With no
/// labels the base name is returned bare.
///
/// Use this instead of `format!` whenever a label value is not a known
/// literal — a raw `"` or newline in a value otherwise corrupts the
/// whole exposition.
///
/// # Panics
///
/// Panics (debug builds) if `base` or a label key strays outside the
/// Prometheus name charsets (`[a-zA-Z_:][a-zA-Z0-9_:]*` for metric
/// names, `[a-zA-Z_][a-zA-Z0-9_]*` for label keys).
pub fn metric_name(base: &str, labels: &[(&str, &str)]) -> String {
    debug_assert!(valid_metric_name(base), "bad metric name {base:?}");
    if labels.is_empty() {
        return base.to_owned();
    }
    let mut out = String::with_capacity(base.len() + 16 * labels.len());
    out.push_str(base);
    out.push('{');
    for (i, (key, value)) in labels.iter().enumerate() {
        debug_assert!(valid_label_key(key), "bad label key {key:?}");
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        for c in value.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Whether `name` matches the Prometheus metric-name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Whether `key` matches the Prometheus label-key charset
/// `[a-zA-Z_][a-zA-Z0-9_]*`.
pub fn valid_label_key(key: &str) -> bool {
    let mut chars = key.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Inserts `key="value"` into the name's label set, creating one if the
/// name has none: `a{x="1"}` → `a{x="1",quantile="0.5"}`.
fn with_label(name: &str, key: &str, value: &str) -> String {
    match name.strip_suffix('}') {
        Some(head) => format!("{head},{key}=\"{value}\"}}"),
        None => format!("{name}{{{key}=\"{value}\"}}"),
    }
}

/// Appends a suffix to the base name, keeping any label set in place:
/// `a{x="1"}` + `_sum` → `a_sum{x="1"}`.
fn suffixed(name: &str, suffix: &str) -> String {
    match name.find('{') {
        Some(i) => format!("{}{}{}", &name[..i], suffix, &name[i..]),
        None => format!("{name}{suffix}"),
    }
}

/// Minimal JSON string escaping for metric names (quote, backslash,
/// control characters). Mirrors the trace crate's escaper without
/// creating a dependency cycle.
fn escape_into(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn counters_slice_into_windows() {
        let mut reg = Registry::new(SimDuration::from_secs(60));
        reg.counter_add("sends", t(0), 1);
        reg.counter_add("sends", t(59_999), 1);
        reg.counter_add("sends", t(60_000), 5);
        reg.counter_add("sends", t(180_000), 2);
        let c = reg.counter("sends").unwrap();
        assert_eq!(c.total(), 9);
        assert_eq!(c.series(), &[2, 5, 0, 2]);
        assert_eq!(reg.window_count(), 4);
    }

    #[test]
    fn gauges_are_last_write_wins_per_window() {
        let mut reg = Registry::new(SimDuration::from_secs(60));
        reg.gauge_set("relays", t(5_000), 3);
        reg.gauge_set("relays", t(30_000), 7);
        reg.gauge_set("relays", t(125_000), 4);
        let g = reg.gauge("relays").unwrap();
        assert_eq!(g.last(), Some(4));
        assert_eq!(g.series(), &[Some(7), None, Some(4)]);
    }

    #[test]
    fn windowed_histogram_cumulative_agrees_with_flat_stats() {
        // Satellite: identical input into the classic LatencyStats and
        // the windowed histogram must agree exactly (cumulative side),
        // and the window series must partition the observations.
        let mut flat = LatencyStats::default();
        let mut reg = Registry::new(SimDuration::from_secs(60));
        let inputs: Vec<(u64, u64)> = (0..500)
            .map(|i| (i * 731 % 300_000, (i * 37) % 10_000))
            .collect();
        for &(at_ms, lat_ms) in &inputs {
            flat.record(SimDuration::from_millis(lat_ms));
            reg.observe("lat", t(at_ms), SimDuration::from_millis(lat_ms));
        }
        let h = reg.histogram("lat").unwrap();
        assert_eq!(h.cumulative(), &flat);
        assert_eq!(h.cumulative().percentile(0.99), flat.percentile(0.99));
        let window_total: u64 = h.series().iter().map(|w| w.count()).sum();
        assert_eq!(window_total, flat.count());
        // Merging the windows reproduces the cumulative histogram.
        let mut merged = LatencyStats::default();
        for w in h.series() {
            merged.merge(w);
        }
        assert_eq!(&merged, h.cumulative());
    }

    #[test]
    fn json_snapshot_has_every_section() {
        let mut reg = Registry::new(SimDuration::from_secs(60));
        reg.counter_add("a_total", t(1), 2);
        reg.gauge_set("b", t(1), -3);
        reg.observe("c_ms", t(1), SimDuration::from_millis(10));
        let json = reg.to_json();
        assert!(json.starts_with("{\"window_ms\":60000,"));
        assert!(json.contains("\"a_total\":{\"total\":2,\"series\":[2]}"));
        assert!(json.contains("\"b\":{\"last\":-3,\"series\":[-3]}"));
        assert!(json.contains("\"c_ms\":{\"count\":1,"));
        assert!(json.contains("\"series\":[{\"count\":1,"));
        // Balanced braces (cheap well-formedness check; full validation
        // happens in the trace crate's parser tests).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn prometheus_rendering_handles_labels() {
        let mut reg = Registry::new(SimDuration::from_secs(60));
        reg.counter_add("sends_total{class=\"POLL\"}", t(1), 4);
        reg.gauge_set("relays", t(1), 6);
        reg.observe("lat_ms", t(1), SimDuration::from_millis(100));
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE sends_total counter\n"));
        assert!(text.contains("sends_total{class=\"POLL\"} 4\n"));
        assert!(text.contains("# TYPE relays gauge\nrelays 6\n"));
        assert!(text.contains("lat_ms{quantile=\"0.99\"} 100\n"));
        assert!(text.contains("lat_ms_sum 100\n"));
        assert!(text.contains("lat_ms_count 1\n"));
    }

    #[test]
    fn one_type_line_per_family() {
        let mut reg = Registry::new(SimDuration::from_secs(60));
        reg.counter_add("sends_total{class=\"POLL\"}", t(1), 4);
        reg.counter_add("sends_total{class=\"UPDATE\"}", t(1), 2);
        // A base name sorting *between* the two labelled keys ('x' < '{'
        // in ASCII) — the dedup must survive interleaved iteration order.
        reg.counter_add("sends_totalx", t(1), 1);
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE sends_total counter\n").count(), 1);
        assert_eq!(text.matches("# TYPE sends_totalx counter\n").count(), 1);
        assert!(text.contains("sends_total{class=\"POLL\"} 4\n"));
        assert!(text.contains("sends_total{class=\"UPDATE\"} 2\n"));
    }

    #[test]
    fn metric_name_escapes_label_values() {
        assert_eq!(metric_name("plain", &[]), "plain");
        assert_eq!(
            metric_name("m_total", &[("class", "POLL"), ("node", "7")]),
            "m_total{class=\"POLL\",node=\"7\"}"
        );
        assert_eq!(
            metric_name("m", &[("k", "a\\b\"c\nd")]),
            "m{k=\"a\\\\b\\\"c\\nd\"}"
        );
    }

    #[test]
    fn name_charset_predicates() {
        assert!(valid_metric_name("traffic_sends_total"));
        assert!(valid_metric_name(":ns:metric"));
        assert!(valid_metric_name("_x9"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("9lives"));
        assert!(!valid_metric_name("dashed-name"));
        assert!(valid_label_key("class"));
        assert!(!valid_label_key("with:colon"));
        assert!(!valid_label_key(""));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_is_rejected() {
        let _ = Registry::new(SimDuration::ZERO);
    }
}
