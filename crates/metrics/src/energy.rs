//! The battery model behind the paper's `CE` coefficient.

use mp2p_sim::SimDuration;

/// Radio energy costs, in millijoules.
///
/// Classic WaveLAN measurements (the era's standard numbers) put
/// transmission around 1.9 µJ/bit and reception around 1.0 µJ/bit plus a
/// per-frame MAC overhead; the defaults approximate that at packet
/// granularity. Idle drain ages every battery slowly so `CE` (Eq. 4.2.7)
/// decays even on silent nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Cost to transmit one byte.
    pub tx_per_byte_mj: f64,
    /// Fixed cost per transmitted frame.
    pub tx_base_mj: f64,
    /// Cost to receive one byte.
    pub rx_per_byte_mj: f64,
    /// Fixed cost per received frame.
    pub rx_base_mj: f64,
    /// Idle drain per second.
    pub idle_mj_per_s: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            tx_per_byte_mj: 0.015,
            tx_base_mj: 0.5,
            rx_per_byte_mj: 0.008,
            rx_base_mj: 0.25,
            idle_mj_per_s: 1.0,
        }
    }
}

impl EnergyModel {
    /// Energy to transmit a frame of `bytes` bytes.
    pub fn tx_cost(&self, bytes: u32) -> f64 {
        self.tx_base_mj + self.tx_per_byte_mj * f64::from(bytes)
    }

    /// Energy to receive a frame of `bytes` bytes.
    pub fn rx_cost(&self, bytes: u32) -> f64 {
        self.rx_base_mj + self.rx_per_byte_mj * f64::from(bytes)
    }

    /// Idle drain over `span`.
    pub fn idle_cost(&self, span: SimDuration) -> f64 {
        self.idle_mj_per_s * span.as_secs_f64()
    }
}

/// One node's battery: `PER_t / E_MAX` is the paper's `CE` (Eq. 4.2.7).
///
/// # Example
///
/// ```
/// use mp2p_metrics::PeerEnergy;
///
/// let mut battery = PeerEnergy::new(1_000.0);
/// battery.drain(250.0);
/// assert_eq!(battery.fraction_remaining(), 0.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeerEnergy {
    capacity_mj: f64,
    used_mj: f64,
}

impl PeerEnergy {
    /// A full battery of `capacity_mj` millijoules (`E_MAX`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_mj` is not finite and positive.
    pub fn new(capacity_mj: f64) -> Self {
        assert!(
            capacity_mj.is_finite() && capacity_mj > 0.0,
            "battery capacity must be positive"
        );
        PeerEnergy {
            capacity_mj,
            used_mj: 0.0,
        }
    }

    /// Consumes `mj` millijoules (clamped at empty).
    pub fn drain(&mut self, mj: f64) {
        self.used_mj = (self.used_mj + mj.max(0.0)).min(self.capacity_mj);
    }

    /// Remaining energy (`PER_t`).
    pub fn remaining_mj(&self) -> f64 {
        self.capacity_mj - self.used_mj
    }

    /// Total consumed energy.
    pub fn used_mj(&self) -> f64 {
        self.used_mj
    }

    /// The paper's `CE = PER_t / E_MAX`, in `[0, 1]`.
    pub fn fraction_remaining(&self) -> f64 {
        self.remaining_mj() / self.capacity_mj
    }

    /// True once the battery is exhausted.
    pub fn is_depleted(&self) -> bool {
        self.remaining_mj() <= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn costs_scale_with_size() {
        let m = EnergyModel::default();
        assert!(m.tx_cost(1_000) > m.tx_cost(100));
        assert!(m.tx_cost(100) > m.rx_cost(100), "tx costs more than rx");
        assert_eq!(m.idle_cost(SimDuration::from_secs(10)), 10.0);
    }

    #[test]
    fn battery_drains_and_clamps() {
        let mut b = PeerEnergy::new(100.0);
        b.drain(30.0);
        assert_eq!(b.remaining_mj(), 70.0);
        b.drain(1_000.0);
        assert!(b.is_depleted());
        assert_eq!(b.fraction_remaining(), 0.0);
        b.drain(-5.0); // negative drain ignored
        assert_eq!(b.used_mj(), 100.0);
    }

    proptest! {
        #[test]
        fn prop_fraction_in_unit_interval(cap in 1.0f64..1e6, drains in proptest::collection::vec(0.0f64..1e5, 0..50)) {
            let mut b = PeerEnergy::new(cap);
            for d in drains {
                b.drain(d);
                let f = b.fraction_remaining();
                prop_assert!((0.0..=1.0).contains(&f));
            }
        }
    }
}
