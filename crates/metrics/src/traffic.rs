//! Transmission counting by message class.

use std::fmt;

/// The kind of application (or control) message a transmission carried.
///
/// The first ten variants are the paper's message types (Fig. 6(a));
/// `Fetch`/`FetchReply` are the data transfers of the push/pull baselines;
/// `RouteControl` covers RREQ/RREP/RERR overhead of the routing substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageClass {
    /// Periodic invalidation flood from a source host.
    Invalidation,
    /// Source-to-relay data push.
    Update,
    /// Cache-peer poll.
    Poll,
    /// Poll answer: copy is up to date.
    PollAckA,
    /// Poll answer: copy was stale, fresh content attached.
    PollAckB,
    /// Relay-peer candidacy application.
    Apply,
    /// Candidacy approval.
    ApplyAck,
    /// Relay-peer resignation.
    Cancel,
    /// Relay asking the source for missed content.
    GetNew,
    /// Source answering `GetNew` with fresh content.
    SendNew,
    /// Baseline cache-miss fetch request.
    Fetch,
    /// Baseline fetch reply carrying content.
    FetchReply,
    /// Replica write routed to the item's source host (extension,
    /// future work §6 item 3).
    WriteRequest,
    /// Source's acknowledgement of an applied replica write.
    WriteAck,
    /// RREQ/RREP/RERR routing overhead.
    RouteControl,
    /// Rejoin-resync version digest flooded by a recovering node.
    ResyncDigest,
    /// Unicast reply to a resync digest carrying newer-known versions.
    ResyncAck,
    /// Receiver acknowledgement of a sequence-stamped update.
    DeliveryAck,
    /// Relay-lease handover grant to an elected neighbor.
    Handover,
}

impl MessageClass {
    /// All classes, for iteration and table rendering.
    pub const ALL: [MessageClass; 19] = [
        MessageClass::Invalidation,
        MessageClass::Update,
        MessageClass::Poll,
        MessageClass::PollAckA,
        MessageClass::PollAckB,
        MessageClass::Apply,
        MessageClass::ApplyAck,
        MessageClass::Cancel,
        MessageClass::GetNew,
        MessageClass::SendNew,
        MessageClass::Fetch,
        MessageClass::FetchReply,
        MessageClass::WriteRequest,
        MessageClass::WriteAck,
        MessageClass::RouteControl,
        MessageClass::ResyncDigest,
        MessageClass::ResyncAck,
        MessageClass::DeliveryAck,
        MessageClass::Handover,
    ];

    /// Position of this class in [`MessageClass::ALL`] (dense array key).
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&c| c == self)
            .expect("class listed in ALL")
    }

    /// Short label for tables.
    pub fn label(self) -> &'static str {
        match self {
            MessageClass::Invalidation => "INVALIDATION",
            MessageClass::Update => "UPDATE",
            MessageClass::Poll => "POLL",
            MessageClass::PollAckA => "POLL_ACK_A",
            MessageClass::PollAckB => "POLL_ACK_B",
            MessageClass::Apply => "APPLY",
            MessageClass::ApplyAck => "APPLY_ACK",
            MessageClass::Cancel => "CANCEL",
            MessageClass::GetNew => "GET_NEW",
            MessageClass::SendNew => "SEND_NEW",
            MessageClass::Fetch => "FETCH",
            MessageClass::FetchReply => "FETCH_REPLY",
            MessageClass::WriteRequest => "WRITE_REQ",
            MessageClass::WriteAck => "WRITE_ACK",
            MessageClass::RouteControl => "ROUTE_CTRL",
            MessageClass::ResyncDigest => "RESYNC_DIGEST",
            MessageClass::ResyncAck => "RESYNC_ACK",
            MessageClass::DeliveryAck => "DELIVERY_ACK",
            MessageClass::Handover => "HANDOVER",
        }
    }

    /// Inverse of [`MessageClass::label`] (journal parsing).
    pub fn from_label(label: &str) -> Option<MessageClass> {
        Self::ALL.into_iter().find(|c| c.label() == label)
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// MAC-level transmission counters: every radio transmission of every hop
/// (including flood rebroadcasts and routing control) counts once — the
/// "number of messages" metric of Fig. 7 and Fig. 9(a).
///
/// # Example
///
/// ```
/// use mp2p_metrics::{MessageClass, TrafficStats};
///
/// let mut t = TrafficStats::default();
/// t.record(MessageClass::Poll, 48);
/// t.record(MessageClass::Poll, 48);
/// t.record(MessageClass::Update, 1_024);
/// assert_eq!(t.transmissions(), 3);
/// assert_eq!(t.by_class(MessageClass::Poll), 2);
/// assert_eq!(t.bytes(), 1_120);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficStats {
    per_class: [u64; MessageClass::ALL.len()],
    bytes: u64,
}

impl TrafficStats {
    /// Records one transmission of `bytes` bytes carrying `class`.
    pub fn record(&mut self, class: MessageClass, bytes: u32) {
        self.per_class[class.index()] += 1;
        self.bytes += u64::from(bytes);
    }

    /// Total transmissions across all classes.
    pub fn transmissions(&self) -> u64 {
        self.per_class.iter().sum()
    }

    /// Transmissions of one class.
    pub fn by_class(&self, class: MessageClass) -> u64 {
        self.per_class[class.index()]
    }

    /// Total bytes on the air.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Transmissions that carried application payload (everything except
    /// routing control).
    pub fn app_transmissions(&self) -> u64 {
        self.transmissions() - self.by_class(MessageClass::RouteControl)
    }

    /// Adds another instrument's counts into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for (a, b) in self.per_class.iter_mut().zip(other.per_class.iter()) {
            *a += b;
        }
        self.bytes += other.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_partition_total() {
        let mut t = TrafficStats::default();
        for (i, class) in MessageClass::ALL.into_iter().enumerate() {
            for _ in 0..=i {
                t.record(class, 10);
            }
        }
        let sum: u64 = MessageClass::ALL.iter().map(|&c| t.by_class(c)).sum();
        assert_eq!(sum, t.transmissions());
        assert_eq!(t.transmissions(), (1..=19).sum::<u64>());
        assert_eq!(t.bytes(), 10 * t.transmissions());
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = TrafficStats::default();
        let mut b = TrafficStats::default();
        a.record(MessageClass::Poll, 48);
        b.record(MessageClass::Poll, 48);
        b.record(MessageClass::RouteControl, 32);
        a.merge(&b);
        assert_eq!(a.by_class(MessageClass::Poll), 2);
        assert_eq!(a.transmissions(), 3);
        assert_eq!(a.app_transmissions(), 2);
        assert_eq!(a.bytes(), 128);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = MessageClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), MessageClass::ALL.len());
    }

    #[test]
    fn from_label_inverts_label() {
        for class in MessageClass::ALL {
            assert_eq!(MessageClass::from_label(class.label()), Some(class));
        }
        assert_eq!(MessageClass::from_label("NOPE"), None);
    }
}
