//! Prometheus text-exposition conformance for `Registry::render_prometheus`.
//!
//! A scrape endpoint that emits even one malformed line poisons the whole
//! scrape, so the renderer is checked against the format rules with a
//! hand-rolled line parser (no prometheus crate in the workspace):
//!
//! * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`;
//! * label keys match `[a-zA-Z_][a-zA-Z0-9_]*` and label values escape
//!   `\`, `"` and newline;
//! * every sample line carries a parseable numeric value;
//! * each metric family has exactly one `# TYPE` line, placed before the
//!   family's first sample.

use std::collections::{BTreeMap, BTreeSet};

use mp2p_metrics::{metric_name, valid_label_key, valid_metric_name, Registry};
use mp2p_sim::{SimDuration, SimTime};

/// One parsed sample line: base name, raw (still-escaped) label pairs,
/// and the value token.
struct Sample {
    base: String,
    labels: Vec<(String, String)>,
    value: String,
}

/// Parses one non-comment exposition line, panicking with context on any
/// syntax violation.
fn parse_sample(line: &str) -> Sample {
    let (name_part, value) = line
        .rsplit_once(' ')
        .unwrap_or_else(|| panic!("no value separator in {line:?}"));
    let (base, labels) = match name_part.split_once('{') {
        None => (name_part.to_owned(), Vec::new()),
        Some((base, rest)) => {
            let body = rest
                .strip_suffix('}')
                .unwrap_or_else(|| panic!("unterminated label set in {line:?}"));
            (base.to_owned(), parse_labels(body, line))
        }
    };
    Sample {
        base,
        labels,
        value: value.to_owned(),
    }
}

/// Parses `k1="v1",k2="v2"`, honouring backslash escapes inside values.
fn parse_labels(body: &str, line: &str) -> Vec<(String, String)> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        let mut key = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            key.push(c);
            chars.next();
        }
        assert_eq!(chars.next(), Some('='), "missing '=' in {line:?}");
        assert_eq!(chars.next(), Some('"'), "unquoted label value in {line:?}");
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('\\') => {
                    let e = chars
                        .next()
                        .unwrap_or_else(|| panic!("dangling backslash in {line:?}"));
                    assert!(
                        matches!(e, '\\' | '"' | 'n'),
                        "unknown escape \\{e} in {line:?}"
                    );
                    value.push('\\');
                    value.push(e);
                }
                Some('"') => break,
                Some('\n') | None => panic!("unterminated label value in {line:?}"),
                Some(c) => value.push(c),
            }
        }
        labels.push((key, value));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => panic!("unexpected {c:?} after label value in {line:?}"),
        }
    }
    labels
}

/// Full conformance check of one exposition document; returns the parsed
/// samples grouped by base name.
fn check_exposition(text: &str) -> BTreeMap<String, Vec<Sample>> {
    let mut typed: BTreeSet<String> = BTreeSet::new();
    let mut sampled: BTreeSet<String> = BTreeSet::new();
    let mut samples: BTreeMap<String, Vec<Sample>> = BTreeMap::new();
    assert!(text.ends_with('\n'), "exposition must end with a newline");
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (family, kind) = rest
                .split_once(' ')
                .unwrap_or_else(|| panic!("malformed TYPE line {line:?}"));
            assert!(
                matches!(
                    kind,
                    "counter" | "gauge" | "summary" | "histogram" | "untyped"
                ),
                "unknown metric type in {line:?}"
            );
            assert!(valid_metric_name(family), "bad family name in {line:?}");
            assert!(
                typed.insert(family.to_owned()),
                "duplicate # TYPE line for family {family}"
            );
            assert!(
                !sampled.contains(family),
                "# TYPE for {family} appears after its first sample"
            );
            continue;
        }
        assert!(
            !line.starts_with('#'),
            "only TYPE comments expected: {line:?}"
        );
        let sample = parse_sample(line);
        assert!(
            valid_metric_name(&sample.base),
            "bad metric name in {line:?}"
        );
        for (key, _) in &sample.labels {
            assert!(valid_label_key(key), "bad label key {key:?} in {line:?}");
        }
        assert!(
            sample.value.parse::<f64>().is_ok(),
            "unparseable value {:?} in {line:?}",
            sample.value
        );
        sampled.insert(sample.base.clone());
        samples.entry(sample.base.clone()).or_default().push(sample);
    }
    // `_sum`/`_count` ride on their summary's TYPE line; everything else
    // must be typed.
    for family in &sampled {
        let parent_typed = ["_sum", "_count"].iter().any(|suffix| {
            family
                .strip_suffix(suffix)
                .is_some_and(|head| typed.contains(head))
        });
        assert!(
            typed.contains(family) || parent_typed,
            "family {family} has samples but no # TYPE line"
        );
    }
    samples
}

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

#[test]
fn rendered_registry_conforms() {
    let mut reg = Registry::new(SimDuration::from_secs(60));
    // Several series of one family, plus a family whose name sorts
    // between them (BTreeMap order interleaves it with the labelled keys).
    reg.counter_add(&metric_name("sends_total", &[("class", "POLL")]), t(1), 4);
    reg.counter_add(&metric_name("sends_total", &[("class", "UPDATE")]), t(1), 2);
    reg.counter_add("sends_totalx", t(5), 1);
    reg.gauge_set("relays", t(9), -3);
    reg.observe("query_latency_ms", t(30), SimDuration::from_millis(250));
    reg.observe("query_latency_ms", t(31), SimDuration::from_millis(750));

    let samples = check_exposition(&reg.render_prometheus());
    assert_eq!(samples["sends_total"].len(), 2);
    assert_eq!(samples["sends_totalx"][0].value, "1");
    assert_eq!(samples["relays"][0].value, "-3");
    // Summary: three quantile samples plus _sum and _count families.
    assert_eq!(samples["query_latency_ms"].len(), 3);
    assert_eq!(samples["query_latency_ms_sum"][0].value, "1000");
    assert_eq!(samples["query_latency_ms_count"][0].value, "2");
}

#[test]
fn hostile_label_values_stay_well_formed() {
    let mut reg = Registry::new(SimDuration::from_secs(60));
    let hostile = [
        ("quote", "he said \"hi\""),
        ("backslash", "C:\\temp\\x"),
        ("newline", "line1\nline2"),
        ("mixed", "\\\"\n\\"),
        ("empty", ""),
    ];
    for (i, (key, value)) in hostile.iter().enumerate() {
        reg.counter_add(
            &metric_name("hostile_total", &[(*key, *value)]),
            t(1),
            i as u64 + 1,
        );
    }
    let text = reg.render_prometheus();
    let samples = check_exposition(&text);
    assert_eq!(samples["hostile_total"].len(), hostile.len());
    // The raw escape sequences — not the raw control bytes — are on the
    // wire: exactly one physical line per sample.
    assert!(text.contains("newline=\"line1\\nline2\""));
    assert!(text.contains("backslash=\"C:\\\\temp\\\\x\""));
    assert!(text.contains("quote=\"he said \\\"hi\\\"\""));
    assert_eq!(
        text.lines().count(),
        hostile.len() + 1, // one TYPE line
        "escapes must not introduce physical newlines"
    );
}

#[test]
fn quantile_lines_merge_into_existing_label_sets() {
    let mut reg = Registry::new(SimDuration::from_secs(60));
    reg.observe(
        &metric_name("lat_ms", &[("class", "POLL")]),
        t(1),
        SimDuration::from_millis(80),
    );
    let samples = check_exposition(&reg.render_prometheus());
    for sample in &samples["lat_ms"] {
        let keys: Vec<&str> = sample.labels.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["class", "quantile"]);
    }
    assert_eq!(samples["lat_ms_sum"][0].labels.len(), 1);
    assert_eq!(samples["lat_ms_count"][0].labels.len(), 1);
}
