//! Property tests for [`mp2p_metrics::VersionHistory`] and the
//! observatory's staleness-age bucketing — the arithmetic every
//! divergence sample and blame record rests on.

use mp2p_cache::Version;
use mp2p_metrics::{
    age_bucket, ConsistencyAudit, ServedQuery, VersionHistory, AGE_BUCKETS, AGE_BUCKET_EDGES,
};
use mp2p_sim::{SimDuration, SimTime};
use proptest::prelude::*;

/// A history built from arbitrary non-decreasing update instants.
fn history_from(gaps_ms: &[u64]) -> (VersionHistory, Vec<SimTime>) {
    let mut h = VersionHistory::new();
    let mut at = SimTime::ZERO;
    let mut instants = vec![SimTime::ZERO]; // v0: creation
    for &gap in gaps_ms {
        at += SimDuration::from_millis(gap);
        h.record_update(at);
        instants.push(at);
    }
    (h, instants)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Staleness is monotone non-decreasing in serve time: waiting longer
    /// to serve the same version can never make it *less* stale.
    #[test]
    fn staleness_is_monotone_in_serve_time(
        gaps_ms in proptest::collection::vec(0u64..600_000, 1..20),
        version in 0u64..20,
        t1_ms in 0u64..10_000_000,
        dt_ms in 0u64..10_000_000,
    ) {
        let (h, _) = history_from(&gaps_ms);
        let version = Version::new(version.min(h.current().get()));
        let t1 = SimTime::from_millis(t1_ms);
        let t2 = SimTime::from_millis(t1_ms + dt_ms);
        prop_assert!(h.staleness(version, t1) <= h.staleness(version, t2));
    }

    /// The current version is never stale, whatever the serve time; any
    /// superseded version is stale exactly from its successor's install
    /// instant onward.
    #[test]
    fn staleness_starts_at_the_superseding_instant(
        gaps_ms in proptest::collection::vec(1u64..600_000, 1..20),
        version in 0u64..20,
        offset_ms in 0u64..1_000_000,
    ) {
        let (h, instants) = history_from(&gaps_ms);
        let now = *instants.last().unwrap() + SimDuration::from_millis(offset_ms);
        prop_assert_eq!(h.staleness(h.current(), now), SimDuration::ZERO);
        let v = version.min(h.current().get().saturating_sub(1));
        let superseded_at = instants[v as usize + 1];
        prop_assert_eq!(
            h.staleness(Version::new(v), now),
            now.saturating_since(superseded_at),
        );
        // At (or before) the superseding instant itself: not yet stale.
        prop_assert_eq!(
            h.staleness(Version::new(v), superseded_at),
            SimDuration::ZERO
        );
    }

    /// Updates recorded at the same instant keep version order: each
    /// version's install time is non-decreasing, `current` advances by
    /// one per update, and every same-instant predecessor is already
    /// zero-stale — staleness only accrues once sim time moves on.
    #[test]
    fn same_instant_updates_preserve_version_order(
        at_ms in 0u64..1_000_000,
        burst in 2usize..8,
        later_ms in 1u64..600_000,
    ) {
        let mut h = VersionHistory::new();
        let at = SimTime::from_millis(at_ms);
        for i in 0..burst {
            h.record_update(at);
            prop_assert_eq!(h.current(), Version::new(i as u64 + 1));
        }
        for v in 1..=burst as u64 {
            prop_assert_eq!(h.installed_at(Version::new(v)), Some(at));
            // At the burst instant nothing has aged yet...
            prop_assert_eq!(h.staleness(Version::new(v), at), SimDuration::ZERO);
        }
        // ...but later, every superseded burst version is equally stale,
        // while the burst's last version stays fresh.
        let later = at + SimDuration::from_millis(later_ms);
        for v in 1..burst as u64 {
            prop_assert_eq!(
                h.staleness(Version::new(v), later),
                SimDuration::from_millis(later_ms)
            );
        }
        prop_assert_eq!(h.staleness(Version::new(burst as u64), later), SimDuration::ZERO);
    }

    /// Every age lands in exactly one bucket, bucketing is monotone, and
    /// an age exactly on an edge belongs to the bucket *above* it.
    #[test]
    fn age_bucketing_is_total_monotone_and_edge_exact(
        age_ms in 0u64..10_000_000,
        bump_ms in 0u64..10_000_000,
    ) {
        let a = SimDuration::from_millis(age_ms);
        let b = SimDuration::from_millis(age_ms + bump_ms);
        prop_assert!(age_bucket(a) < AGE_BUCKETS);
        prop_assert!(age_bucket(a) <= age_bucket(b));
        for (i, &edge) in AGE_BUCKET_EDGES.iter().enumerate() {
            // Exactly on the edge: the upper bucket. One ms below: below.
            prop_assert_eq!(age_bucket(edge), i + 1);
            prop_assert_eq!(age_bucket(edge - SimDuration::from_millis(1)), i);
        }
    }

    /// The audit's stale/fresh split agrees with the history: a serve is
    /// stale iff the served version is behind the master, independent of
    /// the time-staleness magnitude.
    #[test]
    fn audit_stale_count_matches_version_lag(
        gaps_ms in proptest::collection::vec(1u64..600_000, 1..15),
        serves in proptest::collection::vec((0u64..15, 0u64..1_000_000), 1..30),
    ) {
        let (h, instants) = history_from(&gaps_ms);
        let end = *instants.last().unwrap();
        let mut audit = ConsistencyAudit::default();
        let mut expected_stale = 0u64;
        for &(v, offset) in &serves {
            let served = Version::new(v.min(h.current().get()));
            let now = end + SimDuration::from_millis(offset);
            audit.record(ServedQuery {
                served,
                master: h.current(),
                staleness: h.staleness(served, now),
            });
            if served < h.current() {
                expected_stale += 1;
            }
        }
        prop_assert_eq!(audit.served(), serves.len() as u64);
        prop_assert_eq!(audit.stale_served(), expected_stale);
    }
}
