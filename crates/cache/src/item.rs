//! Versioned data items.

use std::fmt;

use mp2p_sim::ItemId;

/// A monotonically increasing data-item version (`VER_d` in Fig. 6(a)).
///
/// "The version number is set to zero when the data item is created and is
/// incremented on each subsequent update" (Section 3).
///
/// # Example
///
/// ```
/// use mp2p_cache::Version;
///
/// let v = Version::INITIAL;
/// assert_eq!(v.next(), Version::new(1));
/// assert!(v < v.next());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version(u64);

impl Version {
    /// The version a freshly created item carries.
    pub const INITIAL: Version = Version(0);

    /// Builds a version from its raw counter.
    pub const fn new(v: u64) -> Self {
        Version(v)
    }

    /// The raw counter.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The version after one more source update.
    #[must_use]
    pub const fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The master copy of a data item as held by its source host.
///
/// # Example
///
/// ```
/// use mp2p_cache::DataItem;
/// use mp2p_sim::ItemId;
///
/// let mut item = DataItem::new(ItemId::new(4), 1_024);
/// assert_eq!(item.version().get(), 0);
/// item.update();
/// assert_eq!(item.version().get(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataItem {
    id: ItemId,
    version: Version,
    size_bytes: u32,
}

impl DataItem {
    /// Creates the master copy of `id` with `size_bytes` of content.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero.
    pub fn new(id: ItemId, size_bytes: u32) -> Self {
        assert!(size_bytes > 0, "data items must have non-zero size");
        DataItem {
            id,
            version: Version::INITIAL,
            size_bytes,
        }
    }

    /// The item's identity.
    pub fn id(&self) -> ItemId {
        self.id
    }

    /// The current master version.
    pub fn version(&self) -> Version {
        self.version
    }

    /// Content size in bytes (drives transfer costs).
    pub fn size_bytes(&self) -> u32 {
        self.size_bytes
    }

    /// Applies one source update ("only the master copy can be modified",
    /// Section 3) and returns the new version.
    pub fn update(&mut self) -> Version {
        self.version = self.version.next();
        self.version
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_start_at_zero_and_increment() {
        let mut item = DataItem::new(ItemId::new(0), 512);
        assert_eq!(item.version(), Version::INITIAL);
        for expected in 1..=5u64 {
            assert_eq!(item.update().get(), expected);
        }
    }

    #[test]
    fn version_ordering_tracks_updates() {
        let old = Version::new(3);
        assert!(old < old.next());
        assert_eq!(old.next().get(), 4);
        assert_eq!(Version::default(), Version::INITIAL);
    }

    #[test]
    #[should_panic(expected = "non-zero size")]
    fn zero_size_rejected() {
        let _ = DataItem::new(ItemId::new(0), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Version::new(7).to_string(), "v7");
    }
}
