//! The per-node LRU cache store (`C_Num` slots, Table 1).

use std::collections::HashMap;

use mp2p_sim::{ItemId, SimTime};

use crate::item::Version;

/// One cached copy of a data item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// The cached version (`VER_d` of the copy).
    pub version: Version,
    /// Content size in bytes.
    pub size_bytes: u32,
    /// When the copy was last written (fetched or refreshed).
    pub fetched_at: SimTime,
    /// True if an invalidation marked this copy stale; a stale copy still
    /// serves weak-consistency reads but must be re-fetched for stronger
    /// levels.
    pub stale: bool,
}

/// A fixed-capacity LRU store of cache copies — the paper's `C_Num` cached
/// items per mobile host.
///
/// # Example
///
/// ```
/// use mp2p_cache::{CacheStore, Version};
/// use mp2p_sim::{ItemId, SimTime};
///
/// let mut store = CacheStore::new(2);
/// store.insert(ItemId::new(1), Version::new(0), 512, SimTime::ZERO);
/// store.insert(ItemId::new(2), Version::new(0), 512, SimTime::ZERO);
/// store.touch(ItemId::new(1)); // make item 1 most recent
/// store.insert(ItemId::new(3), Version::new(0), 512, SimTime::ZERO);
/// assert!(store.contains(ItemId::new(1)));
/// assert!(!store.contains(ItemId::new(2))); // LRU victim
/// ```
#[derive(Debug, Clone)]
pub struct CacheStore {
    capacity: usize,
    entries: HashMap<ItemId, Slot>,
    clock: u64,
}

#[derive(Debug, Clone)]
struct Slot {
    entry: CacheEntry,
    last_use: u64,
}

impl CacheStore {
    /// Creates a store with room for `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        CacheStore {
            capacity,
            entries: HashMap::new(),
            clock: 0,
        }
    }

    /// The configured capacity (`C_Num`).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if `item` is cached (fresh or stale).
    pub fn contains(&self, item: ItemId) -> bool {
        self.entries.contains_key(&item)
    }

    /// The cached copy of `item`, if present, without touching LRU order.
    pub fn peek(&self, item: ItemId) -> Option<&CacheEntry> {
        self.entries.get(&item).map(|s| &s.entry)
    }

    /// Marks `item` as most recently used and returns its entry.
    pub fn touch(&mut self, item: ItemId) -> Option<&CacheEntry> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(&item).map(|slot| {
            slot.last_use = clock;
            &slot.entry
        })
    }

    /// Inserts or refreshes a cached copy, evicting the least recently
    /// used item if the store is full. Returns the evicted item, if any.
    pub fn insert(
        &mut self,
        item: ItemId,
        version: Version,
        size_bytes: u32,
        now: SimTime,
    ) -> Option<ItemId> {
        self.clock += 1;
        let slot = Slot {
            entry: CacheEntry {
                version,
                size_bytes,
                fetched_at: now,
                stale: false,
            },
            last_use: self.clock,
        };
        if self.entries.insert(item, slot).is_some() {
            return None; // refresh, no eviction
        }
        if self.entries.len() <= self.capacity {
            return None;
        }
        let victim = self
            .entries
            .iter()
            .filter(|(&id, _)| id != item)
            .min_by_key(|(id, s)| (s.last_use, **id))
            .map(|(&id, _)| id)
            .expect("store over capacity implies at least one other entry");
        self.entries.remove(&victim);
        Some(victim)
    }

    /// Marks a cached copy stale (push-style invalidation). Returns true
    /// if the item was cached.
    pub fn mark_stale(&mut self, item: ItemId) -> bool {
        match self.entries.get_mut(&item) {
            Some(slot) => {
                slot.entry.stale = true;
                true
            }
            None => false,
        }
    }

    /// Refreshes a cached copy in place to `version`, clearing staleness.
    /// Returns false if the item is not cached.
    pub fn refresh(&mut self, item: ItemId, version: Version, now: SimTime) -> bool {
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(&item) {
            Some(slot) => {
                slot.entry.version = version;
                slot.entry.fetched_at = now;
                slot.entry.stale = false;
                slot.last_use = clock;
                true
            }
            None => false,
        }
    }

    /// Drops a cached copy entirely. Returns the removed entry, if any.
    pub fn remove(&mut self, item: ItemId) -> Option<CacheEntry> {
        self.entries.remove(&item).map(|s| s.entry)
    }

    /// Iterates over cached `(item, entry)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, &CacheEntry)> {
        self.entries.iter().map(|(&id, slot)| (id, &slot.entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn id(i: u32) -> ItemId {
        ItemId::new(i)
    }

    #[test]
    fn insert_and_peek() {
        let mut store = CacheStore::new(4);
        assert!(store
            .insert(id(1), Version::new(2), 100, SimTime::ZERO)
            .is_none());
        let e = store.peek(id(1)).unwrap();
        assert_eq!(e.version, Version::new(2));
        assert!(!e.stale);
        assert!(store.peek(id(9)).is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut store = CacheStore::new(3);
        for i in 1..=3 {
            store.insert(id(i), Version::INITIAL, 10, SimTime::ZERO);
        }
        store.touch(id(1));
        store.touch(id(2));
        // id(3) is now LRU.
        let evicted = store.insert(id(4), Version::INITIAL, 10, SimTime::ZERO);
        assert_eq!(evicted, Some(id(3)));
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn refresh_does_not_evict() {
        let mut store = CacheStore::new(2);
        store.insert(id(1), Version::INITIAL, 10, SimTime::ZERO);
        store.insert(id(2), Version::INITIAL, 10, SimTime::ZERO);
        assert!(store
            .insert(id(1), Version::new(5), 10, SimTime::ZERO)
            .is_none());
        assert_eq!(store.peek(id(1)).unwrap().version, Version::new(5));
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn stale_marking_and_refresh() {
        let mut store = CacheStore::new(2);
        store.insert(id(1), Version::INITIAL, 10, SimTime::ZERO);
        assert!(store.mark_stale(id(1)));
        assert!(store.peek(id(1)).unwrap().stale);
        assert!(!store.mark_stale(id(7)));
        let later = SimTime::from_millis(500);
        assert!(store.refresh(id(1), Version::new(1), later));
        let e = store.peek(id(1)).unwrap();
        assert!(!e.stale);
        assert_eq!(e.version, Version::new(1));
        assert_eq!(e.fetched_at, later);
        assert!(!store.refresh(id(7), Version::new(1), later));
    }

    #[test]
    fn remove_returns_entry() {
        let mut store = CacheStore::new(2);
        store.insert(id(1), Version::new(3), 10, SimTime::ZERO);
        let e = store.remove(id(1)).unwrap();
        assert_eq!(e.version, Version::new(3));
        assert!(store.remove(id(1)).is_none());
        assert!(store.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = CacheStore::new(0);
    }

    proptest! {
        /// The store never exceeds capacity, whatever the operation mix.
        #[test]
        fn prop_capacity_invariant(ops in proptest::collection::vec((0u32..20, 0u8..4), 1..200)) {
            let mut store = CacheStore::new(5);
            for (i, op) in ops {
                match op {
                    0 => { store.insert(id(i), Version::INITIAL, 8, SimTime::ZERO); }
                    1 => { store.touch(id(i)); }
                    2 => { store.mark_stale(id(i)); }
                    _ => { store.remove(id(i)); }
                }
                prop_assert!(store.len() <= 5);
            }
        }

        /// A just-inserted item survives the insertion that follows it.
        #[test]
        fn prop_most_recent_survives(items in proptest::collection::vec(0u32..50, 2..100)) {
            let mut store = CacheStore::new(3);
            let mut prev: Option<ItemId> = None;
            for i in items {
                store.insert(id(i), Version::INITIAL, 8, SimTime::ZERO);
                if let Some(p) = prev {
                    if p != id(i) {
                        prop_assert!(store.contains(p), "previous insert evicted too early");
                    }
                }
                prev = Some(id(i));
            }
        }
    }
}
