//! The paper's stochastic workload: exponential query and update streams.

use mp2p_sim::{ItemId, NodeId, SimDuration, SimRng, SimTime, Zipf};

/// Item-popularity distribution for query targets.
#[derive(Debug, Clone)]
pub enum Popularity {
    /// Every foreign item equally likely (the paper's workload).
    Uniform,
    /// Zipf-skewed popularity with the given exponent (extension).
    Zipf(f64),
    /// All queries target one fixed item (the Fig. 9 scenario: a single
    /// source whose "data item is cached by all other peers").
    Single(ItemId),
}

/// A node's query request stream: exponential inter-arrival times with
/// mean `I_Query` (Table 1: 20 s), targets drawn from [`Popularity`] over
/// the items the node does not own.
///
/// # Example
///
/// ```
/// use mp2p_cache::{Popularity, QueryStream};
/// use mp2p_sim::{NodeId, SimDuration, SimRng, SimTime};
///
/// let mut stream = QueryStream::new(
///     NodeId::new(3), 50, SimDuration::from_secs(20),
///     Popularity::Uniform, SimRng::from_seed(1, 3),
/// );
/// let (when, item) = stream.next_query(SimTime::ZERO);
/// assert!(when > SimTime::ZERO);
/// assert_ne!(item.source_host(), NodeId::new(3), "nodes query foreign items");
/// ```
#[derive(Debug, Clone)]
pub struct QueryStream {
    node: NodeId,
    item_count: usize,
    mean_interval: SimDuration,
    popularity: Popularity,
    zipf: Option<Zipf>,
    rng: SimRng,
}

impl QueryStream {
    /// Creates the stream for `node` over a catalogue of `item_count`
    /// items.
    ///
    /// # Panics
    ///
    /// Panics if `item_count < 2` with [`Popularity::Uniform`]/
    /// [`Popularity::Zipf`] (there must be at least one foreign item), or
    /// if `mean_interval` is zero.
    pub fn new(
        node: NodeId,
        item_count: usize,
        mean_interval: SimDuration,
        popularity: Popularity,
        rng: SimRng,
    ) -> Self {
        assert!(!mean_interval.is_zero(), "query interval must be positive");
        if !matches!(popularity, Popularity::Single(_)) {
            assert!(item_count >= 2, "need at least one foreign item to query");
        }
        let zipf = match popularity {
            Popularity::Zipf(theta) => Some(Zipf::new(item_count, theta)),
            _ => None,
        };
        QueryStream {
            node,
            item_count,
            mean_interval,
            popularity,
            zipf,
            rng,
        }
    }

    /// The node this stream belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Draws the next query: its arrival time (strictly after `now`) and
    /// target item.
    pub fn next_query(&mut self, now: SimTime) -> (SimTime, ItemId) {
        let gap = self.rng.exponential(self.mean_interval.as_secs_f64());
        let when = now + SimDuration::from_secs_f64(gap).max(SimDuration::from_millis(1));
        let item = self.pick_item();
        (when, item)
    }

    fn pick_item(&mut self) -> ItemId {
        match &self.popularity {
            Popularity::Single(item) => *item,
            Popularity::Uniform => self.pick_foreign_uniform(),
            Popularity::Zipf(_) => {
                let zipf = self.zipf.as_ref().expect("zipf sampler built in new()");
                // Re-draw until the rank maps to a foreign item; rank i is
                // item (i + node + 1) mod n so each node's hot set differs.
                loop {
                    let rank = zipf.sample(&mut self.rng);
                    let idx = (rank + self.node.index() + 1) % self.item_count;
                    let item = ItemId::new(idx as u32);
                    if item.source_host() != self.node {
                        return item;
                    }
                }
            }
        }
    }

    fn pick_foreign_uniform(&mut self) -> ItemId {
        // Sample uniformly over the n-1 foreign items without rejection.
        let raw = self.rng.uniform_u64(self.item_count as u64 - 1) as usize;
        let idx = if raw >= self.node.index() {
            raw + 1
        } else {
            raw
        };
        ItemId::new(idx as u32)
    }
}

/// A source host's update stream: exponential inter-update times with
/// mean `I_Update` (Table 1: 2 min) applied to the node's own item.
///
/// # Example
///
/// ```
/// use mp2p_cache::UpdateStream;
/// use mp2p_sim::{NodeId, SimDuration, SimRng, SimTime};
///
/// let mut stream = UpdateStream::new(SimDuration::from_mins(2), SimRng::from_seed(1, 7));
/// let t1 = stream.next_update(SimTime::ZERO);
/// let t2 = stream.next_update(t1);
/// assert!(t2 > t1);
/// ```
#[derive(Debug, Clone)]
pub struct UpdateStream {
    mean_interval: SimDuration,
    rng: SimRng,
}

impl UpdateStream {
    /// Creates an update stream with the given mean interval.
    ///
    /// # Panics
    ///
    /// Panics if `mean_interval` is zero.
    pub fn new(mean_interval: SimDuration, rng: SimRng) -> Self {
        assert!(!mean_interval.is_zero(), "update interval must be positive");
        UpdateStream { mean_interval, rng }
    }

    /// The next update instant, strictly after `now`.
    pub fn next_update(&mut self, now: SimTime) -> SimTime {
        let gap = self.rng.exponential(self.mean_interval.as_secs_f64());
        now + SimDuration::from_secs_f64(gap).max(SimDuration::from_millis(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn queries_never_target_own_item() {
        let mut s = QueryStream::new(
            NodeId::new(5),
            10,
            SimDuration::from_secs(20),
            Popularity::Uniform,
            SimRng::from_seed(0, 0),
        );
        for _ in 0..1_000 {
            let (_, item) = s.next_query(SimTime::ZERO);
            assert_ne!(item.source_host(), NodeId::new(5));
            assert!(item.index() < 10);
        }
    }

    #[test]
    fn uniform_covers_all_foreign_items() {
        let mut s = QueryStream::new(
            NodeId::new(0),
            5,
            SimDuration::from_secs(1),
            Popularity::Uniform,
            SimRng::from_seed(1, 0),
        );
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[s.next_query(SimTime::ZERO).1.index()] = true;
        }
        assert_eq!(seen, [false, true, true, true, true]);
    }

    #[test]
    fn single_item_mode_always_hits_target() {
        let target = ItemId::new(7);
        let mut s = QueryStream::new(
            NodeId::new(0),
            50,
            SimDuration::from_secs(20),
            Popularity::Single(target),
            SimRng::from_seed(2, 0),
        );
        for _ in 0..100 {
            assert_eq!(s.next_query(SimTime::ZERO).1, target);
        }
    }

    #[test]
    fn zipf_mode_skips_own_item() {
        let mut s = QueryStream::new(
            NodeId::new(3),
            8,
            SimDuration::from_secs(20),
            Popularity::Zipf(1.0),
            SimRng::from_seed(3, 0),
        );
        for _ in 0..500 {
            assert_ne!(s.next_query(SimTime::ZERO).1.index(), 3);
        }
    }

    #[test]
    fn mean_interval_roughly_respected() {
        let mut s = UpdateStream::new(SimDuration::from_secs(60), SimRng::from_seed(4, 0));
        let mut now = SimTime::ZERO;
        let n = 5_000;
        for _ in 0..n {
            now = s.next_update(now);
        }
        let mean_secs = now.as_secs_f64() / n as f64;
        assert!((mean_secs - 60.0).abs() < 3.0, "sample mean {mean_secs}s");
    }

    proptest! {
        #[test]
        fn prop_arrival_strictly_advances(seed in any::<u64>(), mean_s in 1u64..600) {
            let mut q = QueryStream::new(
                NodeId::new(1), 4, SimDuration::from_secs(mean_s),
                Popularity::Uniform, SimRng::from_seed(seed, 0),
            );
            let mut u = UpdateStream::new(SimDuration::from_secs(mean_s), SimRng::from_seed(seed, 1));
            let mut now = SimTime::ZERO;
            for _ in 0..32 {
                let (t, _) = q.next_query(now);
                prop_assert!(t > now);
                let t2 = u.next_update(t);
                prop_assert!(t2 > t);
                now = t2;
            }
        }
    }
}
