//! Cooperative-caching substrate: versioned data items, the per-node LRU
//! cache store, and the paper's stochastic workload generators.
//!
//! Section 3 of the paper fixes the data model: each host `M_i` is the
//! *source host* of item `D_i` (master copy, the only mutable copy), other
//! hosts hold up to `C_Num` *cache copies*. Versions start at zero and
//! increment on every source update.
//!
//! The paper assumes "an independent mechanism for replica placement";
//! here that mechanism is pull-on-miss into an LRU [`CacheStore`], which
//! the experiments pre-warm to match the paper's steady-state scenarios.
//!
//! Workloads follow Section 5: every host generates an independent
//! exponential stream of updates to its own item (`I_Update`) and an
//! exponential stream of queries over other hosts' items (`I_Query`),
//! uniform by default with an optional Zipf popularity extension.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod item;
mod store;
mod workload;

pub use item::{DataItem, Version};
pub use store::{CacheEntry, CacheStore};
pub use workload::{Popularity, QueryStream, UpdateStream};
