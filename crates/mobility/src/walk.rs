//! Random walk with boundary reflection.

use mp2p_sim::{SimDuration, SimRng, SimTime};

use crate::geom::{Point, Terrain};
use crate::model::MobilityModel;

/// Random-walk mobility: every epoch the node picks a uniform heading in
/// `[0, 2π)` and a uniform speed in `[speed_min, speed_max]`, walks for the
/// epoch duration, and reflects off terrain walls.
///
/// Used by robustness tests and extension experiments; the paper's own
/// runs use [`crate::RandomWaypoint`].
///
/// # Example
///
/// ```
/// use mp2p_mobility::{MobilityModel, RandomWalk, Terrain};
/// use mp2p_sim::{SimDuration, SimRng, SimTime};
///
/// let terrain = Terrain::new(500.0, 500.0);
/// let mut m = RandomWalk::new(terrain, 1.0, 10.0, SimDuration::from_secs(30),
///                             SimRng::from_seed(1, 0));
/// assert!(terrain.contains(m.position_at(SimTime::from_millis(90_000))));
/// ```
#[derive(Debug, Clone)]
pub struct RandomWalk {
    terrain: Terrain,
    speed_min: f64,
    speed_max: f64,
    epoch: SimDuration,
    rng: SimRng,
    /// Position at the start of the current epoch.
    anchor: Point,
    /// Start of the current epoch.
    epoch_start: SimTime,
    /// Velocity for the current epoch, metres/second.
    velocity: (f64, f64),
    last_query: SimTime,
}

impl RandomWalk {
    /// Creates a random walk starting at a uniform random position.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < speed_min <= speed_max`, both finite, and the
    /// epoch is non-zero.
    pub fn new(
        terrain: Terrain,
        speed_min: f64,
        speed_max: f64,
        epoch: SimDuration,
        mut rng: SimRng,
    ) -> Self {
        assert!(
            speed_min.is_finite()
                && speed_max.is_finite()
                && speed_min > 0.0
                && speed_min <= speed_max,
            "need 0 < speed_min <= speed_max, got [{speed_min}, {speed_max}]"
        );
        assert!(!epoch.is_zero(), "random walk epoch must be non-zero");
        let anchor = terrain.random_point(&mut rng);
        let velocity = Self::pick_velocity(speed_min, speed_max, &mut rng);
        RandomWalk {
            terrain,
            speed_min,
            speed_max,
            epoch,
            rng,
            anchor,
            epoch_start: SimTime::ZERO,
            velocity,
            last_query: SimTime::ZERO,
        }
    }

    /// The terrain this trajectory lives on.
    pub fn terrain(&self) -> Terrain {
        self.terrain
    }

    fn pick_velocity(speed_min: f64, speed_max: f64, rng: &mut SimRng) -> (f64, f64) {
        let heading = rng.uniform_f64() * std::f64::consts::TAU;
        let speed = if speed_min == speed_max {
            speed_min
        } else {
            rng.uniform_f64_range(speed_min, speed_max)
        };
        (speed * heading.cos(), speed * heading.sin())
    }

    /// Position after walking from `anchor` with `velocity` for `dt`,
    /// reflecting at walls as many times as needed.
    fn walk(&self, dt: SimDuration) -> Point {
        let secs = dt.as_secs_f64();
        let mut p = Point::new(
            self.anchor.x + self.velocity.0 * secs,
            self.anchor.y + self.velocity.1 * secs,
        );
        // Repeated folding handles multi-span overshoot for long epochs.
        for _ in 0..64 {
            if self.terrain.contains(p) {
                return p;
            }
            p = self.terrain.reflect(p);
        }
        self.terrain.clamp(p)
    }
}

impl MobilityModel for RandomWalk {
    /// # Panics
    ///
    /// Panics in debug builds if `t` precedes an earlier query.
    fn position_at(&mut self, t: SimTime) -> Point {
        debug_assert!(t >= self.last_query, "mobility queried backwards in time");
        self.last_query = t;
        while t >= self.epoch_start + self.epoch {
            self.anchor = self.walk(self.epoch);
            self.epoch_start += self.epoch;
            self.velocity = Self::pick_velocity(self.speed_min, self.speed_max, &mut self.rng);
        }
        self.walk(t - self.epoch_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model(seed: u64) -> RandomWalk {
        RandomWalk::new(
            Terrain::new(300.0, 300.0),
            1.0,
            15.0,
            SimDuration::from_secs(20),
            SimRng::from_seed(seed, 0),
        )
    }

    #[test]
    fn stays_inside_for_hours() {
        let mut m = model(21);
        for step in 0..3_600 {
            let p = m.position_at(SimTime::from_millis(step * 5_000));
            assert!(m.terrain().contains(p), "escaped at step {step}: {p}");
        }
    }

    #[test]
    fn reflection_changes_direction_not_position_continuity() {
        let mut m = model(5);
        let dt = SimDuration::from_millis(100);
        let mut prev = m.position_at(SimTime::ZERO);
        let mut t = SimTime::ZERO;
        for _ in 0..20_000 {
            t += dt;
            let p = m.position_at(t);
            assert!(prev.distance(p) <= 15.0 * dt.as_secs_f64() + 1e-6);
            prev = p;
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = model(8);
        let mut b = model(8);
        for step in 0..200 {
            let t = SimTime::from_millis(step * 3_000);
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }

    proptest! {
        #[test]
        fn prop_contained(seed in any::<u64>(), mut times in proptest::collection::vec(0u64..3_600_000, 1..64)) {
            times.sort_unstable();
            let mut m = model(seed);
            for ms in times {
                prop_assert!(m.terrain().contains(m.position_at(SimTime::from_millis(ms))));
            }
        }
    }
}
