//! Mobility models for the MANET substrate.
//!
//! The RPCC paper evaluates on GloMoSim with the **random waypoint**
//! movement pattern \[Joh96\] over a 1500 m × 1500 m flatland (Table 1).
//! This crate implements that model plus three more used in robustness
//! tests and extensions:
//!
//! * [`RandomWaypoint`] — the paper's model: pick a destination uniformly
//!   in the terrain, travel at a uniform random speed, pause, repeat.
//! * [`RandomWalk`] — uniform heading/speed epochs with boundary
//!   reflection.
//! * [`ManhattanGrid`] — movement constrained to a street grid.
//! * [`Stationary`] — fixed positions (baseline/debugging).
//!
//! Models are *lazy piecewise-linear processes*: [`MobilityModel::position_at`]
//! may only be called with non-decreasing timestamps, which matches the
//! time-ordered event loop and keeps every model O(1) amortised per query.
//!
//! The [`SubnetGrid`] maps positions to coarse "subnets"; crossings feed
//! the paper's peer moving rate `PMR` (Eq. 4.2.5). The finer [`CellGrid`]
//! bins arbitrary point clouds into radio-range-sized square cells — the
//! spatial hash behind the O(n·k) topology snapshot build.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod geom;
mod manhattan;
mod model;
mod subnet;
mod walk;
mod waypoint;

pub use geom::{CellGrid, Point, Terrain};
pub use manhattan::ManhattanGrid;
pub use model::{AnyMobility, MobilityModel, Stationary};
pub use subnet::SubnetGrid;
pub use walk::RandomWalk;
pub use waypoint::RandomWaypoint;
