//! Coarse "subnet" partitioning of the terrain.
//!
//! The paper's stability coefficient `CS` (Eq. 4.2.5–4.2.6) counts `N_m`,
//! "the number of times a node has moved (from one subnet to another)
//! during φ". The terrain is partitioned into a square grid of subnet
//! cells; the consistency layer samples each node's cell and counts
//! crossings.

use crate::geom::{Point, Terrain};

/// A square partition of the terrain into `cols × rows` subnet cells.
///
/// # Example
///
/// ```
/// use mp2p_mobility::{Point, SubnetGrid, Terrain};
///
/// let grid = SubnetGrid::new(Terrain::paper_default(), 5, 5);
/// assert_eq!(grid.cell_of(Point::new(0.0, 0.0)), (0, 0));
/// assert_eq!(grid.cell_of(Point::new(1_499.9, 1_499.9)), (4, 4));
/// assert_eq!(grid.cell_count(), 25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubnetGrid {
    cols: u32,
    rows: u32,
    cell_w_inv_mm: f64,
    cell_h_inv_mm: f64,
}

impl SubnetGrid {
    /// Partitions `terrain` into `cols × rows` cells.
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero.
    pub fn new(terrain: Terrain, cols: u32, rows: u32) -> Self {
        assert!(cols > 0 && rows > 0, "subnet grid needs at least one cell");
        SubnetGrid {
            cols,
            rows,
            cell_w_inv_mm: cols as f64 / terrain.width(),
            cell_h_inv_mm: rows as f64 / terrain.height(),
        }
    }

    /// Number of columns.
    pub fn cols(self) -> u32 {
        self.cols
    }

    /// Number of rows.
    pub fn rows(self) -> u32 {
        self.rows
    }

    /// Total number of cells.
    pub fn cell_count(self) -> u32 {
        self.cols * self.rows
    }

    /// The `(column, row)` cell containing `p`; points on/past the far
    /// edge land in the last cell.
    pub fn cell_of(self, p: Point) -> (u32, u32) {
        let c = ((p.x * self.cell_w_inv_mm) as i64).clamp(0, self.cols as i64 - 1) as u32;
        let r = ((p.y * self.cell_h_inv_mm) as i64).clamp(0, self.rows as i64 - 1) as u32;
        (c, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn corner_cells() {
        let g = SubnetGrid::new(Terrain::new(100.0, 100.0), 4, 2);
        assert_eq!(g.cell_of(Point::new(0.0, 0.0)), (0, 0));
        assert_eq!(g.cell_of(Point::new(99.9, 0.0)), (3, 0));
        assert_eq!(g.cell_of(Point::new(0.0, 99.9)), (0, 1));
        assert_eq!(
            g.cell_of(Point::new(100.0, 100.0)),
            (3, 1),
            "far edge clamps"
        );
    }

    #[test]
    fn boundary_is_half_open() {
        let g = SubnetGrid::new(Terrain::new(100.0, 100.0), 2, 2);
        assert_eq!(g.cell_of(Point::new(49.999, 10.0)), (0, 0));
        assert_eq!(g.cell_of(Point::new(50.0, 10.0)), (1, 0));
    }

    proptest! {
        #[test]
        fn prop_cell_in_range(x in 0.0f64..1_500.0, y in 0.0f64..1_500.0, cols in 1u32..20, rows in 1u32..20) {
            let g = SubnetGrid::new(Terrain::paper_default(), cols, rows);
            let (c, r) = g.cell_of(Point::new(x, y));
            prop_assert!(c < cols && r < rows);
        }
    }
}
