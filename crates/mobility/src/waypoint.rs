//! The random waypoint model \[Joh96\], the paper's movement pattern.

use mp2p_sim::{SimDuration, SimRng, SimTime};

use crate::geom::{Point, Terrain};
use crate::model::MobilityModel;

/// Random waypoint mobility: repeatedly pick a uniform destination in the
/// terrain, travel to it in a straight line at a uniform random speed in
/// `[speed_min, speed_max]`, then pause for a uniform time in
/// `[0, max_pause]`.
///
/// This is the movement pattern the paper's evaluation uses (Section 5,
/// citing \[Joh96\]). Speeds and pause are configurable because the paper
/// does not state them; defaults in the experiments crate follow
/// GloMoSim-era convention (1–19 m/s, 10 s pause).
///
/// # Example
///
/// ```
/// use mp2p_mobility::{MobilityModel, RandomWaypoint, Terrain};
/// use mp2p_sim::{SimDuration, SimRng, SimTime};
///
/// let terrain = Terrain::paper_default();
/// let mut m = RandomWaypoint::new(terrain, 1.0, 19.0, SimDuration::from_secs(10),
///                                 SimRng::from_seed(42, 0));
/// let p = m.position_at(SimTime::from_millis(60_000));
/// assert!(terrain.contains(p));
/// ```
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    terrain: Terrain,
    speed_min: f64,
    speed_max: f64,
    max_pause: SimDuration,
    rng: SimRng,
    phase: Phase,
    last_query: SimTime,
}

#[derive(Debug, Clone)]
enum Phase {
    /// Pausing at `at` until `until`.
    Paused { at: Point, until: SimTime },
    /// Moving from `from` (departed at `since`) towards `to`, arriving at
    /// `arrival`.
    Moving {
        from: Point,
        since: SimTime,
        to: Point,
        arrival: SimTime,
    },
}

impl RandomWaypoint {
    /// Creates a random-waypoint trajectory starting at a uniform random
    /// position, initially paused for a random fraction of `max_pause`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < speed_min <= speed_max` and both are finite.
    pub fn new(
        terrain: Terrain,
        speed_min: f64,
        speed_max: f64,
        max_pause: SimDuration,
        mut rng: SimRng,
    ) -> Self {
        assert!(
            speed_min.is_finite()
                && speed_max.is_finite()
                && speed_min > 0.0
                && speed_min <= speed_max,
            "need 0 < speed_min <= speed_max, got [{speed_min}, {speed_max}]"
        );
        let start = terrain.random_point(&mut rng);
        let initial_pause = SimDuration::from_millis(if max_pause.is_zero() {
            0
        } else {
            rng.uniform_u64(max_pause.as_millis() + 1)
        });
        RandomWaypoint {
            terrain,
            speed_min,
            speed_max,
            max_pause,
            rng,
            phase: Phase::Paused {
                at: start,
                until: SimTime::ZERO + initial_pause,
            },
            last_query: SimTime::ZERO,
        }
    }

    /// The terrain this trajectory lives on.
    pub fn terrain(&self) -> Terrain {
        self.terrain
    }

    fn next_leg(&mut self, from: Point, now: SimTime) -> Phase {
        let to = self.terrain.random_point(&mut self.rng);
        let speed = if self.speed_min == self.speed_max {
            self.speed_min
        } else {
            self.rng.uniform_f64_range(self.speed_min, self.speed_max)
        };
        let travel = SimDuration::from_secs_f64(from.distance(to) / speed);
        // A zero-length leg (identical points) degenerates to an immediate
        // arrival; the pause that follows keeps the process well-founded.
        Phase::Moving {
            from,
            since: now,
            to,
            arrival: now + travel.max(SimDuration::from_millis(1)),
        }
    }
}

impl MobilityModel for RandomWaypoint {
    /// # Panics
    ///
    /// Panics in debug builds if `t` precedes an earlier query.
    fn position_at(&mut self, t: SimTime) -> Point {
        debug_assert!(t >= self.last_query, "mobility queried backwards in time");
        self.last_query = t;
        loop {
            match self.phase {
                Phase::Paused { at, until } => {
                    if t <= until {
                        return at;
                    }
                    self.phase = self.next_leg(at, until);
                }
                Phase::Moving {
                    from,
                    since,
                    to,
                    arrival,
                } => {
                    if t < arrival {
                        let frac =
                            (t - since).as_millis() as f64 / (arrival - since).as_millis() as f64;
                        return from.lerp(to, frac);
                    }
                    let pause = SimDuration::from_millis(if self.max_pause.is_zero() {
                        0
                    } else {
                        self.rng.uniform_u64(self.max_pause.as_millis() + 1)
                    });
                    self.phase = Phase::Paused {
                        at: to,
                        until: arrival + pause,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model(seed: u64) -> RandomWaypoint {
        RandomWaypoint::new(
            Terrain::paper_default(),
            1.0,
            19.0,
            SimDuration::from_secs(10),
            SimRng::from_seed(seed, 0),
        )
    }

    #[test]
    fn stays_in_terrain_over_five_hours() {
        let mut m = model(7);
        let terrain = m.terrain();
        for step in 0..1_800 {
            let t = SimTime::from_millis(step * 10_000); // every 10 s for 5 h
            let p = m.position_at(t);
            assert!(terrain.contains(p), "escaped terrain at {t}: {p}");
        }
    }

    #[test]
    fn respects_speed_bounds() {
        let mut m = model(13);
        let dt = SimDuration::from_millis(100);
        let mut prev = m.position_at(SimTime::ZERO);
        let mut t = SimTime::ZERO;
        for _ in 0..50_000 {
            t += dt;
            let p = m.position_at(t);
            let speed = prev.distance(p) / dt.as_secs_f64();
            // Allow tiny numerical slack over the 19 m/s cap.
            assert!(speed <= 19.0 + 1e-6, "speed {speed} m/s exceeds max at {t}");
            prev = p;
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = model(99);
        let mut b = model(99);
        for step in 0..500 {
            let t = SimTime::from_millis(step * 1_000);
            assert_eq!(a.position_at(t), b.position_at(t));
        }
    }

    #[test]
    fn eventually_moves() {
        let mut m = model(3);
        let start = m.position_at(SimTime::ZERO);
        let later = m.position_at(SimTime::from_millis(120_000));
        assert!(
            start.distance(later) > 1.0,
            "node should have moved within 2 minutes"
        );
    }

    #[test]
    fn zero_pause_is_supported() {
        let mut m = RandomWaypoint::new(
            Terrain::new(200.0, 200.0),
            5.0,
            5.0,
            SimDuration::ZERO,
            SimRng::from_seed(4, 0),
        );
        for step in 0..2_000 {
            let p = m.position_at(SimTime::from_millis(step * 500));
            assert!(m.terrain().contains(p));
        }
    }

    proptest! {
        /// Continuity: over a small dt the node moves at most max_speed * dt.
        #[test]
        fn prop_continuous_trajectory(seed in any::<u64>(), steps in 1usize..200) {
            let mut m = model(seed);
            let dt = SimDuration::from_millis(50);
            let mut prev = m.position_at(SimTime::ZERO);
            let mut t = SimTime::ZERO;
            for _ in 0..steps {
                t += dt;
                let p = m.position_at(t);
                prop_assert!(prev.distance(p) <= 19.0 * dt.as_secs_f64() + 1e-6);
                prev = p;
            }
        }

        /// Containment at arbitrary (sorted) query times.
        #[test]
        fn prop_contained(seed in any::<u64>(), mut times in proptest::collection::vec(0u64..18_000_000, 1..64)) {
            times.sort_unstable();
            let mut m = model(seed);
            let terrain = m.terrain();
            for ms in times {
                prop_assert!(terrain.contains(m.position_at(SimTime::from_millis(ms))));
            }
        }
    }
}
