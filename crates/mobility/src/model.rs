//! The mobility model interface and trivial implementations.

use mp2p_sim::SimTime;

use crate::geom::Point;
use crate::{ManhattanGrid, RandomWalk, RandomWaypoint};

/// A per-node movement process.
///
/// Implementations are lazy piecewise-linear trajectories; queries must be
/// issued with non-decreasing timestamps (the event loop guarantees this).
/// Querying an earlier time than a previous query may panic or return an
/// extrapolated position.
pub trait MobilityModel {
    /// The node's position at simulated time `t`.
    ///
    /// `t` must be ≥ every previously queried time on this instance.
    fn position_at(&mut self, t: SimTime) -> Point;
}

/// A node that never moves.
///
/// # Example
///
/// ```
/// use mp2p_mobility::{MobilityModel, Point, Stationary};
/// use mp2p_sim::SimTime;
///
/// let mut m = Stationary::new(Point::new(10.0, 20.0));
/// assert_eq!(m.position_at(SimTime::from_millis(999)), Point::new(10.0, 20.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stationary {
    position: Point,
}

impl Stationary {
    /// Creates a node pinned at `position`.
    pub const fn new(position: Point) -> Self {
        Stationary { position }
    }
}

impl MobilityModel for Stationary {
    fn position_at(&mut self, _t: SimTime) -> Point {
        self.position
    }
}

/// Runtime-selectable mobility model.
///
/// The simulation world stores one `AnyMobility` per node so scenarios can
/// mix models without generics or boxing.
#[derive(Debug, Clone)]
pub enum AnyMobility {
    /// The paper's random waypoint model.
    Waypoint(RandomWaypoint),
    /// Random walk with boundary reflection.
    Walk(RandomWalk),
    /// Street-grid movement.
    Manhattan(ManhattanGrid),
    /// No movement.
    Stationary(Stationary),
}

impl MobilityModel for AnyMobility {
    fn position_at(&mut self, t: SimTime) -> Point {
        match self {
            AnyMobility::Waypoint(m) => m.position_at(t),
            AnyMobility::Walk(m) => m.position_at(t),
            AnyMobility::Manhattan(m) => m.position_at(t),
            AnyMobility::Stationary(m) => m.position_at(t),
        }
    }
}

impl From<RandomWaypoint> for AnyMobility {
    fn from(m: RandomWaypoint) -> Self {
        AnyMobility::Waypoint(m)
    }
}

impl From<RandomWalk> for AnyMobility {
    fn from(m: RandomWalk) -> Self {
        AnyMobility::Walk(m)
    }
}

impl From<ManhattanGrid> for AnyMobility {
    fn from(m: ManhattanGrid) -> Self {
        AnyMobility::Manhattan(m)
    }
}

impl From<Stationary> for AnyMobility {
    fn from(m: Stationary) -> Self {
        AnyMobility::Stationary(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Terrain;
    use mp2p_sim::SimRng;

    #[test]
    fn stationary_never_moves() {
        let mut m = Stationary::new(Point::new(5.0, 5.0));
        for t in [0, 10, 1_000_000] {
            assert_eq!(m.position_at(SimTime::from_millis(t)), Point::new(5.0, 5.0));
        }
    }

    #[test]
    fn any_mobility_dispatches() {
        let terrain = Terrain::new(100.0, 100.0);
        let rng = SimRng::from_seed(1, 0);
        let mut models: Vec<AnyMobility> = vec![
            RandomWaypoint::new(
                terrain,
                1.0,
                5.0,
                mp2p_sim::SimDuration::from_secs(1),
                rng.derive(0),
            )
            .into(),
            RandomWalk::new(
                terrain,
                1.0,
                5.0,
                mp2p_sim::SimDuration::from_secs(10),
                rng.derive(1),
            )
            .into(),
            ManhattanGrid::new(terrain, 25.0, 2.0, rng.derive(2)).into(),
            Stationary::new(Point::new(1.0, 2.0)).into(),
        ];
        for m in &mut models {
            let p = m.position_at(SimTime::from_millis(30_000));
            assert!(terrain.contains(p), "{p} escaped terrain");
        }
    }
}
