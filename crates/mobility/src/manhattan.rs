//! Street-grid (Manhattan) mobility.

use mp2p_sim::{SimDuration, SimRng, SimTime};

use crate::geom::{Point, Terrain};
use crate::model::MobilityModel;

/// Manhattan-grid mobility: the node moves along the lines of a square
/// street grid at constant speed; at each intersection it continues
/// straight with probability 1/2 or turns left/right with probability 1/4
/// each, reversing when a turn would leave the terrain.
///
/// Used by extension experiments that stress routing with correlated
/// (street-constrained) movement; the paper's own runs use
/// [`crate::RandomWaypoint`].
///
/// # Example
///
/// ```
/// use mp2p_mobility::{ManhattanGrid, MobilityModel, Terrain};
/// use mp2p_sim::{SimRng, SimTime};
///
/// let terrain = Terrain::new(1_000.0, 1_000.0);
/// let mut m = ManhattanGrid::new(terrain, 100.0, 5.0, SimRng::from_seed(2, 0));
/// assert!(terrain.contains(m.position_at(SimTime::from_millis(45_000))));
/// ```
#[derive(Debug, Clone)]
pub struct ManhattanGrid {
    terrain: Terrain,
    block: f64,
    speed: f64,
    rng: SimRng,
    /// Intersection (column, row) the current leg started from.
    from: (u32, u32),
    /// Intersection the node is heading to.
    to: (u32, u32),
    leg_start: SimTime,
    leg_end: SimTime,
    last_query: SimTime,
}

/// Cardinal direction on the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    North,
    South,
    East,
    West,
}

impl Dir {
    fn all() -> [Dir; 4] {
        [Dir::North, Dir::South, Dir::East, Dir::West]
    }

    fn step(self, (c, r): (u32, u32), max_c: u32, max_r: u32) -> Option<(u32, u32)> {
        match self {
            Dir::North if r < max_r => Some((c, r + 1)),
            Dir::South if r > 0 => Some((c, r - 1)),
            Dir::East if c < max_c => Some((c + 1, r)),
            Dir::West if c > 0 => Some((c - 1, r)),
            _ => None,
        }
    }
}

impl ManhattanGrid {
    /// Creates a street-grid trajectory with `block`-metre blocks at a
    /// constant `speed` (m/s), starting at a random intersection.
    ///
    /// # Panics
    ///
    /// Panics unless `block` and `speed` are finite and positive and the
    /// terrain is at least one block wide and tall.
    pub fn new(terrain: Terrain, block: f64, speed: f64, mut rng: SimRng) -> Self {
        assert!(
            block.is_finite() && block > 0.0,
            "block size must be positive"
        );
        assert!(speed.is_finite() && speed > 0.0, "speed must be positive");
        let (max_c, max_r) = Self::grid_extent(terrain, block);
        assert!(max_c >= 1 && max_r >= 1, "terrain smaller than one block");
        let from = (
            rng.uniform_u64(max_c as u64 + 1) as u32,
            rng.uniform_u64(max_r as u64 + 1) as u32,
        );
        let mut grid = ManhattanGrid {
            terrain,
            block,
            speed,
            rng,
            from,
            to: from,
            leg_start: SimTime::ZERO,
            leg_end: SimTime::ZERO,
            last_query: SimTime::ZERO,
        };
        grid.begin_leg(SimTime::ZERO, None);
        grid
    }

    /// The terrain this trajectory lives on.
    pub fn terrain(&self) -> Terrain {
        self.terrain
    }

    fn grid_extent(terrain: Terrain, block: f64) -> (u32, u32) {
        (
            ((terrain.width() / block).floor()) as u32,
            ((terrain.height() / block).floor()) as u32,
        )
    }

    fn intersection_point(&self, (c, r): (u32, u32)) -> Point {
        Point::new(c as f64 * self.block, r as f64 * self.block)
    }

    fn begin_leg(&mut self, now: SimTime, arriving_from: Option<Dir>) {
        let (max_c, max_r) = Self::grid_extent(self.terrain, self.block);
        // Prefer: straight 1/2, left/right 1/4 each; fall back to any legal
        // direction (including reverse) at terrain edges.
        let choice = self.rng.uniform_f64();
        let preferred = match arriving_from {
            Some(dir) => {
                let (left, right) = match dir {
                    Dir::North => (Dir::West, Dir::East),
                    Dir::South => (Dir::East, Dir::West),
                    Dir::East => (Dir::North, Dir::South),
                    Dir::West => (Dir::South, Dir::North),
                };
                if choice < 0.5 {
                    Some(dir)
                } else if choice < 0.75 {
                    Some(left)
                } else {
                    Some(right)
                }
            }
            None => None,
        };
        let next = preferred
            .and_then(|d| d.step(self.from, max_c, max_r).map(|p| (d, p)))
            .or_else(|| {
                let mut options: Vec<(Dir, (u32, u32))> = Dir::all()
                    .into_iter()
                    .filter_map(|d| d.step(self.from, max_c, max_r).map(|p| (d, p)))
                    .collect();
                if options.is_empty() {
                    return None;
                }
                let i = self.rng.uniform_u64(options.len() as u64) as usize;
                Some(options.swap_remove(i))
            });
        match next {
            Some((_dir, to)) => {
                self.to = to;
                self.leg_start = now;
                self.leg_end = now + SimDuration::from_secs_f64(self.block / self.speed);
            }
            None => {
                // Degenerate 1×1 grid: stand still in one-block "legs".
                self.to = self.from;
                self.leg_start = now;
                self.leg_end = now + SimDuration::from_secs(1);
            }
        }
    }

    fn heading(&self) -> Option<Dir> {
        if self.to.0 > self.from.0 {
            Some(Dir::East)
        } else if self.to.0 < self.from.0 {
            Some(Dir::West)
        } else if self.to.1 > self.from.1 {
            Some(Dir::North)
        } else if self.to.1 < self.from.1 {
            Some(Dir::South)
        } else {
            None
        }
    }
}

impl MobilityModel for ManhattanGrid {
    /// # Panics
    ///
    /// Panics in debug builds if `t` precedes an earlier query.
    fn position_at(&mut self, t: SimTime) -> Point {
        debug_assert!(t >= self.last_query, "mobility queried backwards in time");
        self.last_query = t;
        while t >= self.leg_end {
            let heading = self.heading();
            self.from = self.to;
            let end = self.leg_end;
            self.begin_leg(end, heading);
        }
        let from_p = self.intersection_point(self.from);
        let to_p = self.intersection_point(self.to);
        let span = (self.leg_end - self.leg_start).as_millis().max(1) as f64;
        let frac = (t - self.leg_start).as_millis() as f64 / span;
        from_p.lerp(to_p, frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model(seed: u64) -> ManhattanGrid {
        ManhattanGrid::new(
            Terrain::new(1_000.0, 800.0),
            100.0,
            10.0,
            SimRng::from_seed(seed, 0),
        )
    }

    #[test]
    fn stays_on_grid_lines() {
        let mut m = model(3);
        for step in 0..5_000 {
            let p = m.position_at(SimTime::from_millis(step * 700));
            let on_vertical = (p.x / 100.0 - (p.x / 100.0).round()).abs() < 1e-9;
            let on_horizontal = (p.y / 100.0 - (p.y / 100.0).round()).abs() < 1e-9;
            assert!(on_vertical || on_horizontal, "off-grid position {p}");
            assert!(m.terrain().contains(p));
        }
    }

    #[test]
    fn moves_at_constant_speed() {
        let mut m = model(9);
        let dt = SimDuration::from_millis(100);
        let mut prev = m.position_at(SimTime::ZERO);
        let mut t = SimTime::ZERO;
        for _ in 0..10_000 {
            t += dt;
            let p = m.position_at(t);
            assert!(prev.distance(p) <= 10.0 * dt.as_secs_f64() + 1e-6);
            prev = p;
        }
    }

    #[test]
    fn tiny_grid_does_not_hang() {
        let mut m = ManhattanGrid::new(
            Terrain::new(120.0, 120.0),
            100.0,
            5.0,
            SimRng::from_seed(1, 0),
        );
        let p = m.position_at(SimTime::from_millis(600_000));
        assert!(m.terrain().contains(p));
    }

    proptest! {
        #[test]
        fn prop_contained(seed in any::<u64>(), mut times in proptest::collection::vec(0u64..1_800_000, 1..48)) {
            times.sort_unstable();
            let mut m = model(seed);
            for ms in times {
                prop_assert!(m.terrain().contains(m.position_at(SimTime::from_millis(ms))));
            }
        }
    }
}
