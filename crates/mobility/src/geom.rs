//! Planar geometry for the flatland terrain.

use std::fmt;

use mp2p_sim::SimRng;

/// A position in metres on the flatland terrain.
///
/// # Example
///
/// ```
/// use mp2p_mobility::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// assert_eq!(a.lerp(b, 0.5), Point::new(1.5, 2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in metres.
    pub x: f64,
    /// Vertical coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates in metres.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Linear interpolation: the point a fraction `t` of the way to `other`.
    ///
    /// `t` is clamped to `[0, 1]`.
    #[must_use]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        let t = t.clamp(0.0, 1.0);
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}m, {:.1}m)", self.x, self.y)
    }
}

/// The rectangular simulation area (`T_Area` in Table 1: 1.5 km × 1.5 km).
///
/// # Example
///
/// ```
/// use mp2p_mobility::{Point, Terrain};
///
/// let terrain = Terrain::paper_default();
/// assert_eq!(terrain.width(), 1_500.0);
/// assert!(terrain.contains(Point::new(750.0, 750.0)));
/// assert!(!terrain.contains(Point::new(-1.0, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Terrain {
    width: f64,
    height: f64,
}

impl Terrain {
    /// Creates a terrain of the given dimensions in metres.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not finite and positive.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0 && height.is_finite() && height > 0.0,
            "terrain dimensions must be finite and positive, got {width} x {height}"
        );
        Terrain { width, height }
    }

    /// The paper's default 1500 m × 1500 m flatland (Table 1).
    pub fn paper_default() -> Self {
        Terrain::new(1_500.0, 1_500.0)
    }

    /// Width in metres.
    pub fn width(self) -> f64 {
        self.width
    }

    /// Height in metres.
    pub fn height(self) -> f64 {
        self.height
    }

    /// True if `p` lies inside the terrain (inclusive of edges).
    pub fn contains(self, p: Point) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Clamps `p` to the terrain boundary.
    #[must_use]
    pub fn clamp(self, p: Point) -> Point {
        Point::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// A uniformly random point inside the terrain.
    pub fn random_point(self, rng: &mut SimRng) -> Point {
        Point::new(
            rng.uniform_f64() * self.width,
            rng.uniform_f64() * self.height,
        )
    }

    /// Reflects `p` back into the terrain, mirror-style, for models that
    /// bounce off walls. Works for overshoots of less than one terrain
    /// span.
    #[must_use]
    pub fn reflect(self, p: Point) -> Point {
        fn fold(v: f64, max: f64) -> f64 {
            if v < 0.0 {
                -v
            } else if v > max {
                2.0 * max - v
            } else {
                v
            }
        }
        // One fold handles overshoot < span; clamp guards deeper overshoot.
        self.clamp(Point::new(fold(p.x, self.width), fold(p.y, self.height)))
    }
}

/// A uniform grid of square cells covering the bounding box of a point
/// set — the binning structure behind the spatial-hash topology build.
///
/// With cell side equal to the radio range, any two points within range
/// of each other land in the same cell or in one of its eight
/// neighbours, so a range query only has to inspect a 3 × 3 block of
/// cells instead of every point.
///
/// The grid is anchored at the point set's minimum corner (not at the
/// terrain origin) so it works for any coordinate cloud, and every
/// lookup clamps into bounds so floating-point edge cases can never
/// index outside the grid.
///
/// # Example
///
/// ```
/// use mp2p_mobility::{CellGrid, Point};
///
/// let pts = [Point::new(0.0, 0.0), Point::new(600.0, 250.0)];
/// let grid = CellGrid::from_points(&pts, 250.0);
/// assert_eq!((grid.cols(), grid.rows()), (3, 2));
/// assert_eq!(grid.cell_coords(pts[0]), (0, 0));
/// assert_eq!(grid.cell_coords(pts[1]), (2, 1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellGrid {
    min_x: f64,
    min_y: f64,
    cell: f64,
    cols: u32,
    rows: u32,
}

impl CellGrid {
    /// Builds the grid over `points` with square cells of side `cell`
    /// metres. An empty point set yields a single-cell grid.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not finite and positive, or any coordinate is
    /// not finite.
    pub fn from_points(points: &[Point], cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "cell side must be finite and positive, got {cell}"
        );
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in points {
            assert!(
                p.x.is_finite() && p.y.is_finite(),
                "cannot bin non-finite point {p}"
            );
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if points.is_empty() {
            (min_x, min_y, max_x, max_y) = (0.0, 0.0, 0.0, 0.0);
        }
        let span_cells = |min: f64, max: f64| -> u32 {
            // +1: a span of exactly k cells still needs a bin for the
            // point sitting on the far edge.
            (((max - min) / cell).floor() as u32).saturating_add(1)
        };
        CellGrid {
            min_x,
            min_y,
            cell,
            cols: span_cells(min_x, max_x),
            rows: span_cells(min_y, max_y),
        }
    }

    /// Cell side in metres.
    pub fn cell(&self) -> f64 {
        self.cell
    }

    /// Number of cell columns (≥ 1).
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Number of cell rows (≥ 1).
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Total number of cells.
    pub fn cell_count(&self) -> usize {
        self.cols as usize * self.rows as usize
    }

    /// Column/row of the cell containing `p`, clamped into the grid.
    pub fn cell_coords(&self, p: Point) -> (u32, u32) {
        let bin = |v: f64, min: f64, n: u32| -> u32 {
            let idx = ((v - min) / self.cell).floor();
            if idx <= 0.0 {
                0
            } else {
                (idx as u32).min(n - 1)
            }
        };
        (
            bin(p.x, self.min_x, self.cols),
            bin(p.y, self.min_y, self.rows),
        )
    }

    /// Row-major linear index of the cell containing `p`.
    pub fn cell_index(&self, p: Point) -> usize {
        let (cx, cy) = self.cell_coords(p);
        cy as usize * self.cols as usize + cx as usize
    }

    /// Row-major linear index of cell `(cx, cy)`.
    pub fn index_of(&self, cx: u32, cy: u32) -> usize {
        debug_assert!(cx < self.cols && cy < self.rows);
        cy as usize * self.cols as usize + cx as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_and_lerp_basics() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 2.0), b, "lerp clamps t");
    }

    #[test]
    fn terrain_contains_and_clamp() {
        let t = Terrain::new(100.0, 50.0);
        assert!(t.contains(Point::new(0.0, 0.0)));
        assert!(t.contains(Point::new(100.0, 50.0)));
        assert!(!t.contains(Point::new(100.1, 0.0)));
        assert_eq!(t.clamp(Point::new(-5.0, 60.0)), Point::new(0.0, 50.0));
    }

    #[test]
    fn reflect_folds_overshoot() {
        let t = Terrain::new(100.0, 100.0);
        assert_eq!(t.reflect(Point::new(-10.0, 50.0)), Point::new(10.0, 50.0));
        assert_eq!(t.reflect(Point::new(110.0, 50.0)), Point::new(90.0, 50.0));
        assert_eq!(t.reflect(Point::new(50.0, 50.0)), Point::new(50.0, 50.0));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn terrain_rejects_zero_dimension() {
        let _ = Terrain::new(0.0, 10.0);
    }

    #[test]
    fn cell_grid_bins_and_clamps() {
        let pts = [
            Point::new(100.0, 100.0),
            Point::new(350.0, 100.0),
            Point::new(100.0, 851.0),
        ];
        let g = CellGrid::from_points(&pts, 250.0);
        assert_eq!((g.cols(), g.rows()), (2, 4));
        assert_eq!(g.cell_count(), 8);
        assert_eq!(g.cell_coords(pts[0]), (0, 0));
        assert_eq!(g.cell_coords(pts[1]), (1, 0));
        assert_eq!(g.cell_coords(pts[2]), (0, 3));
        // Far-edge and out-of-box points clamp into the grid.
        assert_eq!(g.cell_coords(Point::new(350.0, 851.0)), (1, 3));
        assert_eq!(g.cell_coords(Point::new(-10.0, 9_999.0)), (0, 3));
        assert_eq!(g.index_of(1, 3), g.cell_index(Point::new(350.0, 851.0)));
    }

    #[test]
    fn cell_grid_handles_degenerate_point_sets() {
        let empty = CellGrid::from_points(&[], 250.0);
        assert_eq!(empty.cell_count(), 1);
        let single = CellGrid::from_points(&[Point::new(42.0, 7.0)], 1.0);
        assert_eq!(single.cell_count(), 1);
        assert_eq!(single.cell_index(Point::new(42.0, 7.0)), 0);
    }

    proptest! {
        /// Every point of the source set lands inside the grid, and two
        /// points within one cell side of each other are never more than
        /// one cell apart on either axis (the 3×3 scan invariant).
        #[test]
        fn prop_cell_grid_neighbour_invariant(seed in any::<u64>(), n in 1usize..40) {
            let mut rng = mp2p_sim::SimRng::from_seed(seed, 3);
            let terrain = Terrain::new(2_000.0, 1_200.0);
            let pts: Vec<Point> = (0..n).map(|_| terrain.random_point(&mut rng)).collect();
            let g = CellGrid::from_points(&pts, 250.0);
            for (i, &a) in pts.iter().enumerate() {
                let (ax, ay) = g.cell_coords(a);
                prop_assert!(ax < g.cols() && ay < g.rows());
                for &b in &pts[i + 1..] {
                    if a.distance(b) <= 250.0 {
                        let (bx, by) = g.cell_coords(b);
                        prop_assert!(ax.abs_diff(bx) <= 1 && ay.abs_diff(by) <= 1);
                    }
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_random_point_inside(seed in any::<u64>(), w in 1.0f64..5_000.0, h in 1.0f64..5_000.0) {
            let t = Terrain::new(w, h);
            let mut rng = mp2p_sim::SimRng::from_seed(seed, 0);
            for _ in 0..16 {
                prop_assert!(t.contains(t.random_point(&mut rng)));
            }
        }

        #[test]
        fn prop_reflect_lands_inside(x in -99.0f64..199.0, y in -99.0f64..199.0) {
            let t = Terrain::new(100.0, 100.0);
            prop_assert!(t.contains(t.reflect(Point::new(x, y))));
        }

        #[test]
        fn prop_lerp_stays_on_segment(t in 0.0f64..1.0) {
            let a = Point::new(0.0, 0.0);
            let b = Point::new(10.0, 0.0);
            let p = a.lerp(b, t);
            prop_assert!(p.x >= 0.0 && p.x <= 10.0 && p.y == 0.0);
        }
    }
}
