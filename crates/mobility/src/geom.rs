//! Planar geometry for the flatland terrain.

use std::fmt;

use mp2p_sim::SimRng;

/// A position in metres on the flatland terrain.
///
/// # Example
///
/// ```
/// use mp2p_mobility::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// assert_eq!(a.lerp(b, 0.5), Point::new(1.5, 2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in metres.
    pub x: f64,
    /// Vertical coordinate in metres.
    pub y: f64,
}

impl Point {
    /// Creates a point from coordinates in metres.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in metres.
    pub fn distance(self, other: Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Linear interpolation: the point a fraction `t` of the way to `other`.
    ///
    /// `t` is clamped to `[0, 1]`.
    #[must_use]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        let t = t.clamp(0.0, 1.0);
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}m, {:.1}m)", self.x, self.y)
    }
}

/// The rectangular simulation area (`T_Area` in Table 1: 1.5 km × 1.5 km).
///
/// # Example
///
/// ```
/// use mp2p_mobility::{Point, Terrain};
///
/// let terrain = Terrain::paper_default();
/// assert_eq!(terrain.width(), 1_500.0);
/// assert!(terrain.contains(Point::new(750.0, 750.0)));
/// assert!(!terrain.contains(Point::new(-1.0, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Terrain {
    width: f64,
    height: f64,
}

impl Terrain {
    /// Creates a terrain of the given dimensions in metres.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not finite and positive.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0 && height.is_finite() && height > 0.0,
            "terrain dimensions must be finite and positive, got {width} x {height}"
        );
        Terrain { width, height }
    }

    /// The paper's default 1500 m × 1500 m flatland (Table 1).
    pub fn paper_default() -> Self {
        Terrain::new(1_500.0, 1_500.0)
    }

    /// Width in metres.
    pub fn width(self) -> f64 {
        self.width
    }

    /// Height in metres.
    pub fn height(self) -> f64 {
        self.height
    }

    /// True if `p` lies inside the terrain (inclusive of edges).
    pub fn contains(self, p: Point) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Clamps `p` to the terrain boundary.
    #[must_use]
    pub fn clamp(self, p: Point) -> Point {
        Point::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height))
    }

    /// A uniformly random point inside the terrain.
    pub fn random_point(self, rng: &mut SimRng) -> Point {
        Point::new(
            rng.uniform_f64() * self.width,
            rng.uniform_f64() * self.height,
        )
    }

    /// Reflects `p` back into the terrain, mirror-style, for models that
    /// bounce off walls. Works for overshoots of less than one terrain
    /// span.
    #[must_use]
    pub fn reflect(self, p: Point) -> Point {
        fn fold(v: f64, max: f64) -> f64 {
            if v < 0.0 {
                -v
            } else if v > max {
                2.0 * max - v
            } else {
                v
            }
        }
        // One fold handles overshoot < span; clamp guards deeper overshoot.
        self.clamp(Point::new(fold(p.x, self.width), fold(p.y, self.height)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_and_lerp_basics() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 2.0), b, "lerp clamps t");
    }

    #[test]
    fn terrain_contains_and_clamp() {
        let t = Terrain::new(100.0, 50.0);
        assert!(t.contains(Point::new(0.0, 0.0)));
        assert!(t.contains(Point::new(100.0, 50.0)));
        assert!(!t.contains(Point::new(100.1, 0.0)));
        assert_eq!(t.clamp(Point::new(-5.0, 60.0)), Point::new(0.0, 50.0));
    }

    #[test]
    fn reflect_folds_overshoot() {
        let t = Terrain::new(100.0, 100.0);
        assert_eq!(t.reflect(Point::new(-10.0, 50.0)), Point::new(10.0, 50.0));
        assert_eq!(t.reflect(Point::new(110.0, 50.0)), Point::new(90.0, 50.0));
        assert_eq!(t.reflect(Point::new(50.0, 50.0)), Point::new(50.0, 50.0));
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn terrain_rejects_zero_dimension() {
        let _ = Terrain::new(0.0, 10.0);
    }

    proptest! {
        #[test]
        fn prop_random_point_inside(seed in any::<u64>(), w in 1.0f64..5_000.0, h in 1.0f64..5_000.0) {
            let t = Terrain::new(w, h);
            let mut rng = mp2p_sim::SimRng::from_seed(seed, 0);
            for _ in 0..16 {
                prop_assert!(t.contains(t.random_point(&mut rng)));
            }
        }

        #[test]
        fn prop_reflect_lands_inside(x in -99.0f64..199.0, y in -99.0f64..199.0) {
            let t = Terrain::new(100.0, 100.0);
            prop_assert!(t.contains(t.reflect(Point::new(x, y))));
        }

        #[test]
        fn prop_lerp_stays_on_segment(t in 0.0f64..1.0) {
            let a = Point::new(0.0, 0.0);
            let b = Point::new(10.0, 0.0);
            let p = a.lerp(b, t);
            prop_assert!(p.x >= 0.0 && p.x <= 10.0 && p.y == 0.0);
        }
    }
}
