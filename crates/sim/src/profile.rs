//! Host-side wall-clock profiling of the event loop.
//!
//! The simulator's own clock ([`crate::SimTime`]) is *simulated* time;
//! this module measures *real* time — where the host CPU actually goes
//! while the event loop runs. The [`Profiler`] is strictly
//! observational: it only ever reads [`std::time::Instant`] and
//! accumulates into its own buckets, never into simulation state, so a
//! seeded run produces bit-identical results whether profiling is on or
//! off. The price of a disabled profiler is one branch per scope.
//!
//! Scopes are named by `&'static str` bucket labels (the driver uses
//! `event:*` for world event kinds and `msg:*` for protocol message
//! classes). A scope is opened with [`Profiler::start`] — which returns
//! `None` when disabled so the hot path skips the clock read entirely —
//! and closed with [`Profiler::stop`].
//!
//! # Example
//!
//! ```
//! use mp2p_sim::Profiler;
//!
//! let mut prof = Profiler::enabled();
//! prof.begin();
//! let token = prof.start();
//! // ... do the work being measured ...
//! prof.stop("event:rx", token);
//! let report = prof.finish(1_000).expect("profiling was on");
//! assert_eq!(report.buckets[0].name, "event:rx");
//! assert_eq!(report.buckets[0].count, 1);
//! ```

use std::time::Instant;

use crate::queue::QueueStats;

/// Wall time and invocation count for one named scope family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfBucket {
    /// Bucket label (`event:query`, `msg:POLL`, ...).
    pub name: &'static str,
    /// Scopes closed under this label.
    pub count: u64,
    /// Total wall-clock nanoseconds spent inside those scopes.
    pub nanos: u128,
}

impl PerfBucket {
    /// Total wall time in seconds.
    pub fn secs(&self) -> f64 {
        self.nanos as f64 / 1e9
    }
}

/// A scoped wall-clock profiler with named buckets.
///
/// Construct with [`Profiler::disabled`] (the default, zero-overhead
/// beyond one branch per scope) or [`Profiler::enabled`].
#[derive(Debug, Clone)]
pub struct Profiler {
    on: bool,
    run_started: Option<Instant>,
    wall_nanos: u128,
    buckets: Vec<PerfBucket>,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler::disabled()
    }
}

impl Profiler {
    /// A profiler that measures nothing; every call is a cheap no-op.
    pub fn disabled() -> Self {
        Profiler {
            on: false,
            run_started: None,
            wall_nanos: 0,
            buckets: Vec::new(),
        }
    }

    /// A live profiler.
    pub fn enabled() -> Self {
        Profiler {
            on: true,
            run_started: None,
            wall_nanos: 0,
            buckets: Vec::with_capacity(32),
        }
    }

    /// Whether scopes are being measured.
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Marks the start of the measured run (the events/sec denominator).
    pub fn begin(&mut self) {
        if self.on {
            self.run_started = Some(Instant::now());
        }
    }

    /// Opens a scope. Returns `None` — without reading the clock — when
    /// the profiler is disabled.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.on {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a scope opened by [`Profiler::start`], attributing the
    /// elapsed wall time to `name`. A `None` token no-ops, so call sites
    /// need no branch of their own.
    #[inline]
    pub fn stop(&mut self, name: &'static str, token: Option<Instant>) {
        let Some(started) = token else {
            return;
        };
        let nanos = started.elapsed().as_nanos();
        // Bucket families are small (tens of names); a linear scan is
        // cheaper than hashing short strings and keeps insertion order.
        match self.buckets.iter_mut().find(|b| b.name == name) {
            Some(b) => {
                b.count += 1;
                b.nanos += nanos;
            }
            None => self.buckets.push(PerfBucket {
                name,
                count: 1,
                nanos,
            }),
        }
    }

    /// Ends the run and produces the report: `None` when disabled.
    ///
    /// `sim_millis` is the simulated duration covered, so the report can
    /// state the sim-time-to-real-time ratio. Queue and allocation
    /// counters start zeroed; the driver fills them in.
    pub fn finish(&mut self, sim_millis: u64) -> Option<PerfReport> {
        if !self.on {
            return None;
        }
        if let Some(started) = self.run_started.take() {
            self.wall_nanos = started.elapsed().as_nanos();
        }
        let mut buckets = std::mem::take(&mut self.buckets);
        buckets.sort_by(|a, b| b.nanos.cmp(&a.nanos).then(a.name.cmp(b.name)));
        Some(PerfReport {
            wall_nanos: self.wall_nanos.max(1),
            sim_millis,
            buckets,
            queue: QueueStats::default(),
            frames_sent: 0,
            journal_bytes: 0,
        })
    }
}

/// The end-of-run profiling report: where wall-clock time went, how the
/// event queue behaved, and what the run allocated at the message/trace
/// layer. Serialised (behind an opt-in flag) as the `perf` section of
/// the run report and as `BENCH_*.json` snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfReport {
    /// Wall-clock nanoseconds spent in the event loop (≥ 1).
    pub wall_nanos: u128,
    /// Simulated milliseconds covered by the run.
    pub sim_millis: u64,
    /// Per-scope wall time, sorted hottest first.
    pub buckets: Vec<PerfBucket>,
    /// Event-queue telemetry (push/pop totals, high-water marks).
    pub queue: QueueStats,
    /// MAC-level frames transmitted over the whole run (warm-up
    /// included; contrast with the report's post-warm-up traffic).
    pub frames_sent: u64,
    /// Bytes the flight recorder wrote to its journal (0 untraced).
    pub journal_bytes: u64,
}

impl PerfReport {
    /// Wall-clock seconds spent in the event loop.
    pub fn wall_secs(&self) -> f64 {
        self.wall_nanos as f64 / 1e9
    }

    /// Events handled (scopes closed under the `event:` family).
    pub fn events(&self) -> u64 {
        self.buckets
            .iter()
            .filter(|b| b.name.starts_with("event:"))
            .map(|b| b.count)
            .sum()
    }

    /// Event-loop throughput in events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.events() as f64 / self.wall_secs()
    }

    /// Simulated seconds per wall-clock second (how much faster than
    /// real time the run went).
    pub fn sim_time_ratio(&self) -> f64 {
        (self.sim_millis as f64 / 1e3) / self.wall_secs()
    }

    /// The `k` hottest buckets (the list is pre-sorted by wall time).
    pub fn top(&self, k: usize) -> &[PerfBucket] {
        &self.buckets[..k.min(self.buckets.len())]
    }

    /// A bucket's share of total measured wall time, in `[0, 1]`.
    pub fn share(&self, bucket: &PerfBucket) -> f64 {
        let total: u128 = self.buckets.iter().map(|b| b.nanos).sum();
        if total == 0 {
            0.0
        } else {
            bucket.nanos as f64 / total as f64
        }
    }

    /// Serialises the report as one JSON object. Bucket names are
    /// compile-time labels from a controlled vocabulary
    /// (`event:*`/`msg:*`), asserted free of characters needing escapes.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            "{{\"wall_secs\":{},\"sim_secs\":{},\"events\":{},\"events_per_sec\":{},\"sim_time_ratio\":{}",
            self.wall_secs(),
            self.sim_millis as f64 / 1e3,
            self.events(),
            self.events_per_sec(),
            self.sim_time_ratio(),
        );
        let _ = write!(
            s,
            ",\"queue\":{{\"pushes\":{},\"pops\":{},\"peak_len\":{},\"peak_capacity\":{}}}",
            self.queue.pushes, self.queue.pops, self.queue.peak_len, self.queue.peak_capacity,
        );
        let _ = write!(
            s,
            ",\"frames_sent\":{},\"journal_bytes\":{}",
            self.frames_sent, self.journal_bytes,
        );
        s.push_str(",\"buckets\":[");
        for (i, b) in self.buckets.iter().enumerate() {
            debug_assert!(
                b.name.chars().all(|c| c != '"' && c != '\\' && c >= ' '),
                "bucket label {:?} would need JSON escaping",
                b.name
            );
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"count\":{},\"wall_secs\":{},\"share\":{}}}",
                b.name,
                b.count,
                b.secs(),
                self.share(b),
            );
        }
        s.push_str("]}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_measures_nothing() {
        let mut prof = Profiler::disabled();
        assert!(!prof.is_enabled());
        prof.begin();
        let token = prof.start();
        assert!(token.is_none());
        prof.stop("event:query", token);
        assert!(prof.finish(1_000).is_none());
    }

    #[test]
    fn scopes_accumulate_per_bucket() {
        let mut prof = Profiler::enabled();
        prof.begin();
        for _ in 0..3 {
            let t = prof.start();
            prof.stop("event:rx", t);
        }
        let t = prof.start();
        prof.stop("msg:POLL", t);
        let report = prof.finish(2_000).expect("enabled");
        assert_eq!(report.sim_millis, 2_000);
        assert_eq!(report.events(), 3, "msg buckets are not events");
        let rx = report
            .buckets
            .iter()
            .find(|b| b.name == "event:rx")
            .expect("rx bucket");
        assert_eq!(rx.count, 3);
        assert!(report.events_per_sec() > 0.0);
        assert!(report.wall_secs() > 0.0);
    }

    #[test]
    fn buckets_sort_hottest_first_and_shares_sum_to_one() {
        let mut prof = Profiler::enabled();
        prof.begin();
        // A long scope and a short one.
        let t = prof.start();
        std::thread::sleep(std::time::Duration::from_millis(5));
        prof.stop("event:slow", t);
        let t = prof.start();
        prof.stop("event:fast", t);
        let report = prof.finish(1_000).expect("enabled");
        assert_eq!(report.buckets[0].name, "event:slow");
        assert_eq!(report.top(1).len(), 1);
        assert_eq!(report.top(10).len(), 2);
        let total: f64 = report.buckets.iter().map(|b| report.share(b)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn report_json_is_wellformed_and_carries_every_section() {
        let mut prof = Profiler::enabled();
        prof.begin();
        let t = prof.start();
        prof.stop("event:sample", t);
        let mut report = prof.finish(60_000).expect("enabled");
        report.queue = QueueStats {
            pushes: 10,
            pops: 9,
            peak_len: 4,
            peak_capacity: 16,
        };
        report.frames_sent = 7;
        report.journal_bytes = 321;
        let json = report.to_json();
        for key in [
            "\"wall_secs\":",
            "\"sim_secs\":60,",
            "\"events\":1,",
            "\"events_per_sec\":",
            "\"sim_time_ratio\":",
            "\"queue\":{\"pushes\":10,\"pops\":9,\"peak_len\":4,\"peak_capacity\":16}",
            "\"frames_sent\":7",
            "\"journal_bytes\":321",
            "\"name\":\"event:sample\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
