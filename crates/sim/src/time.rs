//! Simulated time.
//!
//! Time is measured in whole milliseconds from the start of the run. The
//! paper's scenarios span 5 simulated hours (Table 1), far inside `u64`
//! range, and millisecond resolution comfortably resolves per-hop MAC
//! delays (hundreds of microseconds round to 1 ms granularity events; the
//! network layer accumulates sub-millisecond parts before scheduling).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An instant in simulated time, in milliseconds since the run started.
///
/// `SimTime` is totally ordered and only produced by advancing the clock;
/// subtracting two instants yields a [`SimDuration`].
///
/// # Example
///
/// ```
/// use mp2p_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(90);
/// assert_eq!(t.as_millis(), 90_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_mins(1) + SimDuration::from_secs(30));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in milliseconds.
///
/// # Example
///
/// ```
/// use mp2p_sim::SimDuration;
///
/// assert_eq!(SimDuration::from_mins(2).as_millis(), 120_000);
/// assert_eq!(SimDuration::from_secs(1) * 3, SimDuration::from_secs(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw milliseconds since the start of the run.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Milliseconds since the start of the run.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run, as floating point.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The duration since `earlier`, or [`SimDuration::ZERO`] if `earlier`
    /// is in the future.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000)
    }

    /// Builds a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Builds a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000)
    }

    /// Builds a duration from fractional seconds, rounding to milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        SimDuration((secs * 1_000.0).round() as u64)
    }

    /// Length in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// True if this is the empty duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies by a non-negative floating factor, rounding to
    /// milliseconds (used for jitter and backoff scaling).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of two durations.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs <= self, "time went backwards: {self} - {rhs}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0 % 1_000;
        let secs = self.0 / 1_000;
        let (h, m, s) = (secs / 3_600, (secs % 3_600) / 60, secs % 60);
        write!(f, "{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ms", self.0)
        } else if self.0.is_multiple_of(60_000) {
            write!(f, "{}min", self.0 / 60_000)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_mins(2), SimDuration::from_secs(120));
        assert_eq!(SimDuration::from_hours(5), SimDuration::from_mins(300));
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
    }

    #[test]
    fn time_arithmetic_round_trips() {
        let start = SimTime::from_millis(42);
        let d = SimDuration::from_secs(3);
        assert_eq!((start + d) - start, d);
        assert_eq!((start + d).as_millis(), 3_042);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_millis(10);
        let late = SimTime::from_millis(50);
        assert_eq!(late.saturating_since(early).as_millis(), 40);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn mul_f64_rounds_to_millis() {
        assert_eq!(SimDuration::from_millis(10).mul_f64(0.25).as_millis(), 3);
        assert_eq!(
            SimDuration::from_secs(2).mul_f64(1.5),
            SimDuration::from_secs(3)
        );
        assert_eq!(SimDuration::from_secs(1).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn mul_f64_rejects_negative() {
        let _ = SimDuration::from_secs(1).mul_f64(-1.0);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::ZERO + SimDuration::from_hours(1) + SimDuration::from_secs(90);
        assert_eq!(t.to_string(), "01:01:30.000");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5ms");
        assert_eq!(SimDuration::from_mins(3).to_string(), "3min");
        assert_eq!(SimDuration::from_millis(1_500).to_string(), "1.500s");
    }

    #[test]
    fn duration_min_max() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn duration_sub_saturates() {
        let a = SimDuration::from_secs(1);
        let b = SimDuration::from_secs(2);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(b - a, SimDuration::from_secs(1));
    }
}
