//! Deterministic discrete-event simulation kernel.
//!
//! This crate is the substrate every other crate in the workspace builds on.
//! It replaces the role GloMoSim \[Zen98\] played in the original RPCC paper
//! ("Consistency of Cooperative Caching in Mobile Peer-to-Peer Systems over
//! MANET", ICDCS 2005): a clock, an event queue with stable ordering, and
//! reproducible random-number streams.
//!
//! The kernel is intentionally minimal and fully deterministic:
//!
//! * [`SimTime`] / [`SimDuration`] — millisecond-resolution simulated time.
//! * [`EventQueue`] — a stable priority queue: events scheduled for the same
//!   instant pop in insertion order, so runs are bit-for-bit reproducible.
//! * [`SimRng`] — seeded random streams with the samplers the paper's
//!   workloads need (exponential inter-arrival times, uniform ranges, Zipf
//!   item popularity, Bernoulli loss).
//! * [`NodeId`] / [`ItemId`] — the identifier newtypes shared by the whole
//!   system model (Section 3 of the paper: hosts `M_1..M_m`, items
//!   `D_1..D_n`).
//! * [`Profiler`] — strictly observational host-side wall-clock
//!   profiling of the event loop (reads `std::time::Instant`, never
//!   feeds back into sim state), plus [`QueueStats`] queue telemetry.
//!
//! # Example
//!
//! ```
//! use mp2p_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.push(SimTime::ZERO + SimDuration::from_secs(5), "later");
//! queue.push(SimTime::ZERO, "first");
//! queue.push(SimTime::ZERO, "second");
//!
//! let (t, e) = queue.pop().unwrap();
//! assert_eq!((t, e), (SimTime::ZERO, "first"));
//! assert_eq!(queue.pop().unwrap().1, "second");
//! assert_eq!(queue.pop().unwrap().1, "later");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ids;
pub mod profile;
mod queue;
mod rng;
mod time;

pub use ids::{ItemId, NodeId};
pub use profile::{PerfBucket, PerfReport, Profiler};
pub use queue::{EventQueue, QueueStats};
pub use rng::{SimRng, Zipf};
pub use time::{SimDuration, SimTime};
