//! The stable event queue at the heart of the simulator.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered event queue with stable FIFO ordering for ties.
///
/// Events scheduled for the same instant are popped in the order they were
/// pushed. This stability is what makes whole-system runs deterministic:
/// two protocol actions scheduled "now" never race on heap internals.
///
/// # Example
///
/// ```
/// use mp2p_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(7), 'b');
/// q.push(SimTime::from_millis(3), 'a');
/// assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(3), 'a')));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(7), 'b')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    pops: u64,
    peak_len: usize,
    peak_capacity: usize,
}

/// Lifetime telemetry of one [`EventQueue`]: totals and high-water
/// marks. Strictly observational — the counters never influence
/// scheduling order, so reading them cannot perturb a seeded run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events pushed over the queue's lifetime.
    pub pushes: u64,
    /// Events popped over the queue's lifetime.
    pub pops: u64,
    /// Largest number of events ever pending at once.
    pub peak_len: usize,
    /// Largest backing-heap capacity ever reserved.
    pub peak_capacity: usize,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pops: 0,
            peak_len: 0,
            peak_capacity: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            pops: 0,
            peak_len: 0,
            peak_capacity: capacity,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.peak_len = self.peak_len.max(self.heap.len());
        self.peak_capacity = self.peak_capacity.max(self.heap.capacity());
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let popped = self.heap.pop().map(|e| (e.time, e.event));
        if popped.is_some() {
            self.pops += 1;
        }
        popped
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Lifetime telemetry: push/pop totals and high-water marks.
    /// `pushes` equals the number of sequence numbers ever issued, so
    /// `pushes - pops` is the current backlog plus anything cleared.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            pushes: self.next_seq,
            pops: self.pops,
            peak_len: self.peak_len,
            peak_capacity: self.peak_capacity.max(self.heap.capacity()),
        }
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (time, event) in iter {
            self.push(time, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut queue = EventQueue::new();
        queue.extend(iter);
        queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (t, e) in [(5, "e5"), (1, "e1"), (3, "e3"), (2, "e2"), (4, "e4")] {
            q.push(SimTime::from_millis(t), e);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["e1", "e2", "e3", "e4", "e5"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(10);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "late");
        q.push(SimTime::from_millis(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::from_millis(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
        assert!(q.is_empty());
    }

    #[test]
    fn stats_track_totals_and_high_water() {
        let mut q = EventQueue::with_capacity(4);
        assert_eq!(
            q.stats(),
            QueueStats {
                pushes: 0,
                pops: 0,
                peak_len: 0,
                peak_capacity: 4,
            }
        );
        for i in 0..3u64 {
            q.push(SimTime::from_millis(i), i);
        }
        q.pop();
        q.push(SimTime::from_millis(9), 9);
        let s = q.stats();
        assert_eq!(s.pushes, 4);
        assert_eq!(s.pops, 1);
        assert_eq!(s.peak_len, 3);
        assert!(s.peak_capacity >= 4);
        // Draining to empty: pops catch up with pushes, peaks persist.
        while q.pop().is_some() {}
        assert_eq!(q.pop(), None);
        let s = q.stats();
        assert_eq!(s.pops, s.pushes);
        assert_eq!(s.peak_len, 3, "high-water mark survives the drain");
    }

    #[test]
    fn len_and_clear() {
        let mut q: EventQueue<u8> = (0..4).map(|i| (SimTime::from_millis(i), i as u8)).collect();
        assert_eq!(q.len(), 4);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    proptest! {
        /// The queue is a *stable* priority queue: output is the input
        /// stably sorted by timestamp.
        #[test]
        fn prop_stable_priority_order(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_millis(t), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            expected.sort(); // (time, insertion index): stable sort order
            let got: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop()).map(|(t, i)| (t.as_millis(), i)).collect();
            prop_assert_eq!(got, expected);
        }

        /// Popping never yields a timestamp earlier than the previous one.
        #[test]
        fn prop_monotone_pop(times in proptest::collection::vec(0u64..1_000, 1..100)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.push(SimTime::from_millis(t), ());
            }
            let mut last = SimTime::ZERO;
            while let Some((t, ())) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }
    }
}
