//! The stable event queue at the heart of the simulator.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered event queue with stable FIFO ordering for ties.
///
/// Events scheduled for the same instant are popped in the order they were
/// pushed. This stability is what makes whole-system runs deterministic:
/// two protocol actions scheduled "now" never race on heap internals.
///
/// # Example
///
/// ```
/// use mp2p_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(7), 'b');
/// q.push(SimTime::from_millis(3), 'a');
/// assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(3), 'a')));
/// assert_eq!(q.pop(), Some((SimTime::from_millis(7), 'b')));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Extend<(SimTime, E)> for EventQueue<E> {
    fn extend<I: IntoIterator<Item = (SimTime, E)>>(&mut self, iter: I) {
        for (time, event) in iter {
            self.push(time, event);
        }
    }
}

impl<E> FromIterator<(SimTime, E)> for EventQueue<E> {
    fn from_iter<I: IntoIterator<Item = (SimTime, E)>>(iter: I) -> Self {
        let mut queue = EventQueue::new();
        queue.extend(iter);
        queue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for (t, e) in [(5, "e5"), (1, "e1"), (3, "e3"), (2, "e2"), (4, "e4")] {
            q.push(SimTime::from_millis(t), e);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["e1", "e2", "e3", "e4", "e5"]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(10);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), "late");
        q.push(SimTime::from_millis(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::from_millis(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
        assert!(q.is_empty());
    }

    #[test]
    fn len_and_clear() {
        let mut q: EventQueue<u8> = (0..4).map(|i| (SimTime::from_millis(i), i as u8)).collect();
        assert_eq!(q.len(), 4);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    proptest! {
        /// The queue is a *stable* priority queue: output is the input
        /// stably sorted by timestamp.
        #[test]
        fn prop_stable_priority_order(times in proptest::collection::vec(0u64..50, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_millis(t), i);
            }
            let mut expected: Vec<(u64, usize)> =
                times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
            expected.sort(); // (time, insertion index): stable sort order
            let got: Vec<(u64, usize)> =
                std::iter::from_fn(|| q.pop()).map(|(t, i)| (t.as_millis(), i)).collect();
            prop_assert_eq!(got, expected);
        }

        /// Popping never yields a timestamp earlier than the previous one.
        #[test]
        fn prop_monotone_pop(times in proptest::collection::vec(0u64..1_000, 1..100)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.push(SimTime::from_millis(t), ());
            }
            let mut last = SimTime::ZERO;
            while let Some((t, ())) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }
    }
}
