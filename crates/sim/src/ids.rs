//! Identifier newtypes shared across the workspace.
//!
//! Section 3 of the paper fixes the naming: mobile hosts
//! `M = {M_1 .. M_m}` and data items `D = {D_1 .. D_n}`, with `m = n` and
//! host `M_i` acting as the *source host* of item `D_i`. The two newtypes
//! below keep those spaces statically distinct while preserving the
//! paper's index correspondence through [`NodeId::owned_item`] and
//! [`ItemId::source_host`].

use std::fmt;

/// Identifier of a mobile host (peer) in the MP2P system.
///
/// # Example
///
/// ```
/// use mp2p_sim::NodeId;
///
/// let m3 = NodeId::new(3);
/// assert_eq!(m3.owned_item().source_host(), m3);
/// assert_eq!(m3.to_string(), "M3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

/// Identifier of a data item.
///
/// # Example
///
/// ```
/// use mp2p_sim::ItemId;
///
/// assert_eq!(ItemId::new(7).to_string(), "D7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ItemId(u32);

impl NodeId {
    /// Creates a node identifier from its index.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The raw index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The data item this node is the source host of (the paper's `m = n`
    /// correspondence: `M_i` owns `D_i`).
    pub const fn owned_item(self) -> ItemId {
        ItemId(self.0)
    }

    /// Iterates over the first `count` node identifiers, `M_0 .. M_{count-1}`.
    pub fn all(count: usize) -> impl Iterator<Item = NodeId> + Clone {
        (0..count as u32).map(NodeId)
    }
}

impl ItemId {
    /// Creates an item identifier from its index.
    pub const fn new(index: u32) -> Self {
        ItemId(index)
    }

    /// The raw index of this item.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The unique source host holding this item's master copy.
    pub const fn source_host(self) -> NodeId {
        NodeId(self.0)
    }

    /// Iterates over the first `count` item identifiers, `D_0 .. D_{count-1}`.
    pub fn all(count: usize) -> impl Iterator<Item = ItemId> + Clone {
        (0..count as u32).map(ItemId)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_host_correspondence_is_involutive() {
        for node in NodeId::all(10) {
            assert_eq!(node.owned_item().source_host(), node);
        }
        for item in ItemId::all(10) {
            assert_eq!(item.source_host().owned_item(), item);
        }
    }

    #[test]
    fn all_enumerates_in_order() {
        let nodes: Vec<_> = NodeId::all(3).collect();
        assert_eq!(nodes, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
        assert_eq!(ItemId::all(0).count(), 0);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(ItemId::new(0) < ItemId::new(9));
    }
}
