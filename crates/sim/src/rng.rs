//! Seeded random streams and the samplers the paper's workloads use.
//!
//! Every stochastic component of the simulation (each node's query stream,
//! update stream, mobility, MAC jitter, …) draws from its own [`SimRng`]
//! stream derived from a master seed, so adding a new consumer never
//! perturbs existing streams and every run is exactly reproducible.
//!
//! The generator is a self-contained xoshiro256++ implementation rather
//! than a `rand` adapter: simulation results must be bit-for-bit portable
//! across platforms and across `rand` major versions, and `rand`'s `StdRng`
//! explicitly disclaims that portability.

/// A deterministic random stream (xoshiro256++).
///
/// Streams are derived from a `(master_seed, stream_id)` pair via a
/// SplitMix64 mix, so distinct ids produce statistically independent
/// streams.
///
/// # Example
///
/// ```
/// use mp2p_sim::SimRng;
///
/// let mut a = SimRng::from_seed(42, 1);
/// let mut b = SimRng::from_seed(42, 1);
/// assert_eq!(a.uniform_u64(100), b.uniform_u64(100)); // same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step: advances `seed` and returns a well-mixed word.
fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates the stream identified by `stream_id` under `master_seed`.
    pub fn from_seed(master_seed: u64, stream_id: u64) -> Self {
        let mut seed = master_seed ^ stream_id.wrapping_mul(0xA24B_AED4_963E_E407);
        let state = [
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
            splitmix64(&mut seed),
        ];
        SimRng { state }
    }

    /// Derives an independent child stream without consuming entropy from
    /// the parent; equal `(parent, child_id)` pairs derive equal streams.
    pub fn derive(&self, child_id: u64) -> SimRng {
        let fingerprint = self.state[0] ^ self.state[1].rotate_left(17) ^ self.state[2];
        SimRng::from_seed(fingerprint, child_id)
    }

    /// The next raw 64-bit output (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A uniform value in `[0, 1)`.
    pub fn uniform_f64(&mut self) -> f64 {
        // Use the high 53 bits for a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` (Lemire-style unbiased rejection).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn uniform_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "uniform_u64 bound must be positive");
        // Rejection sampling over the largest multiple of `bound`.
        let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// A uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "uniform_range requires lo <= hi, got {lo}..={hi}");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.uniform_u64(hi - lo + 1)
    }

    /// A uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn uniform_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        lo + self.uniform_f64() * (hi - lo)
    }

    /// An exponentially distributed value with the given mean (inverse-CDF
    /// sampling). This is how the paper's "exponentially distributed update
    /// interval and query interval" (Section 5) are generated.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        let u = self.uniform_f64();
        // 1 - u is in (0, 1], so ln is finite and non-positive.
        -mean * (1.0 - u).ln()
    }

    /// A Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        self.uniform_f64() < p
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.uniform_u64(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of `slice`.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.uniform_u64(slice.len() as u64) as usize;
            Some(&slice[i])
        }
    }
}

/// A Zipf(θ) sampler over ranks `0..n`, used for skewed item popularity in
/// the workload extensions (the paper's own runs use uniform popularity).
///
/// θ = 0 degenerates to uniform; larger θ concentrates mass on low ranks.
///
/// # Example
///
/// ```
/// use mp2p_sim::{SimRng, Zipf};
///
/// let zipf = Zipf::new(100, 0.8);
/// let mut rng = SimRng::from_seed(7, 0);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or not finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "Zipf exponent must be non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(theta);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Always false: the sampler is constructed with at least one rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform_f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) | Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(1, 2);
        let mut b = SimRng::from_seed(1, 2);
        for _ in 0..32 {
            assert_eq!(a.uniform_u64(1_000), b.uniform_u64(1_000));
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = SimRng::from_seed(1, 2);
        let mut b = SimRng::from_seed(1, 3);
        let same = (0..32)
            .filter(|_| a.uniform_u64(1_000) == b.uniform_u64(1_000))
            .count();
        assert!(
            same < 8,
            "streams should be nearly independent, {same}/32 collisions"
        );
    }

    #[test]
    fn derive_is_stable_and_entropy_free() {
        let parent = SimRng::from_seed(3, 4);
        let mut c1 = parent.derive(9);
        let mut c2 = parent.derive(9);
        let mut c3 = parent.derive(10);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::from_seed(9, 0);
        let n = 20_000;
        let mean = 120.0;
        let total: f64 = (0..n).map(|_| rng.exponential(mean)).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - mean).abs() < mean * 0.05,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn uniform_f64_covers_unit_interval() {
        let mut rng = SimRng::from_seed(2, 0);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u = rng.uniform_f64();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn zipf_zero_theta_is_uniform() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = SimRng::from_seed(5, 0);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (700..1_300).contains(&c),
                "uniform bucket out of range: {c}"
            );
        }
    }

    #[test]
    fn zipf_skews_to_low_ranks() {
        let zipf = Zipf::new(10, 1.2);
        let mut rng = SimRng::from_seed(5, 1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[9] * 3,
            "rank 0 should dominate: {counts:?}"
        );
    }

    #[test]
    fn choose_and_shuffle_are_deterministic() {
        let mut rng = SimRng::from_seed(11, 0);
        let mut v: Vec<u32> = (0..8).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        assert!(rng.choose::<u32>(&[]).is_none());
        assert!(rng.choose(&[42]).copied() == Some(42));
    }

    proptest! {
        #[test]
        fn prop_exponential_non_negative(seed in any::<u64>(), mean in 0.001f64..1e6) {
            let mut rng = SimRng::from_seed(seed, 0);
            let x = rng.exponential(mean);
            prop_assert!(x >= 0.0 && x.is_finite());
        }

        #[test]
        fn prop_uniform_range_in_bounds(seed in any::<u64>(), lo in 0u64..100, span in 0u64..100) {
            let mut rng = SimRng::from_seed(seed, 1);
            let hi = lo + span;
            let x = rng.uniform_range(lo, hi);
            prop_assert!(x >= lo && x <= hi);
        }

        #[test]
        fn prop_uniform_u64_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
            let mut rng = SimRng::from_seed(seed, 3);
            prop_assert!(rng.uniform_u64(bound) < bound);
        }

        #[test]
        fn prop_zipf_in_range(seed in any::<u64>(), n in 1usize..500, theta in 0.0f64..2.5) {
            let zipf = Zipf::new(n, theta);
            let mut rng = SimRng::from_seed(seed, 2);
            prop_assert!(zipf.sample(&mut rng) < n);
        }
    }
}
