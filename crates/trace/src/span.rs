//! Causal span reconstruction: from a flat event stream to per-query
//! span trees.
//!
//! A query's *span* is everything that happened between its
//! [`TraceEvent::QueryIssued`] and its `QueryServed`/`QueryFailed`
//! terminal: the causal phases it entered ([`SpanPhase`] markers — poll
//! unicast, ring-widening floods, source fetch, fallback degradation),
//! and every frame sent or delivered on its behalf (the `span`-tagged
//! `MsgSend`/`MsgDeliver` events). [`SpanAssembler`] folds the stream —
//! live behind a sink or offline from a journal — into one
//! [`QuerySpan`] per query, each with per-phase sim-time durations and
//! a computed critical path.

use std::collections::HashMap;

use mp2p_metrics::MessageClass;
use mp2p_sim::{ItemId, NodeId, SimDuration, SimTime};

use crate::event::{LevelTag, ServedBy, SpanPhase, TraceEvent};

/// One phase entry inside a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseMark {
    /// Which phase the query entered.
    pub phase: SpanPhase,
    /// When it entered (sim time).
    pub at: SimTime,
    /// 1-based attempt number within the phase (0 = not applicable).
    pub attempt: u8,
}

/// One span-tagged message delivery (an observed hop of the span tree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRecord {
    /// When the message arrived.
    pub at: SimTime,
    /// What it carried.
    pub class: MessageClass,
    /// Hops travelled origin → receiver.
    pub hops: u8,
    /// True if it arrived via a flood.
    pub via_flood: bool,
}

/// How (and whether) a span terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// No terminal event seen (query still in flight when the journal
    /// ended; the world censors these from its report).
    Open,
    /// The query was answered.
    Served {
        /// When the answer landed.
        at: SimTime,
        /// Which copy answered.
        served_by: ServedBy,
    },
    /// The query timed out unanswered.
    Failed {
        /// When it gave up.
        at: SimTime,
    },
}

/// One edge of a span's critical path: the span spent `[start, end)`
/// in the activity named by `label`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSegment {
    /// Activity label: a [`SpanPhase::label`], `"local"` for
    /// same-instant cache hits, or `"issue"` for the pre-phase gap.
    pub label: &'static str,
    /// Segment start (sim time).
    pub start: SimTime,
    /// Segment end (sim time).
    pub end: SimTime,
}

impl PathSegment {
    /// The segment's duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// The reconstructed causal span of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpan {
    /// The query id (span id — they coincide by construction).
    pub query: u64,
    /// The issuing peer.
    pub node: NodeId,
    /// The item queried.
    pub item: ItemId,
    /// The consistency level requested.
    pub level: LevelTag,
    /// When the query was issued.
    pub issued: SimTime,
    /// Phases entered, in order.
    pub phases: Vec<PhaseMark>,
    /// Frame transmissions tagged with this span (per hop).
    pub sends: u64,
    /// Bytes on the air for this span.
    pub send_bytes: u64,
    /// Deliveries tagged with this span, in arrival order.
    pub hops: Vec<HopRecord>,
    /// How the span ended.
    pub outcome: SpanOutcome,
}

impl QuerySpan {
    /// Issue-to-answer latency; `None` unless the span was served.
    pub fn latency(&self) -> Option<SimDuration> {
        match self.outcome {
            SpanOutcome::Served { at, .. } => Some(at.saturating_since(self.issued)),
            _ => None,
        }
    }

    /// True for a query answered from the local cache in the same
    /// instant it was issued (no phases, no network activity).
    pub fn is_local_hit(&self) -> bool {
        self.phases.is_empty() && matches!(self.outcome, SpanOutcome::Served { .. })
    }

    /// The end instant used to close the last path segment.
    fn end_instant(&self) -> SimTime {
        match self.outcome {
            SpanOutcome::Served { at, .. } | SpanOutcome::Failed { at } => at,
            SpanOutcome::Open => self.phases.last().map_or(self.issued, |m| m.at),
        }
    }

    /// The span's critical path: consecutive segments from issue to
    /// terminal, one per phase entered (a phase lasts until the next
    /// phase starts, or until the terminal event). A served span with
    /// no phases yields a single `"local"` segment; a leading
    /// `"issue"` segment appears only if the first phase started
    /// strictly after the issue instant.
    pub fn critical_path(&self) -> Vec<PathSegment> {
        let end = self.end_instant();
        if self.phases.is_empty() {
            return vec![PathSegment {
                label: "local",
                start: self.issued,
                end,
            }];
        }
        let mut path = Vec::with_capacity(self.phases.len() + 1);
        if self.phases[0].at > self.issued {
            path.push(PathSegment {
                label: "issue",
                start: self.issued,
                end: self.phases[0].at,
            });
        }
        for (i, mark) in self.phases.iter().enumerate() {
            let seg_end = self.phases.get(i + 1).map_or(end, |next| next.at);
            path.push(PathSegment {
                label: mark.phase.label(),
                start: mark.at,
                end: seg_end,
            });
        }
        path
    }
}

/// Folds a `(SimTime, TraceEvent)` stream into per-query [`QuerySpan`]s.
///
/// Feed it events in emission order (the journal is written in order);
/// call [`SpanAssembler::finish`] for the assembled spans sorted by
/// query id.
#[derive(Debug, Default)]
pub struct SpanAssembler {
    spans: HashMap<u64, QuerySpan>,
    /// `MsgSend`/`MsgDeliver` events carrying a span tag for a query
    /// whose `QueryIssued` was never seen (truncated journal).
    pub orphan_tagged: u64,
}

impl SpanAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one event.
    pub fn record(&mut self, at: SimTime, event: &TraceEvent) {
        match *event {
            TraceEvent::QueryIssued {
                node,
                query,
                item,
                level,
            } => {
                self.spans.entry(query).or_insert(QuerySpan {
                    query,
                    node,
                    item,
                    level,
                    issued: at,
                    phases: Vec::new(),
                    sends: 0,
                    send_bytes: 0,
                    hops: Vec::new(),
                    outcome: SpanOutcome::Open,
                });
            }
            TraceEvent::QueryPhase {
                query,
                phase,
                attempt,
                ..
            } => {
                if let Some(span) = self.spans.get_mut(&query) {
                    span.phases.push(PhaseMark { phase, at, attempt });
                }
            }
            TraceEvent::MsgSend {
                bytes,
                span: Some(query),
                ..
            } => match self.spans.get_mut(&query) {
                Some(span) => {
                    span.sends += 1;
                    span.send_bytes += u64::from(bytes);
                }
                None => self.orphan_tagged += 1,
            },
            TraceEvent::MsgDeliver {
                class,
                hops,
                via_flood,
                span: Some(query),
                ..
            } => match self.spans.get_mut(&query) {
                Some(span) => span.hops.push(HopRecord {
                    at,
                    class,
                    hops,
                    via_flood,
                }),
                None => self.orphan_tagged += 1,
            },
            TraceEvent::QueryServed {
                query, served_by, ..
            } => {
                if let Some(span) = self.spans.get_mut(&query) {
                    span.outcome = SpanOutcome::Served { at, served_by };
                }
            }
            TraceEvent::QueryFailed { query, .. } => {
                if let Some(span) = self.spans.get_mut(&query) {
                    span.outcome = SpanOutcome::Failed { at };
                }
            }
            _ => {}
        }
    }

    /// Number of spans assembled so far.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no `QueryIssued` event has been seen.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Returns the assembled spans, sorted by query id.
    pub fn finish(self) -> Vec<QuerySpan> {
        let mut spans: Vec<QuerySpan> = self.spans.into_values().collect();
        spans.sort_by_key(|s| s.query);
        spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(assembler: &mut SpanAssembler, events: &[(u64, TraceEvent)]) {
        for (ms, event) in events {
            assembler.record(SimTime::from_millis(*ms), event);
        }
    }

    fn issued(query: u64) -> TraceEvent {
        TraceEvent::QueryIssued {
            node: NodeId::new(1),
            query,
            item: ItemId::new(4),
            level: LevelTag::Strong,
        }
    }

    fn served(query: u64, by: ServedBy, issued_ms: u64) -> TraceEvent {
        TraceEvent::QueryServed {
            node: NodeId::new(1),
            query,
            level: LevelTag::Strong,
            served_by: by,
            issued: SimTime::from_millis(issued_ms),
        }
    }

    fn phase(query: u64, phase: SpanPhase, attempt: u8) -> TraceEvent {
        TraceEvent::QueryPhase {
            node: NodeId::new(1),
            query,
            item: ItemId::new(4),
            phase,
            attempt,
        }
    }

    #[test]
    fn local_hit_yields_a_single_local_segment() {
        let mut a = SpanAssembler::new();
        feed(
            &mut a,
            &[(100, issued(1)), (100, served(1, ServedBy::Cache, 100))],
        );
        let spans = a.finish();
        assert_eq!(spans.len(), 1);
        let span = &spans[0];
        assert!(span.is_local_hit());
        assert_eq!(span.latency(), Some(SimDuration::ZERO));
        let path = span.critical_path();
        assert_eq!(path.len(), 1);
        assert_eq!(path[0].label, "local");
        assert_eq!(path[0].duration(), SimDuration::ZERO);
    }

    #[test]
    fn relay_poll_span_breaks_into_phase_segments() {
        let mut a = SpanAssembler::new();
        feed(
            &mut a,
            &[
                (1_000, issued(7)),
                (1_000, phase(7, SpanPhase::PollUnicast, 1)),
                (1_500, phase(7, SpanPhase::PollFlood, 2)),
                (
                    1_000,
                    TraceEvent::MsgSend {
                        node: NodeId::new(1),
                        class: MessageClass::Poll,
                        bytes: 48,
                        dest: Some(NodeId::new(2)),
                        span: Some(7),
                    },
                ),
                (
                    1_900,
                    TraceEvent::MsgDeliver {
                        node: NodeId::new(1),
                        origin: NodeId::new(2),
                        class: MessageClass::PollAckA,
                        hops: 2,
                        via_flood: false,
                        span: Some(7),
                    },
                ),
                (2_000, served(7, ServedBy::Relay, 1_000)),
            ],
        );
        let spans = a.finish();
        let span = &spans[0];
        assert_eq!(span.latency(), Some(SimDuration::from_millis(1_000)));
        assert_eq!(span.sends, 1);
        assert_eq!(span.send_bytes, 48);
        assert_eq!(span.hops.len(), 1);
        assert_eq!(span.hops[0].hops, 2);
        assert!(!span.is_local_hit());

        let path = span.critical_path();
        assert_eq!(path.len(), 2, "{path:?}");
        assert_eq!(path[0].label, "poll_unicast");
        assert_eq!(path[0].duration(), SimDuration::from_millis(500));
        assert_eq!(path[1].label, "poll_flood");
        assert_eq!(path[1].duration(), SimDuration::from_millis(500));
        let total: u64 = path.iter().map(|s| s.duration().as_millis()).sum();
        assert_eq!(total, span.latency().unwrap().as_millis());
    }

    #[test]
    fn failed_and_open_spans_are_distinguished() {
        let mut a = SpanAssembler::new();
        feed(
            &mut a,
            &[
                (0, issued(1)),
                (0, phase(1, SpanPhase::PollFlood, 1)),
                (
                    5_000,
                    TraceEvent::QueryFailed {
                        node: NodeId::new(1),
                        query: 1,
                        level: LevelTag::Strong,
                    },
                ),
                (6_000, issued(2)),
            ],
        );
        let spans = a.finish();
        assert_eq!(spans.len(), 2);
        assert_eq!(
            spans[0].outcome,
            SpanOutcome::Failed {
                at: SimTime::from_millis(5_000)
            }
        );
        assert_eq!(spans[0].latency(), None);
        assert_eq!(spans[1].outcome, SpanOutcome::Open);
        // A failed span still has a critical path ending at the failure.
        let path = spans[0].critical_path();
        assert_eq!(path.last().unwrap().end, SimTime::from_millis(5_000));
    }

    #[test]
    fn tagged_messages_without_an_issue_event_are_counted_as_orphans() {
        let mut a = SpanAssembler::new();
        feed(
            &mut a,
            &[(
                10,
                TraceEvent::MsgSend {
                    node: NodeId::new(0),
                    class: MessageClass::Poll,
                    bytes: 48,
                    dest: None,
                    span: Some(99),
                },
            )],
        );
        assert_eq!(a.orphan_tagged, 1);
        assert!(a.is_empty());
    }
}
