//! Hand-rolled JSON helpers for the JSONL trace sink.
//!
//! The build environment has no crates.io access, so instead of `serde`
//! this module provides the pieces the flight recorder needs: a string
//! escaper used while serialising events, a small recursive-descent
//! validator used by tests to check that every emitted line is
//! well-formed JSON, and a [`Value`] tree parser used by the offline
//! journal reader and the run-report cross-checker.

/// Appends `s` to `out` as a JSON string literal, including the
/// surrounding quotes.
///
/// Escapes `"` and `\`, the usual control-character shorthands, and any
/// other byte below `0x20` as `\u00XX`.
///
/// # Example
///
/// ```
/// use mp2p_trace::json;
///
/// let mut out = String::new();
/// json::escape_into(&mut out, "a\"b\\c\n");
/// assert_eq!(out, r#""a\"b\\c\n""#);
/// ```
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                for shift in [4, 0] {
                    let digit = (b >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).expect("hex digit"));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Returns `s` as a quoted, escaped JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Checks that `s` is exactly one well-formed JSON value.
///
/// This is a minimal validator (objects, arrays, strings, numbers,
/// booleans, null) used by tests to confirm trace lines parse; it is not
/// a general-purpose JSON library and does not build a document tree.
///
/// # Example
///
/// ```
/// use mp2p_trace::json;
///
/// assert!(json::is_valid(r#"{"t":12,"ev":"msg_send","dest":null}"#));
/// assert!(!json::is_valid(r#"{"t":12,"#));
/// ```
pub fn is_valid(s: &str) -> bool {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    if !p.value() {
        return false;
    }
    p.skip_ws();
    p.pos == p.bytes.len()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> bool {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.eat("true"),
            Some(b'f') => self.eat("false"),
            Some(b'n') => self.eat("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => false,
        }
    }

    fn object(&mut self) -> bool {
        self.pos += 1; // consume '{'
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return true;
        }
        loop {
            self.skip_ws();
            if !self.string() {
                return false;
            }
            self.skip_ws();
            if self.bump() != Some(b':') {
                return false;
            }
            self.skip_ws();
            if !self.value() {
                return false;
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return true,
                _ => return false,
            }
        }
    }

    fn array(&mut self) -> bool {
        self.pos += 1; // consume '['
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return true;
        }
        loop {
            self.skip_ws();
            if !self.value() {
                return false;
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return true,
                _ => return false,
            }
        }
    }

    fn string(&mut self) -> bool {
        if self.bump() != Some(b'"') {
            return false;
        }
        while let Some(b) = self.bump() {
            match b {
                b'"' => return true,
                b'\\' => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(h) if h.is_ascii_hexdigit() => {}
                                _ => return false,
                            }
                        }
                    }
                    _ => return false,
                },
                0x00..=0x1F => return false,
                _ => {}
            }
        }
        false
    }

    fn number(&mut self) -> bool {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return false;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return false;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return false;
            }
        }
        true
    }
}

/// A parsed JSON value tree.
///
/// Numbers are stored as `f64`: every number the trace stack emits
/// (millisecond timestamps, node/item/query ids, byte counts) fits a
/// 53-bit mantissa exactly, so round-tripping through `f64` is lossless
/// for this domain.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order (duplicate keys kept as-is).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Parses exactly one JSON value (surrounded by optional whitespace)
/// into a [`Value`] tree. Returns `None` on any syntax error.
///
/// # Example
///
/// ```
/// use mp2p_trace::json;
///
/// let v = json::parse(r#"{"t":12,"ev":"msg_send","dest":null}"#).unwrap();
/// assert_eq!(v.get("t").and_then(|t| t.as_u64()), Some(12));
/// assert_eq!(v.get("ev").and_then(|e| e.as_str()), Some("msg_send"));
/// assert!(v.get("dest").is_some_and(|d| d.is_null()));
/// ```
pub fn parse(s: &str) -> Option<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    (p.pos == p.bytes.len()).then_some(v)
}

impl Parser<'_> {
    fn parse_value(&mut self) -> Option<Value> {
        match self.peek()? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => self.parse_string().map(Value::Str),
            b't' => self.eat("true").then_some(Value::Bool(true)),
            b'f' => self.eat("false").then_some(Value::Bool(false)),
            b'n' => self.eat("null").then_some(Value::Null),
            b'-' | b'0'..=b'9' => self.parse_number(),
            _ => None,
        }
    }

    fn parse_object(&mut self) -> Option<Value> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            if self.bump() != Some(b':') {
                return None;
            }
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Some(Value::Obj(fields)),
                _ => return None,
            }
        }
    }

    fn parse_array(&mut self) -> Option<Value> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Some(Value::Arr(items)),
                _ => return None,
            }
        }
    }

    fn parse_string(&mut self) -> Option<String> {
        if self.bump() != Some(b'"') {
            return None;
        }
        let mut out = Vec::new();
        loop {
            match self.bump()? {
                b'"' => break,
                b'\\' => match self.bump()? {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'b' => out.push(0x08),
                    b'f' => out.push(0x0C),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let mut code: u32 = 0;
                        for _ in 0..4 {
                            let h = self.bump()?;
                            code = code * 16 + (h as char).to_digit(16)?;
                        }
                        // Surrogate pairs never appear in our own output;
                        // map lone surrogates to the replacement char.
                        let ch = char::from_u32(code).unwrap_or('\u{FFFD}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return None,
                },
                b @ 0x20.. => out.push(b),
                _ => return None, // raw control character
            }
        }
        String::from_utf8(out).ok()
    }

    fn parse_number(&mut self) -> Option<Value> {
        let start = self.pos;
        if !self.number() {
            return None;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        text.parse::<f64>().ok().map(Value::Num)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn escapes_specials_and_controls() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(escape("nl\ncr\rtab\t"), "\"nl\\ncr\\rtab\\t\"");
        assert_eq!(escape("\u{8}\u{c}"), "\"\\b\\f\"");
        assert_eq!(escape("\u{1}\u{1f}"), "\"\\u0001\\u001f\"");
        assert_eq!(escape("uni ✓ 漢"), "\"uni ✓ 漢\"");
    }

    #[test]
    fn validator_accepts_well_formed_values() {
        for ok in [
            "null",
            "true",
            "false",
            "0",
            "-12.5e3",
            "\"hi\"",
            "[]",
            "[1, 2, 3]",
            "{}",
            r#"{"a": [1, {"b": null}], "c": "x"}"#,
            r#"{"t":0,"ev":"node_down","node":3}"#,
        ] {
            assert!(is_valid(ok), "should accept {ok:?}");
        }
    }

    #[test]
    fn validator_rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01a",
            "1 2",
            "nul",
            "{\"a\":1,}",
            "\"bad\\x\"",
            "-",
            "1.",
            "1e",
        ] {
            assert!(!is_valid(bad), "should reject {bad:?}");
        }
    }

    #[test]
    fn parser_builds_the_expected_tree() {
        let v = parse(r#"{"a": [1, {"b": null}], "c": "x\ny", "d": true, "e": -2.5}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Value::Arr(vec![
                Value::Num(1.0),
                Value::Obj(vec![("b".to_string(), Value::Null)]),
            ])
        );
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x\ny"));
        assert_eq!(v.get("d").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("e").and_then(Value::as_f64), Some(-2.5));
        assert_eq!(v.get("e").and_then(Value::as_u64), None, "negative");
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parser_rejects_what_the_validator_rejects() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "\"bad\\x\"", "1 2"] {
            assert!(parse(bad).is_none(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parser_resolves_escapes() {
        let v = parse(r#""a\"b\\cA\n""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\cA\n"));
    }

    #[test]
    fn u64_roundtrip_is_exact_for_53_bits() {
        let big = (1u64 << 53) - 1;
        let v = parse(&format!("{{\"n\":{big}}}")).unwrap();
        assert_eq!(v.get("n").and_then(Value::as_u64), Some(big));
    }

    proptest! {
        #[test]
        fn prop_escaped_strings_roundtrip_through_parse(
            codes in proptest::collection::vec(0u32..0x11_0000, 0..64),
        ) {
            let s: String = codes.iter().filter_map(|&c| char::from_u32(c)).collect();
            let line = format!("{{\"s\":{}}}", escape(&s));
            let v = parse(&line).expect("escaped string must parse");
            prop_assert_eq!(v.get("s").and_then(Value::as_str), Some(s.as_str()));
        }

        #[test]
        fn prop_escaped_strings_always_validate(
            codes in proptest::collection::vec(0u32..0x11_0000, 0..64),
        ) {
            // Any unicode string (surrogate code points skipped), once
            // escaped, must embed into a valid JSON object.
            let s: String = codes.iter().filter_map(|&c| char::from_u32(c)).collect();
            let line = format!("{{\"s\":{}}}", escape(&s));
            prop_assert!(is_valid(&line));
        }
    }
}
