//! Hand-rolled JSON helpers for the JSONL trace sink.
//!
//! The build environment has no crates.io access, so instead of `serde`
//! this module provides the two pieces the flight recorder needs: a
//! string escaper used while serialising events, and a small
//! recursive-descent validator used by tests to check that every emitted
//! line is well-formed JSON.

/// Appends `s` to `out` as a JSON string literal, including the
/// surrounding quotes.
///
/// Escapes `"` and `\`, the usual control-character shorthands, and any
/// other byte below `0x20` as `\u00XX`.
///
/// # Example
///
/// ```
/// use mp2p_trace::json;
///
/// let mut out = String::new();
/// json::escape_into(&mut out, "a\"b\\c\n");
/// assert_eq!(out, r#""a\"b\\c\n""#);
/// ```
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                for shift in [4, 0] {
                    let digit = (b >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).expect("hex digit"));
                }
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Returns `s` as a quoted, escaped JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    escape_into(&mut out, s);
    out
}

/// Checks that `s` is exactly one well-formed JSON value.
///
/// This is a minimal validator (objects, arrays, strings, numbers,
/// booleans, null) used by tests to confirm trace lines parse; it is not
/// a general-purpose JSON library and does not build a document tree.
///
/// # Example
///
/// ```
/// use mp2p_trace::json;
///
/// assert!(json::is_valid(r#"{"t":12,"ev":"msg_send","dest":null}"#));
/// assert!(!json::is_valid(r#"{"t":12,"#));
/// ```
pub fn is_valid(s: &str) -> bool {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    if !p.value() {
        return false;
    }
    p.skip_ws();
    p.pos == p.bytes.len()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> bool {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.eat("true"),
            Some(b'f') => self.eat("false"),
            Some(b'n') => self.eat("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => false,
        }
    }

    fn object(&mut self) -> bool {
        self.pos += 1; // consume '{'
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return true;
        }
        loop {
            self.skip_ws();
            if !self.string() {
                return false;
            }
            self.skip_ws();
            if self.bump() != Some(b':') {
                return false;
            }
            self.skip_ws();
            if !self.value() {
                return false;
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return true,
                _ => return false,
            }
        }
    }

    fn array(&mut self) -> bool {
        self.pos += 1; // consume '['
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return true;
        }
        loop {
            self.skip_ws();
            if !self.value() {
                return false;
            }
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return true,
                _ => return false,
            }
        }
    }

    fn string(&mut self) -> bool {
        if self.bump() != Some(b'"') {
            return false;
        }
        while let Some(b) = self.bump() {
            match b {
                b'"' => return true,
                b'\\' => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            match self.bump() {
                                Some(h) if h.is_ascii_hexdigit() => {}
                                _ => return false,
                            }
                        }
                    }
                    _ => return false,
                },
                0x00..=0x1F => return false,
                _ => {}
            }
        }
        false
    }

    fn number(&mut self) -> bool {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return false;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return false;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn escapes_specials_and_controls() {
        assert_eq!(escape("plain"), "\"plain\"");
        assert_eq!(escape("a\"b"), "\"a\\\"b\"");
        assert_eq!(escape("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(escape("nl\ncr\rtab\t"), "\"nl\\ncr\\rtab\\t\"");
        assert_eq!(escape("\u{8}\u{c}"), "\"\\b\\f\"");
        assert_eq!(escape("\u{1}\u{1f}"), "\"\\u0001\\u001f\"");
        assert_eq!(escape("uni ✓ 漢"), "\"uni ✓ 漢\"");
    }

    #[test]
    fn validator_accepts_well_formed_values() {
        for ok in [
            "null",
            "true",
            "false",
            "0",
            "-12.5e3",
            "\"hi\"",
            "[]",
            "[1, 2, 3]",
            "{}",
            r#"{"a": [1, {"b": null}], "c": "x"}"#,
            r#"{"t":0,"ev":"node_down","node":3}"#,
        ] {
            assert!(is_valid(ok), "should accept {ok:?}");
        }
    }

    #[test]
    fn validator_rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "\"unterminated",
            "01a",
            "1 2",
            "nul",
            "{\"a\":1,}",
            "\"bad\\x\"",
            "-",
            "1.",
            "1e",
        ] {
            assert!(!is_valid(bad), "should reject {bad:?}");
        }
    }

    proptest! {
        #[test]
        fn prop_escaped_strings_always_validate(
            codes in proptest::collection::vec(0u32..0x11_0000, 0..64),
        ) {
            // Any unicode string (surrogate code points skipped), once
            // escaped, must embed into a valid JSON object.
            let s: String = codes.iter().filter_map(|&c| char::from_u32(c)).collect();
            let line = format!("{{\"s\":{}}}", escape(&s));
            prop_assert!(is_valid(&line));
        }
    }
}
