//! Bridge from the event stream to a windowed [`Registry`] time series.
//!
//! [`MetricsBridge`] folds events into named windowed metrics — traffic
//! by message class, latency histograms per consistency level, the
//! relay-peer population gauge, served-by counters, and fault counters —
//! applying the same warm-up censoring the simulation applies to its
//! end-of-run report. [`RegistrySink`] wraps the bridge as a
//! [`TraceSink`] so the same code runs live behind a tee or offline
//! over a journal.

use std::any::Any;

use mp2p_metrics::Registry;
use mp2p_sim::{SimDuration, SimTime};

use crate::event::{RelayTransitionKind, TraceEvent};
use crate::sink::TraceSink;

/// Default window width for bridged registries (60 s of sim time).
pub const DEFAULT_WINDOW: SimDuration = SimDuration::from_secs(60);

/// Folds trace events into a windowed metrics [`Registry`].
#[derive(Debug)]
pub struct MetricsBridge {
    warmup: SimDuration,
    relay_peers: i64,
    registry: Registry,
}

impl MetricsBridge {
    /// Creates a bridge slicing time into `window` buckets and censoring
    /// traffic/latency before `warmup`, mirroring the world's report.
    pub fn new(window: SimDuration, warmup: SimDuration) -> Self {
        MetricsBridge {
            warmup,
            relay_peers: 0,
            registry: Registry::new(window),
        }
    }

    /// Read access to the registry built so far.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Consumes the bridge, returning the registry.
    pub fn into_registry(self) -> Registry {
        self.registry
    }

    fn past_warmup(&self, at: SimTime) -> bool {
        at.saturating_since(SimTime::ZERO) >= self.warmup
    }

    /// Consumes one event.
    pub fn record(&mut self, at: SimTime, event: &TraceEvent) {
        match *event {
            TraceEvent::MsgSend { class, bytes, .. } if self.past_warmup(at) => {
                let name = format!("traffic_sends_total{{class=\"{}\"}}", class.label());
                self.registry.counter_add(&name, at, 1);
                self.registry
                    .counter_add("traffic_bytes_total", at, u64::from(bytes));
            }
            TraceEvent::QueryIssued { .. } if self.past_warmup(at) => {
                self.registry.counter_add("queries_issued_total", at, 1);
            }
            // Latency censoring keys off the *issue* instant, the same
            // rule the world applies.
            TraceEvent::QueryServed {
                level,
                served_by,
                issued,
                ..
            } if issued.saturating_since(SimTime::ZERO) >= self.warmup => {
                let name = format!("queries_served_total{{by=\"{}\"}}", served_by.label());
                self.registry.counter_add(&name, at, 1);
                let hist = format!("query_latency_ms{{level=\"{}\"}}", level.label());
                self.registry
                    .observe(&hist, at, at.saturating_since(issued));
            }
            _ => {}
        }
        match *event {
            TraceEvent::QueryFailed { .. } if self.past_warmup(at) => {
                self.registry.counter_add("queries_failed_total", at, 1);
            }
            TraceEvent::RelayTransition { kind, .. } => {
                match kind {
                    RelayTransitionKind::Promoted => self.relay_peers += 1,
                    RelayTransitionKind::Demoted => self.relay_peers -= 1,
                    _ => {}
                }
                self.registry.gauge_set("relay_peers", at, self.relay_peers);
            }
            TraceEvent::NodeCrash { .. } => self.fault(at, "node_crash"),
            TraceEvent::NodeRecover { .. } => self.fault(at, "node_recover"),
            TraceEvent::BurstDrop { .. } => self.fault(at, "burst_drop"),
            TraceEvent::FrameDup { .. } => self.fault(at, "frame_dup"),
            TraceEvent::PartitionStart { .. } => self.fault(at, "partition_start"),
            TraceEvent::PartitionHeal { .. } => self.fault(at, "partition_heal"),
            TraceEvent::RelayLeaseExpired { .. } => self.fault(at, "relay_lease_expired"),
            TraceEvent::FallbackFlood { .. } => self.fault(at, "fallback_flood"),
            TraceEvent::ConsistencySample {
                fresh_copies,
                total_copies,
                partitions,
                relay_nodes,
                ..
            } => {
                self.registry
                    .gauge_set("consistency_fresh_copies", at, i64::from(fresh_copies));
                self.registry
                    .gauge_set("consistency_total_copies", at, i64::from(total_copies));
                self.registry
                    .gauge_set("consistency_partitions", at, i64::from(partitions));
                self.registry
                    .gauge_set("consistency_relay_nodes", at, i64::from(relay_nodes));
            }
            TraceEvent::StaleServe {
                cause, violation, ..
            } => {
                let name = format!("stale_served_total{{cause=\"{}\"}}", cause.label());
                self.registry.counter_add(&name, at, 1);
                if violation {
                    self.registry.counter_add("delta_violations_total", at, 1);
                }
            }
            _ => {}
        }
    }

    fn fault(&mut self, at: SimTime, kind: &str) {
        let name = format!("faults_total{{kind=\"{kind}\"}}");
        self.registry.counter_add(&name, at, 1);
    }
}

/// [`MetricsBridge`] as a live [`TraceSink`] (put it behind a tee).
#[derive(Debug)]
pub struct RegistrySink {
    bridge: MetricsBridge,
}

impl RegistrySink {
    /// Creates a sink bridging into a fresh registry.
    pub fn new(window: SimDuration, warmup: SimDuration) -> Self {
        RegistrySink {
            bridge: MetricsBridge::new(window, warmup),
        }
    }

    /// The registry built so far.
    pub fn registry(&self) -> &Registry {
        self.bridge.registry()
    }

    /// Consumes the sink, returning the registry.
    pub fn into_registry(self) -> Registry {
        self.bridge.into_registry()
    }
}

impl TraceSink for RegistrySink {
    fn record(&mut self, at: SimTime, event: &TraceEvent) {
        self.bridge.record(at, event);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LevelTag, ServedBy};
    use mp2p_metrics::MessageClass;
    use mp2p_sim::NodeId;

    #[test]
    fn bridge_applies_the_worlds_censoring_rules() {
        let warmup = SimDuration::from_secs(60);
        let mut bridge = MetricsBridge::new(DEFAULT_WINDOW, warmup);

        // Warm-up send: dropped. Post-warm-up send: counted.
        let send = |node: u32| TraceEvent::MsgSend {
            node: NodeId::new(node),
            class: MessageClass::Poll,
            bytes: 48,
            dest: None,
            span: None,
        };
        bridge.record(SimTime::from_millis(1_000), &send(0));
        bridge.record(SimTime::from_millis(61_000), &send(0));

        // Query issued pre-warm-up, served post-warm-up: censored.
        let served = |query: u64, issued_ms: u64| TraceEvent::QueryServed {
            node: NodeId::new(1),
            query,
            level: LevelTag::Delta,
            served_by: ServedBy::Relay,
            issued: SimTime::from_millis(issued_ms),
        };
        bridge.record(SimTime::from_millis(62_000), &served(1, 59_000));
        bridge.record(SimTime::from_millis(63_000), &served(2, 62_500));

        let reg = bridge.registry();
        assert_eq!(
            reg.counter("traffic_sends_total{class=\"POLL\"}")
                .unwrap()
                .total(),
            1
        );
        assert_eq!(reg.counter("traffic_bytes_total").unwrap().total(), 48);
        assert_eq!(
            reg.counter("queries_served_total{by=\"relay\"}")
                .unwrap()
                .total(),
            1
        );
        let hist = reg.histogram("query_latency_ms{level=\"DC\"}").unwrap();
        assert_eq!(hist.cumulative().count(), 1);
        assert_eq!(
            hist.cumulative().mean(),
            SimDuration::from_millis(500),
            "only the post-warm-up issue is measured"
        );
    }

    #[test]
    fn relay_gauge_tracks_promotions_and_demotions() {
        let mut bridge = MetricsBridge::new(DEFAULT_WINDOW, SimDuration::ZERO);
        let transition = |kind| TraceEvent::RelayTransition {
            node: NodeId::new(2),
            item: mp2p_sim::ItemId::new(2),
            kind,
        };
        bridge.record(
            SimTime::from_millis(10),
            &transition(RelayTransitionKind::Promoted),
        );
        bridge.record(
            SimTime::from_millis(20),
            &transition(RelayTransitionKind::Promoted),
        );
        bridge.record(
            SimTime::from_millis(70_000),
            &transition(RelayTransitionKind::Demoted),
        );
        let g = bridge.registry().gauge("relay_peers").unwrap();
        assert_eq!(g.last(), Some(1));
        assert_eq!(g.series(), &[Some(2), Some(1)]);
    }

    #[test]
    fn faults_count_by_kind() {
        let mut bridge = MetricsBridge::new(DEFAULT_WINDOW, SimDuration::ZERO);
        bridge.record(
            SimTime::from_millis(5),
            &TraceEvent::NodeCrash {
                node: NodeId::new(3),
            },
        );
        bridge.record(
            SimTime::from_millis(6),
            &TraceEvent::PartitionStart { axis: 0 },
        );
        bridge.record(
            SimTime::from_millis(7),
            &TraceEvent::PartitionHeal { axis: 0 },
        );
        let reg = bridge.registry();
        for kind in ["node_crash", "partition_start", "partition_heal"] {
            let name = format!("faults_total{{kind=\"{kind}\"}}");
            assert_eq!(reg.counter(&name).unwrap().total(), 1, "{kind}");
        }
    }
}
