//! Flight recorder: structured sim-time event tracing for the RPCC
//! simulation.
//!
//! The paper's evaluation reports aggregates (traffic by message class,
//! query latency), but debugging a consistency protocol needs the story
//! *between* the aggregates: which flood reached whom, when a relay peer
//! was promoted or resigned (Fig. 5), why a poll timed out. This crate
//! provides that story as a typed, sim-time-stamped event stream:
//!
//! * [`TraceEvent`] — the event vocabulary: message lifecycle
//!   (send / forward-drop / deliver / undeliverable, keyed by
//!   [`mp2p_metrics::MessageClass`] and hop count), relay state-machine
//!   transitions ([`RelayTransitionKind`]), query lifecycle
//!   ([`LevelTag`], [`ServedBy`]), and node churn.
//! * [`TraceSink`] — where events go: a bounded [`RingSink`], a
//!   streaming [`JsonlSink`] (hand-rolled serialisation via [`json`];
//!   the build environment has no serde), an aggregating
//!   [`SummarySink`] that rebuilds the run's traffic/latency instruments
//!   from the stream alone, and a fan-out [`TeeSink`].
//! * [`NullSink`] — the default: `enabled()` is `false`, so an untraced
//!   simulation pays one boolean test per emission site and never
//!   allocates.
//!
//! The simulation driver (`mp2p-rpcc`'s `World`) owns a boxed sink and
//! emits at every layer boundary; see `World::set_tracer` and
//! `World::run_traced`.
//!
//! # Example
//!
//! ```
//! use mp2p_metrics::MessageClass;
//! use mp2p_sim::{NodeId, SimTime};
//! use mp2p_trace::{RingSink, TraceEvent, TraceSink};
//!
//! let mut sink = RingSink::new(1024);
//! sink.record(
//!     SimTime::from_millis(40),
//!     &TraceEvent::MsgSend {
//!         node: NodeId::new(2),
//!         class: MessageClass::Poll,
//!         bytes: 48,
//!         dest: Some(NodeId::new(5)),
//!         span: Some(7),
//!     },
//! );
//! assert_eq!(sink.len(), 1);
//! ```
//!
//! Offline, the [`reader`] module parses a JSONL journal back into
//! events, [`span`] reassembles per-query causal spans from them, and
//! [`bridge`] rebuilds a windowed [`mp2p_metrics::Registry`] time series
//! — the toolkit behind the `analyze` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod json;
pub mod reader;
mod sink;
pub mod span;

pub mod bridge;

pub use event::{
    BlameCause, EventKind, FrameFateKind, LevelTag, RelayTransitionKind, ServedBy, SpanPhase,
    TraceEvent,
};
pub use sink::{
    JsonlSink, NullSink, RingSink, SummarySink, TeeSink, TraceSink, JOURNAL_KINDS_V1,
    JOURNAL_KINDS_V2, JOURNAL_KINDS_V3, JOURNAL_SCHEMA, JOURNAL_SCHEMA_V1, JOURNAL_SCHEMA_V2,
    JOURNAL_SCHEMA_V3,
};
