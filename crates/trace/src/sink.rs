//! Trace sinks: where flight-recorder events go.
//!
//! Four real sinks plus a disabled default:
//!
//! * [`NullSink`] — reports `enabled() == false`; the simulation keeps
//!   its hot path allocation-free by skipping emission entirely.
//! * [`RingSink`] — bounded in-memory ring, for tests and post-mortems.
//! * [`JsonlSink`] — streams one JSON object per line to any writer.
//! * [`SummarySink`] — rebuilds traffic/latency instruments from the
//!   event stream alone, cross-checkable against the simulation's own
//!   [`mp2p_metrics::TrafficStats`] / [`mp2p_metrics::LatencyStats`].
//! * [`TeeSink`] — fans each event out to several sinks.

use std::any::Any;
use std::collections::VecDeque;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use mp2p_metrics::{LatencyStats, TrafficStats};
use mp2p_sim::{SimDuration, SimTime};

use crate::event::{EventKind, TraceEvent};

/// A destination for flight-recorder events.
///
/// Implementations must be cheap per [`TraceSink::record`] call: the
/// simulation can emit an event per MAC transmission.
pub trait TraceSink {
    /// Whether the producer should bother emitting at all. The driver
    /// checks this once per emission site; [`NullSink`] returns `false`
    /// so a disabled recorder costs one boolean test.
    fn enabled(&self) -> bool {
        true
    }

    /// Records one event stamped with simulated time `at`.
    fn record(&mut self, at: SimTime, event: &TraceEvent);

    /// Flushes any buffered output (called once at end of run).
    fn flush(&mut self) {}

    /// Bytes this sink has durably serialised (journal output). In-memory
    /// sinks report 0; [`TeeSink`] sums its children. Used by the perf
    /// observatory's allocation counters.
    fn bytes_written(&self) -> u64 {
        0
    }

    /// Downcasting support, so callers of `World::run_traced` can get
    /// their concrete sink back.
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The disabled sink: drops everything and reports `enabled() == false`.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _at: SimTime, _event: &TraceEvent) {}

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A bounded in-memory ring of the most recent events.
///
/// # Example
///
/// ```
/// use mp2p_sim::{NodeId, SimTime};
/// use mp2p_trace::{RingSink, TraceEvent, TraceSink};
///
/// let mut ring = RingSink::new(2);
/// for i in 0..5 {
///     let at = SimTime::from_millis(i);
///     ring.record(at, &TraceEvent::NodeUp { node: NodeId::new(0) });
/// }
/// assert_eq!(ring.len(), 2);
/// assert_eq!(ring.total_recorded(), 5);
/// assert_eq!(ring.iter().next().unwrap().0, SimTime::from_millis(3));
/// ```
#[derive(Debug, Clone)]
pub struct RingSink {
    cap: usize,
    buf: VecDeque<(SimTime, TraceEvent)>,
    total: u64,
}

impl RingSink {
    /// Creates a ring holding at most `cap` events.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "ring capacity must be non-zero");
        RingSink {
            cap,
            buf: VecDeque::with_capacity(cap.min(1 << 16)),
            total: 0,
        }
    }

    /// Events currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever recorded (> `len()` iff the ring wrapped).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Iterates retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, TraceEvent)> {
        self.buf.iter()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, at: SimTime, event: &TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back((at, *event));
        self.total += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The newest journal schema version this build can write and read.
/// Schema 4 added the causal-provenance kinds
/// ([`EventKind::FrameBorn`], [`EventKind::FrameHop`],
/// [`EventKind::FrameFate`], [`EventKind::CopyLineage`]).
pub const JOURNAL_SCHEMA: u64 = 4;

/// The original journal schema: the 27-kind vocabulary of PR 3. Sinks
/// built with the plain constructors still write it, so runs that never
/// enable the observatory produce byte-identical journals to older
/// builds and stay readable by older tools.
pub const JOURNAL_SCHEMA_V1: u64 = 1;

/// The (frozen) number of event kinds in the schema-1 vocabulary,
/// stamped into v1 headers regardless of how many kinds this build knows.
pub const JOURNAL_KINDS_V1: usize = 27;

/// The consistency-observatory schema of PR 6, now frozen: the 29-kind
/// vocabulary ending at [`EventKind::StaleServe`]. The `_v2`
/// constructors keep writing it so observatory runs without the
/// recovery layer stay byte-identical to what pre-recovery builds wrote.
pub const JOURNAL_SCHEMA_V2: u64 = 2;

/// The (frozen) number of event kinds in the schema-2 vocabulary.
pub const JOURNAL_KINDS_V2: usize = 29;

/// The recovery-layer schema of PR 7, now frozen: the 34-kind
/// vocabulary ending at [`EventKind::RelayHandover`]. The `_v3`
/// constructors keep writing it so recovery runs without provenance stay
/// byte-identical to what pre-provenance builds wrote.
pub const JOURNAL_SCHEMA_V3: u64 = 3;

/// The (frozen) number of event kinds in the schema-3 vocabulary.
pub const JOURNAL_KINDS_V3: usize = 34;

/// Streams events as JSON Lines to a writer: one versioned header object
/// (`{"schema":1,...}` through `{"schema":4,...}`) followed by one
/// object per event. The plain constructors write schema 1 and silently
/// skip any newer-schema event (see [`EventKind::min_schema`]); the
/// `_v2` constructors write the frozen observatory schema (skipping
/// recovery and provenance kinds); the `_v3` constructors write the
/// frozen recovery schema (skipping provenance kinds); the `_v4`
/// constructors write the current schema and accept everything.
///
/// Serialisation is hand-rolled via [`crate::json`] — the build
/// environment has no crates.io access, so there is no serde. On an I/O
/// error the sink stops writing and remembers the failure instead of
/// panicking mid-simulation; check [`JsonlSink::io_error`] after the run.
pub struct JsonlSink {
    out: BufWriter<Box<dyn Write>>,
    schema: u64,
    line: String,
    records: u64,
    skipped: u64,
    bytes: u64,
    io_error: Option<io::Error>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("records", &self.records)
            .field("io_error", &self.io_error)
            .finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Wraps an arbitrary writer. The header records a zero warm-up;
    /// use [`JsonlSink::new_with_warmup`] when the run censors one.
    pub fn new(writer: Box<dyn Write>) -> Self {
        JsonlSink::new_with_warmup(writer, SimDuration::ZERO)
    }

    /// Wraps an arbitrary writer and stamps `warmup` into a **schema 1**
    /// header so offline consumers can reproduce the run's censoring
    /// rules. Schema-2-only events are skipped; use
    /// [`JsonlSink::new_v2_with_warmup`] for observatory runs.
    pub fn new_with_warmup(writer: Box<dyn Write>, warmup: SimDuration) -> Self {
        JsonlSink::with_schema(writer, warmup, JOURNAL_SCHEMA_V1)
    }

    /// Wraps an arbitrary writer with the frozen schema 2 header: the
    /// consistency observatory's vocabulary, but not the recovery
    /// layer's (those events are skipped). Use
    /// [`JsonlSink::new_v3_with_warmup`] for recovery runs.
    pub fn new_v2_with_warmup(writer: Box<dyn Write>, warmup: SimDuration) -> Self {
        JsonlSink::with_schema(writer, warmup, JOURNAL_SCHEMA_V2)
    }

    /// Wraps an arbitrary writer with the frozen schema 3 header: the
    /// recovery layer's vocabulary, but not the provenance engine's
    /// (those events are skipped). Use
    /// [`JsonlSink::new_v4_with_warmup`] for provenance runs.
    pub fn new_v3_with_warmup(writer: Box<dyn Write>, warmup: SimDuration) -> Self {
        JsonlSink::with_schema(writer, warmup, JOURNAL_SCHEMA_V3)
    }

    /// Wraps an arbitrary writer with the current (schema 4) header,
    /// accepting the full event vocabulary including the causal
    /// provenance kinds.
    pub fn new_v4_with_warmup(writer: Box<dyn Write>, warmup: SimDuration) -> Self {
        JsonlSink::with_schema(writer, warmup, JOURNAL_SCHEMA)
    }

    fn with_schema(writer: Box<dyn Write>, warmup: SimDuration, schema: u64) -> Self {
        let mut sink = JsonlSink {
            out: BufWriter::new(writer),
            schema,
            line: String::with_capacity(160),
            records: 0,
            skipped: 0,
            bytes: 0,
            io_error: None,
        };
        sink.write_header(warmup);
        sink
    }

    /// Creates (truncating) `path` and streams to it (schema 1 header).
    pub fn create(path: &Path) -> io::Result<Self> {
        JsonlSink::create_with_warmup(path, SimDuration::ZERO)
    }

    /// Creates (truncating) `path`, stamping `warmup` into a schema 1
    /// header (see [`JsonlSink::new_with_warmup`] for the skip rule).
    pub fn create_with_warmup(path: &Path, warmup: SimDuration) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new_with_warmup(Box::new(file), warmup))
    }

    /// Creates (truncating) `path` with the frozen schema 2 header (see
    /// [`JsonlSink::new_v2_with_warmup`] for the skip rule).
    pub fn create_v2_with_warmup(path: &Path, warmup: SimDuration) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new_v2_with_warmup(Box::new(file), warmup))
    }

    /// Creates (truncating) `path` with the frozen schema 3 header (see
    /// [`JsonlSink::new_v3_with_warmup`] for the skip rule).
    pub fn create_v3_with_warmup(path: &Path, warmup: SimDuration) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new_v3_with_warmup(Box::new(file), warmup))
    }

    /// Creates (truncating) `path` with the current (schema 4) header.
    pub fn create_v4_with_warmup(path: &Path, warmup: SimDuration) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new_v4_with_warmup(Box::new(file), warmup))
    }

    /// Writes the versioned header line. The header is metadata, not an
    /// event: it does not count toward [`JsonlSink::records`]. Frozen
    /// schemas stamp their frozen kind counts so their headers stay
    /// byte-identical to what older builds wrote.
    fn write_header(&mut self, warmup: SimDuration) {
        let kinds = match self.schema {
            JOURNAL_SCHEMA_V1 => JOURNAL_KINDS_V1,
            JOURNAL_SCHEMA_V2 => JOURNAL_KINDS_V2,
            JOURNAL_SCHEMA_V3 => JOURNAL_KINDS_V3,
            _ => EventKind::ALL.len(),
        };
        self.line.clear();
        self.line.push_str("{\"schema\":");
        self.line.push_str(&self.schema.to_string());
        self.line.push_str(",\"kinds\":");
        self.line.push_str(&kinds.to_string());
        self.line.push_str(",\"warmup_ms\":");
        self.line.push_str(&warmup.as_millis().to_string());
        self.line.push_str("}\n");
        match self.out.write_all(self.line.as_bytes()) {
            Ok(()) => self.bytes += self.line.len() as u64,
            Err(e) => self.io_error = Some(e),
        }
    }

    /// The schema version this sink's header declares.
    pub fn schema(&self) -> u64 {
        self.schema
    }

    /// Event lines successfully written so far (header excluded).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Events dropped because their kind post-dates this sink's schema.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The first I/O error hit, if any (writing stops after it).
    pub fn io_error(&self) -> Option<&io::Error> {
        self.io_error.as_ref()
    }

    /// Journal bytes successfully handed to the writer (header included).
    pub fn journal_bytes(&self) -> u64 {
        self.bytes
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, at: SimTime, event: &TraceEvent) {
        if self.io_error.is_some() {
            return;
        }
        if event.kind().min_schema() > self.schema {
            self.skipped += 1;
            return;
        }
        self.line.clear();
        event.write_json(at, &mut self.line);
        self.line.push('\n');
        match self.out.write_all(self.line.as_bytes()) {
            Ok(()) => {
                self.records += 1;
                self.bytes += self.line.len() as u64;
            }
            Err(e) => self.io_error = Some(e),
        }
    }

    fn flush(&mut self) {
        if self.io_error.is_none() {
            if let Err(e) = self.out.flush() {
                self.io_error = Some(e);
            }
        }
    }

    fn bytes_written(&self) -> u64 {
        self.bytes
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Rebuilds the run's aggregate instruments from the event stream alone.
///
/// Given the same warm-up the simulation used, the traffic and latency
/// instruments this sink accumulates are *exactly* equal to the ones in
/// the simulation's end-of-run report: [`TraceEvent::MsgSend`] events
/// carry class and frame size and are counted iff they occur after
/// warm-up, and [`TraceEvent::QueryServed`] events carry their issue
/// instant so latency (`at - issued`) is measured iff the query was
/// issued after warm-up — the same censoring rules the world applies.
/// The per-kind event counts ignore warm-up (the recorder sees all).
#[derive(Debug, Clone)]
pub struct SummarySink {
    warmup: SimDuration,
    traffic: TrafficStats,
    latency: LatencyStats,
    counts: [u64; EventKind::ALL.len()],
}

impl SummarySink {
    /// Creates a summary sink using the simulation's warm-up period.
    pub fn new(warmup: SimDuration) -> Self {
        SummarySink {
            warmup,
            traffic: TrafficStats::default(),
            latency: LatencyStats::default(),
            counts: [0; EventKind::ALL.len()],
        }
    }

    /// Post-warm-up traffic rebuilt from `MsgSend` events.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Latency of queries issued after warm-up, rebuilt from
    /// `QueryServed` events.
    pub fn latency(&self) -> &LatencyStats {
        &self.latency
    }

    /// How many events of `kind` were recorded (warm-up included).
    pub fn count_of(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total events recorded across all kinds.
    pub fn total_events(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl TraceSink for SummarySink {
    fn record(&mut self, at: SimTime, event: &TraceEvent) {
        self.counts[event.kind().index()] += 1;
        match *event {
            TraceEvent::MsgSend { class, bytes, .. }
                if at.saturating_since(SimTime::ZERO) >= self.warmup =>
            {
                self.traffic.record(class, bytes);
            }
            TraceEvent::QueryServed { issued, .. }
                if issued.saturating_since(SimTime::ZERO) >= self.warmup =>
            {
                self.latency.record(at.saturating_since(issued));
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Fans every event out to several child sinks.
pub struct TeeSink {
    sinks: Vec<Box<dyn TraceSink>>,
}

impl std::fmt::Debug for TeeSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl TeeSink {
    /// Builds a tee over `sinks`.
    pub fn new(sinks: Vec<Box<dyn TraceSink>>) -> Self {
        TeeSink { sinks }
    }

    /// The child sinks, for downcasting after a run.
    pub fn sinks(&self) -> &[Box<dyn TraceSink>] {
        &self.sinks
    }

    /// Consumes the tee, returning its children.
    pub fn into_sinks(self) -> Vec<Box<dyn TraceSink>> {
        self.sinks
    }
}

impl TraceSink for TeeSink {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn record(&mut self, at: SimTime, event: &TraceEvent) {
        for sink in &mut self.sinks {
            if sink.enabled() {
                sink.record(at, event);
            }
        }
    }

    fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }

    fn bytes_written(&self) -> u64 {
        self.sinks.iter().map(|s| s.bytes_written()).sum()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{LevelTag, ServedBy};
    use crate::json;
    use mp2p_metrics::MessageClass;
    use mp2p_sim::NodeId;

    fn send(node: u32, class: MessageClass, bytes: u32) -> TraceEvent {
        TraceEvent::MsgSend {
            node: NodeId::new(node),
            class,
            bytes,
            dest: None,
            span: None,
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        let mut sink = NullSink;
        assert!(!sink.enabled());
        sink.record(
            SimTime::ZERO,
            &TraceEvent::NodeUp {
                node: NodeId::new(0),
            },
        );
        assert!(sink.as_any().downcast_ref::<NullSink>().is_some());
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let mut ring = RingSink::new(3);
        for i in 0..10u64 {
            ring.record(SimTime::from_millis(i), &send(0, MessageClass::Poll, 48));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.capacity(), 3);
        assert_eq!(ring.total_recorded(), 10);
        let times: Vec<u64> = ring.iter().map(|(t, _)| t.as_millis()).collect();
        assert_eq!(times, vec![7, 8, 9]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn ring_rejects_zero_capacity() {
        let _ = RingSink::new(0);
    }

    #[test]
    fn jsonl_writes_one_valid_line_per_event() {
        let buf: Vec<u8> = Vec::new();
        let mut sink = JsonlSink::new_v4_with_warmup(Box::new(buf), SimDuration::ZERO);
        for (i, event) in crate::event::tests::samples().into_iter().enumerate() {
            sink.record(SimTime::from_millis(i as u64), &event);
        }
        let n = sink.records();
        sink.flush();
        assert!(sink.io_error().is_none());
        assert_eq!(n, crate::event::tests::samples().len() as u64);
        assert_eq!(sink.skipped(), 0, "a v4 sink accepts the full vocabulary");
        // The writer is boxed away; serialisation itself is validated in
        // the event module, and the end-to-end file path is covered by
        // the world-level tests.
    }

    #[test]
    fn v2_sink_keeps_frozen_header_and_skips_recovery_kinds() {
        let buf: Vec<u8> = Vec::new();
        let mut sink = JsonlSink::new_v2_with_warmup(Box::new(buf), SimDuration::ZERO);
        assert_eq!(sink.schema(), JOURNAL_SCHEMA_V2);
        let v3_only: u64 = crate::event::tests::samples()
            .iter()
            .filter(|e| e.kind().min_schema() > JOURNAL_SCHEMA_V2)
            .count() as u64;
        assert!(v3_only > 0, "samples must cover schema-3 kinds");
        for (i, event) in crate::event::tests::samples().into_iter().enumerate() {
            sink.record(SimTime::from_millis(i as u64), &event);
        }
        sink.flush();
        assert!(sink.io_error().is_none());
        assert_eq!(sink.skipped(), v3_only);
        assert_eq!(
            sink.records(),
            crate::event::tests::samples().len() as u64 - v3_only
        );
    }

    #[test]
    fn v3_sink_keeps_frozen_header_and_skips_provenance_kinds() {
        let buf: Vec<u8> = Vec::new();
        let mut sink = JsonlSink::new_v3_with_warmup(Box::new(buf), SimDuration::ZERO);
        assert_eq!(sink.schema(), JOURNAL_SCHEMA_V3);
        let v4_only: u64 = crate::event::tests::samples()
            .iter()
            .filter(|e| e.kind().min_schema() > JOURNAL_SCHEMA_V3)
            .count() as u64;
        assert!(v4_only > 0, "samples must cover schema-4 kinds");
        for (i, event) in crate::event::tests::samples().into_iter().enumerate() {
            sink.record(SimTime::from_millis(i as u64), &event);
        }
        sink.flush();
        assert!(sink.io_error().is_none());
        assert_eq!(sink.skipped(), v4_only);
        assert_eq!(
            sink.records(),
            crate::event::tests::samples().len() as u64 - v4_only
        );
    }

    #[test]
    fn v1_sink_keeps_legacy_header_and_skips_observatory_kinds() {
        let path = std::env::temp_dir().join(format!(
            "mp2p-trace-sink-v1-test-{}.jsonl",
            std::process::id()
        ));
        let v2_only: u64 = crate::event::tests::samples()
            .iter()
            .filter(|e| e.kind().min_schema() > JOURNAL_SCHEMA_V1)
            .count() as u64;
        assert!(v2_only > 0, "samples must cover schema-2 kinds");
        {
            let mut sink = JsonlSink::create(&path).expect("create temp jsonl");
            assert_eq!(sink.schema(), JOURNAL_SCHEMA_V1);
            for (i, event) in crate::event::tests::samples().into_iter().enumerate() {
                sink.record(SimTime::from_millis(i as u64), &event);
            }
            sink.flush();
            assert!(sink.io_error().is_none());
            assert_eq!(sink.skipped(), v2_only);
        }
        let contents = std::fs::read_to_string(&path).expect("read back");
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = contents.lines().collect();
        // The header is byte-identical to what pre-observatory builds
        // wrote: schema 1 with the frozen 27-kind count.
        assert_eq!(lines[0], "{\"schema\":1,\"kinds\":27,\"warmup_ms\":0}");
        assert_eq!(
            lines.len() as u64,
            crate::event::tests::samples().len() as u64 - v2_only + 1
        );
        for line in &lines[1..] {
            assert!(
                !line.contains("\"ev\":\"consistency\"")
                    && !line.contains("\"ev\":\"stale_serve\""),
                "v1 journal must not carry schema-2 kinds: {line}"
            );
        }
    }

    #[test]
    fn summary_counts_and_filters_by_warmup() {
        let warmup = SimDuration::from_secs(10);
        let mut sink = SummarySink::new(warmup);

        // One send during warm-up (ignored by traffic), one after.
        sink.record(SimTime::from_millis(500), &send(0, MessageClass::Poll, 48));
        sink.record(
            SimTime::from_millis(12_000),
            &send(0, MessageClass::Poll, 48),
        );

        // A query issued during warm-up (latency ignored) and one after.
        let served = |issued_ms: u64| TraceEvent::QueryServed {
            node: NodeId::new(1),
            query: 1,
            level: LevelTag::Weak,
            served_by: ServedBy::Cache,
            issued: SimTime::from_millis(issued_ms),
        };
        sink.record(SimTime::from_millis(900), &served(500));
        sink.record(SimTime::from_millis(11_250), &served(11_000));

        assert_eq!(sink.traffic().transmissions(), 1);
        assert_eq!(sink.traffic().by_class(MessageClass::Poll), 1);
        assert_eq!(sink.latency().count(), 1);
        assert_eq!(sink.latency().mean(), SimDuration::from_millis(250));
        // Counts see everything, warm-up included.
        assert_eq!(sink.count_of(EventKind::MsgSend), 2);
        assert_eq!(sink.count_of(EventKind::QueryServed), 2);
        assert_eq!(sink.total_events(), 4);
    }

    #[test]
    fn tee_fans_out_and_is_downcastable() {
        let mut tee = TeeSink::new(vec![
            Box::new(NullSink),
            Box::new(RingSink::new(8)),
            Box::new(SummarySink::new(SimDuration::ZERO)),
        ]);
        assert!(tee.enabled());
        tee.record(
            SimTime::from_millis(5),
            &send(2, MessageClass::Update, 1_064),
        );
        tee.flush();

        let ring = tee
            .sinks()
            .iter()
            .find_map(|s| s.as_any().downcast_ref::<RingSink>())
            .expect("ring child");
        assert_eq!(ring.len(), 1);
        let summary = tee
            .sinks()
            .iter()
            .find_map(|s| s.as_any().downcast_ref::<SummarySink>())
            .expect("summary child");
        assert_eq!(summary.traffic().bytes(), 1_064);
        // The NullSink child must have been skipped, not recorded into.
        assert_eq!(summary.total_events(), 1);
    }

    #[test]
    fn tee_of_only_null_sinks_is_disabled() {
        let tee = TeeSink::new(vec![Box::new(NullSink), Box::new(NullSink)]);
        assert!(!tee.enabled());
    }

    #[test]
    fn jsonl_file_roundtrip_is_parseable() {
        let path =
            std::env::temp_dir().join(format!("mp2p-trace-sink-test-{}.jsonl", std::process::id()));
        {
            let mut sink =
                JsonlSink::create_v4_with_warmup(&path, SimDuration::ZERO).expect("create jsonl");
            for (i, event) in crate::event::tests::samples().into_iter().enumerate() {
                sink.record(SimTime::from_millis(i as u64 * 10), &event);
            }
            sink.flush();
            assert!(sink.io_error().is_none());
        }
        let contents = std::fs::read_to_string(&path).expect("read back");
        let lines: Vec<&str> = contents.lines().collect();
        // Header line + one line per event.
        assert_eq!(lines.len(), crate::event::tests::samples().len() + 1);
        assert!(
            lines[0].starts_with("{\"schema\":4,"),
            "bad header: {}",
            lines[0]
        );
        assert!(lines[0].contains("\"warmup_ms\":0"));
        for line in lines {
            assert!(json::is_valid(line), "bad line: {line}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn jsonl_header_carries_warmup_and_is_not_a_record() {
        let buf: Vec<u8> = Vec::new();
        let mut sink = JsonlSink::new_with_warmup(Box::new(buf), SimDuration::from_secs(60));
        assert_eq!(sink.records(), 0);
        sink.record(SimTime::from_millis(5), &send(0, MessageClass::Poll, 48));
        sink.flush();
        assert!(sink.io_error().is_none());
        assert_eq!(sink.records(), 1);
    }

    #[test]
    fn ring_high_volume_wrap_keeps_newest_in_order() {
        const CAP: usize = 1_000;
        const TOTAL: u64 = 100_000;
        let mut ring = RingSink::new(CAP);
        for i in 0..TOTAL {
            ring.record(SimTime::from_millis(i), &send(0, MessageClass::Poll, 48));
        }
        assert_eq!(ring.len(), CAP);
        assert_eq!(ring.total_recorded(), TOTAL);
        // The retained window is exactly the newest CAP events, oldest
        // first, with no gaps or reordering.
        for (k, (t, _)) in ring.iter().enumerate() {
            assert_eq!(t.as_millis(), TOTAL - CAP as u64 + k as u64);
        }
    }

    #[test]
    fn tee_delivers_to_both_children_in_order() {
        const TOTAL: u64 = 50_000;
        let mut tee = TeeSink::new(vec![
            Box::new(RingSink::new(TOTAL as usize)),
            Box::new(RingSink::new(64)),
        ]);
        for i in 0..TOTAL {
            let class = if i % 2 == 0 {
                MessageClass::Poll
            } else {
                MessageClass::Update
            };
            tee.record(SimTime::from_millis(i), &send((i % 7) as u32, class, 48));
        }
        tee.flush();

        let rings: Vec<&RingSink> = tee
            .sinks()
            .iter()
            .map(|s| s.as_any().downcast_ref::<RingSink>().expect("ring child"))
            .collect();
        // Both children saw every event...
        assert_eq!(rings[0].total_recorded(), TOTAL);
        assert_eq!(rings[1].total_recorded(), TOTAL);
        assert_eq!(rings[0].len(), TOTAL as usize);
        assert_eq!(rings[1].len(), 64);
        // ...in the same order: the small ring's retained tail is
        // exactly the tail of the large ring's full record.
        let tail_of_big: Vec<_> = rings[0].iter().skip(TOTAL as usize - 64).collect();
        let small: Vec<_> = rings[1].iter().collect();
        assert_eq!(tail_of_big, small);
        // And the full stream arrived strictly in emission order.
        for (k, (t, _)) in rings[0].iter().enumerate() {
            assert_eq!(t.as_millis(), k as u64);
        }
    }
}
