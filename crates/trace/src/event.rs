//! The typed event vocabulary of the flight recorder.
//!
//! One [`TraceEvent`] is emitted per observable simulation step: MAC
//! transmissions and deliveries, routing-substrate drops, relay-peer
//! state-machine transitions (Fig. 5 of the paper), query lifecycle
//! milestones, and node churn. Events are plain `Copy` data so the
//! recording hot path never allocates.

use mp2p_metrics::{MessageClass, AGE_BUCKETS};
use mp2p_sim::{ItemId, NodeId, SimTime};

use crate::json;

/// Who answered a query (the paper's three answer paths: the item's
/// source host, a relay peer holding a pushed copy, or the querying
/// peer's own cached copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedBy {
    /// Answered by the item's source host (master copy).
    Source,
    /// Answered by a relay peer on the item's relay table.
    Relay,
    /// Answered from the local cache without contacting anyone.
    Cache,
}

impl ServedBy {
    /// All answer paths, for iteration and per-path counters.
    pub const ALL: [ServedBy; 3] = [ServedBy::Source, ServedBy::Relay, ServedBy::Cache];

    /// Position of this path in [`ServedBy::ALL`] (stable array index).
    pub fn index(self) -> usize {
        match self {
            ServedBy::Source => 0,
            ServedBy::Relay => 1,
            ServedBy::Cache => 2,
        }
    }

    /// Short lowercase label used in JSONL output.
    pub fn label(self) -> &'static str {
        match self {
            ServedBy::Source => "source",
            ServedBy::Relay => "relay",
            ServedBy::Cache => "cache",
        }
    }

    /// Inverse of [`ServedBy::label`] (journal parsing).
    pub fn from_label(label: &str) -> Option<ServedBy> {
        Self::ALL.into_iter().find(|s| s.label() == label)
    }
}

/// A relay-peer state-machine transition (Fig. 5): candidacy
/// application, promotion, demotion, and the GET_NEW/SEND_NEW resync
/// exchange a stale relay runs against the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelayTransitionKind {
    /// A candidate sent APPLY to the source host.
    ApplySent,
    /// The peer became a relay (APPLY_ACK received, or an UPDATE push
    /// implicitly confirmed candidacy).
    Promoted,
    /// The peer resigned relay duty (CANCEL sent or demotion swept).
    Demoted,
    /// A stale relay asked the source for missed content (GET_NEW).
    ResyncStarted,
    /// The relay's copy was refreshed (SEND_NEW or UPDATE arrived).
    ResyncCompleted,
}

impl RelayTransitionKind {
    /// All transition kinds, for iteration and journal parsing.
    pub const ALL: [RelayTransitionKind; 5] = [
        RelayTransitionKind::ApplySent,
        RelayTransitionKind::Promoted,
        RelayTransitionKind::Demoted,
        RelayTransitionKind::ResyncStarted,
        RelayTransitionKind::ResyncCompleted,
    ];

    /// Short snake_case label used in JSONL output.
    pub fn label(self) -> &'static str {
        match self {
            RelayTransitionKind::ApplySent => "apply_sent",
            RelayTransitionKind::Promoted => "promoted",
            RelayTransitionKind::Demoted => "demoted",
            RelayTransitionKind::ResyncStarted => "resync_started",
            RelayTransitionKind::ResyncCompleted => "resync_completed",
        }
    }

    /// Inverse of [`RelayTransitionKind::label`] (journal parsing).
    pub fn from_label(label: &str) -> Option<RelayTransitionKind> {
        Self::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// The proximate cause the consistency observatory assigns to one stale
/// serve: why did this cache answer with a superseded version?
///
/// The variants are ordered by attribution priority — when several
/// hazards touched the same copy, the blame tracker charges the first
/// one listed here whose evidence post-dates the served version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlameCause {
    /// At some update the holder was unreachable from the source
    /// (different connected component, or switched off/crashed).
    Partitioned,
    /// A frame carrying an invalidation/update/resync payload for this
    /// copy was lost on the channel (burst loss, MAC drop, no route).
    InvalidateLost,
    /// The holder's volatile state was wiped by an injected crash; the
    /// re-populated copy lost its propagation provenance.
    CrashWipe,
    /// The holder's relay lease expired without source contact, so it
    /// was no longer on any update push path.
    LeaseOrphan,
    /// A newer version was transmitted but had not yet been applied at
    /// this holder when it answered (propagation in flight).
    RaceInFlight,
    /// No propagation of the newer version was ever transmitted — the
    /// running strategy simply does not push to this holder (e.g. the
    /// pull baseline between TTR polls).
    UpdateNeverSent,
}

impl BlameCause {
    /// All causes, in attribution-priority order.
    pub const ALL: [BlameCause; 6] = [
        BlameCause::Partitioned,
        BlameCause::InvalidateLost,
        BlameCause::CrashWipe,
        BlameCause::LeaseOrphan,
        BlameCause::RaceInFlight,
        BlameCause::UpdateNeverSent,
    ];

    /// Position of this cause in [`BlameCause::ALL`] (stable array index).
    pub fn index(self) -> usize {
        match self {
            BlameCause::Partitioned => 0,
            BlameCause::InvalidateLost => 1,
            BlameCause::CrashWipe => 2,
            BlameCause::LeaseOrphan => 3,
            BlameCause::RaceInFlight => 4,
            BlameCause::UpdateNeverSent => 5,
        }
    }

    /// Short snake_case label used in JSONL output and blame tables.
    pub fn label(self) -> &'static str {
        match self {
            BlameCause::Partitioned => "partitioned",
            BlameCause::InvalidateLost => "invalidate_lost",
            BlameCause::CrashWipe => "crash_wipe",
            BlameCause::LeaseOrphan => "lease_orphan",
            BlameCause::RaceInFlight => "race_in_flight",
            BlameCause::UpdateNeverSent => "update_never_sent",
        }
    }

    /// Inverse of [`BlameCause::label`] (journal parsing).
    pub fn from_label(label: &str) -> Option<BlameCause> {
        Self::ALL.into_iter().find(|c| c.label() == label)
    }
}

/// What ultimately happened to one transmitted frame at one node: the
/// terminal of a [`TraceEvent::FrameFate`] provenance record. Delivery
/// and duplicate suppression are normal life-cycle ends; the drop
/// variants carry the PR 2 fault cause so the causal explainer can name
/// the exact hazard that killed an update on its way to a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameFateKind {
    /// The frame's application payload reached a protocol instance.
    Delivered,
    /// A flood copy was suppressed as an already-seen duplicate.
    DupDrop,
    /// The link-loss channel dropped the frame (independent loss draw).
    ChannelDrop,
    /// The Gilbert–Elliott channel dropped the frame in its burst state.
    BurstDrop,
    /// The unicast next hop had moved out of range (MAC-level loss).
    MacDrop,
    /// The receiving node was switched off or crashed.
    DownDrop,
    /// A forwarding node had no route for the in-flight frame.
    NoRouteDrop,
    /// The frame exceeded the unicast hop budget.
    HopBudgetDrop,
}

impl FrameFateKind {
    /// All fates, for iteration and per-fate counters.
    pub const ALL: [FrameFateKind; 8] = [
        FrameFateKind::Delivered,
        FrameFateKind::DupDrop,
        FrameFateKind::ChannelDrop,
        FrameFateKind::BurstDrop,
        FrameFateKind::MacDrop,
        FrameFateKind::DownDrop,
        FrameFateKind::NoRouteDrop,
        FrameFateKind::HopBudgetDrop,
    ];

    /// Position of this fate in [`FrameFateKind::ALL`] (stable index).
    pub fn index(self) -> usize {
        match self {
            FrameFateKind::Delivered => 0,
            FrameFateKind::DupDrop => 1,
            FrameFateKind::ChannelDrop => 2,
            FrameFateKind::BurstDrop => 3,
            FrameFateKind::MacDrop => 4,
            FrameFateKind::DownDrop => 5,
            FrameFateKind::NoRouteDrop => 6,
            FrameFateKind::HopBudgetDrop => 7,
        }
    }

    /// True for every fate that lost the frame (everything except
    /// delivery and duplicate suppression, which are normal ends).
    pub fn is_loss(self) -> bool {
        !matches!(self, FrameFateKind::Delivered | FrameFateKind::DupDrop)
    }

    /// Short snake_case label used in JSONL output and fate tables.
    pub fn label(self) -> &'static str {
        match self {
            FrameFateKind::Delivered => "delivered",
            FrameFateKind::DupDrop => "dup",
            FrameFateKind::ChannelDrop => "channel",
            FrameFateKind::BurstDrop => "burst",
            FrameFateKind::MacDrop => "mac",
            FrameFateKind::DownDrop => "down",
            FrameFateKind::NoRouteDrop => "no_route",
            FrameFateKind::HopBudgetDrop => "hop_budget",
        }
    }

    /// Inverse of [`FrameFateKind::label`] (journal parsing).
    pub fn from_label(label: &str) -> Option<FrameFateKind> {
        Self::ALL.into_iter().find(|f| f.label() == label)
    }
}

/// The consistency level a query was issued under (Section 4: weak,
/// delta, strong). Mirrors the core crate's `ConsistencyLevel` without
/// making the trace crate depend on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LevelTag {
    /// Weak consistency ("WC"): any cached copy is acceptable.
    Weak,
    /// Delta consistency ("DC"): staleness bounded by a lease.
    Delta,
    /// Strong consistency ("SC"): the answer must be validated.
    Strong,
}

impl LevelTag {
    /// All levels, for iteration and per-level counters.
    pub const ALL: [LevelTag; 3] = [LevelTag::Weak, LevelTag::Delta, LevelTag::Strong];

    /// Position of this level in [`LevelTag::ALL`] (stable array index).
    pub fn index(self) -> usize {
        match self {
            LevelTag::Weak => 0,
            LevelTag::Delta => 1,
            LevelTag::Strong => 2,
        }
    }

    /// The paper's two-letter label ("WC" / "DC" / "SC").
    pub fn label(self) -> &'static str {
        match self {
            LevelTag::Weak => "WC",
            LevelTag::Delta => "DC",
            LevelTag::Strong => "SC",
        }
    }

    /// Inverse of [`LevelTag::label`] (journal parsing).
    pub fn from_label(label: &str) -> Option<LevelTag> {
        Self::ALL.into_iter().find(|l| l.label() == label)
    }
}

/// The causal phase a query entered while being resolved. Together with
/// [`TraceEvent::QueryIssued`] / [`TraceEvent::QueryServed`] these phase
/// markers reconstruct the span tree of each query: issue → (phases) →
/// answer, with per-phase sim-time durations.
///
/// A query with *no* phase events was a local hit: it was answered in the
/// same instant it was issued, from this node's own copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanPhase {
    /// A POLL was unicast to the last known relay peer (RPCC attempt 1).
    PollUnicast,
    /// A POLL went out as a TTL-scoped flood (expanding ring or baseline
    /// broadcast).
    PollFlood,
    /// A content FETCH was sent to the item's source host (cache miss or
    /// push-baseline refresh).
    Fetch,
    /// The push-baseline query parked, waiting for the next invalidation
    /// report.
    PushWait,
    /// Routed retries were exhausted; one max-TTL flood toward the source
    /// went out (hardened degradation path).
    FallbackFlood,
    /// All attempts exhausted; the query lingers for a late answer before
    /// failing.
    Grace,
}

impl SpanPhase {
    /// All phases, for iteration and per-phase breakdown tables.
    pub const ALL: [SpanPhase; 6] = [
        SpanPhase::PollUnicast,
        SpanPhase::PollFlood,
        SpanPhase::Fetch,
        SpanPhase::PushWait,
        SpanPhase::FallbackFlood,
        SpanPhase::Grace,
    ];

    /// Position of this phase in [`SpanPhase::ALL`] (stable array index).
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&p| p == self)
            .expect("phase listed in ALL")
    }

    /// Short snake_case label used in JSONL output and tables.
    pub fn label(self) -> &'static str {
        match self {
            SpanPhase::PollUnicast => "poll_unicast",
            SpanPhase::PollFlood => "poll_flood",
            SpanPhase::Fetch => "fetch",
            SpanPhase::PushWait => "push_wait",
            SpanPhase::FallbackFlood => "fallback_flood",
            SpanPhase::Grace => "grace",
        }
    }

    /// Inverse of [`SpanPhase::label`] (journal parsing).
    pub fn from_label(label: &str) -> Option<SpanPhase> {
        Self::ALL.into_iter().find(|p| p.label() == label)
    }
}

/// One structured flight-recorder event.
///
/// Each variant carries the acting node plus the minimum context needed
/// to reconstruct the run offline: message class and size for traffic
/// accounting, hop counts for TTL auditing, the issue instant for
/// latency accounting, and so on. Everything is `Copy`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A MAC-level transmission (`dest: None` means a local broadcast).
    /// One event is emitted per hop, matching [`mp2p_metrics::TrafficStats`].
    MsgSend {
        /// The transmitting node.
        node: NodeId,
        /// What the frame carried.
        class: MessageClass,
        /// Frame size on the air, in bytes.
        bytes: u32,
        /// MAC receiver for unicast, `None` for broadcast.
        dest: Option<NodeId>,
        /// The query span this frame serves (POLL/ACK/FETCH traffic),
        /// if any. Diagnostic metadata only: it rides outside the wire
        /// size and never influences protocol decisions.
        span: Option<u64>,
    },
    /// An application message reached its destination protocol.
    MsgDeliver {
        /// The receiving node.
        node: NodeId,
        /// The node that created the message.
        origin: NodeId,
        /// What the message carried.
        class: MessageClass,
        /// Hops travelled from origin to this node.
        hops: u8,
        /// True if it arrived via a flood rather than routed unicast.
        via_flood: bool,
        /// The query span this message serves, if any (see
        /// [`TraceEvent::MsgSend::span`]).
        span: Option<u64>,
    },
    /// A unicast transmission whose next hop had moved out of range.
    MacDrop {
        /// The transmitting node.
        node: NodeId,
        /// The unreachable MAC receiver.
        next_hop: NodeId,
        /// What the lost frame carried.
        class: MessageClass,
    },
    /// The network layer gave up on a message (no route after retries).
    Undeliverable {
        /// The sending node that got the message handed back.
        node: NodeId,
        /// The unreachable destination.
        dest: NodeId,
        /// What the abandoned message carried.
        class: MessageClass,
    },
    /// A flood frame was ignored as a duplicate.
    FloodDupDrop {
        /// The node that ignored the frame.
        node: NodeId,
        /// The flood's originator.
        origin: NodeId,
    },
    /// A flood frame arrived with an exhausted TTL and was not re-broadcast.
    FloodTtlExhausted {
        /// The node where propagation stopped.
        node: NodeId,
        /// The flood's originator.
        origin: NodeId,
    },
    /// A route request was ignored as a duplicate.
    RreqDupDrop {
        /// The node that ignored the RREQ.
        node: NodeId,
        /// The RREQ's originator.
        origin: NodeId,
    },
    /// A unicast frame exceeded the hop budget and was dropped.
    HopBudgetDrop {
        /// The node that dropped the frame.
        node: NodeId,
        /// The frame's originator.
        origin: NodeId,
        /// The frame's intended destination.
        dest: NodeId,
    },
    /// A forwarding node had no route for an in-flight unicast frame.
    NoRouteDrop {
        /// The node that dropped the frame.
        node: NodeId,
        /// The frame's originator.
        origin: NodeId,
        /// The frame's intended destination.
        dest: NodeId,
    },
    /// Route discovery started (attempt 1) or was retried (attempt > 1).
    DiscoveryStart {
        /// The node searching for a route.
        node: NodeId,
        /// The destination being searched for.
        dest: NodeId,
        /// 1-based discovery attempt number.
        attempt: u8,
    },
    /// Route discovery exhausted its retries; buffered packets dropped.
    DiscoveryFailed {
        /// The node that gave up.
        node: NodeId,
        /// The destination that was never found.
        dest: NodeId,
        /// How many buffered packets were abandoned.
        dropped: u32,
    },
    /// A relay-peer state-machine transition (Fig. 5).
    RelayTransition {
        /// The transitioning peer.
        node: NodeId,
        /// The item whose relay duty changed.
        item: ItemId,
        /// What happened.
        kind: RelayTransitionKind,
    },
    /// A peer issued a query.
    QueryIssued {
        /// The querying peer.
        node: NodeId,
        /// The globally unique query number.
        query: u64,
        /// The item queried.
        item: ItemId,
        /// The consistency level requested.
        level: LevelTag,
    },
    /// An open query entered a new causal phase (sent a poll, widened the
    /// ring, parked on a push report, …). Phase markers plus the
    /// span-tagged message events reconstruct each query's span tree.
    QueryPhase {
        /// The querying peer.
        node: NodeId,
        /// The query number from [`TraceEvent::QueryIssued`].
        query: u64,
        /// The item queried.
        item: ItemId,
        /// Which phase was entered.
        phase: SpanPhase,
        /// 1-based attempt number within the phase (ring widenings,
        /// fetch retries); 0 where attempts are meaningless.
        attempt: u8,
    },
    /// A query was answered.
    QueryServed {
        /// The peer whose query completed.
        node: NodeId,
        /// The query number from [`TraceEvent::QueryIssued`].
        query: u64,
        /// The consistency level it ran under.
        level: LevelTag,
        /// Which copy answered it.
        served_by: ServedBy,
        /// When the query was issued (lets a summary sink recompute the
        /// exact latency and warm-up filtering offline).
        issued: SimTime,
    },
    /// A query timed out unanswered.
    QueryFailed {
        /// The peer whose query failed.
        node: NodeId,
        /// The query number from [`TraceEvent::QueryIssued`].
        query: u64,
        /// The consistency level it ran under.
        level: LevelTag,
    },
    /// A node switched on (rejoined the network).
    NodeUp {
        /// The node that came up.
        node: NodeId,
    },
    /// A node switched off (left the network).
    NodeDown {
        /// The node that went down.
        node: NodeId,
    },
    /// A source host updated its master copy.
    SourceUpdate {
        /// The source host.
        node: NodeId,
        /// The updated item.
        item: ItemId,
        /// The new master version.
        version: u64,
    },
    /// Fault injection crashed a node: its volatile state (cache store,
    /// relay/pending protocol state, routing tables) was wiped.
    NodeCrash {
        /// The crashed node.
        node: NodeId,
    },
    /// A crashed node cold-booted.
    NodeRecover {
        /// The recovering node.
        node: NodeId,
    },
    /// Fault injection started a bisection partition of the terrain.
    PartitionStart {
        /// Cut orientation tag (0 = vertical, 1 = horizontal).
        axis: u8,
    },
    /// A bisection partition healed.
    PartitionHeal {
        /// Cut orientation tag (0 = vertical, 1 = horizontal).
        axis: u8,
    },
    /// Fault injection duplicated a transmitted frame.
    FrameDup {
        /// The transmitting node whose frame was duplicated.
        node: NodeId,
        /// What the duplicated frame carried.
        class: MessageClass,
    },
    /// The Gilbert–Elliott channel dropped an arriving frame while in
    /// its bad (burst) state.
    BurstDrop {
        /// The node whose reception was lost.
        node: NodeId,
    },
    /// A relay's hold on an item expired without source contact; the
    /// peer demoted itself (graceful degradation, self-CANCEL).
    RelayLeaseExpired {
        /// The demoting relay peer.
        node: NodeId,
        /// The item whose relay duty lapsed.
        item: ItemId,
    },
    /// A peer exhausted its routed retries and fell back to flooding
    /// the source directly (graceful degradation).
    FallbackFlood {
        /// The degrading peer.
        node: NodeId,
        /// The query being rescued.
        query: u64,
        /// The item being polled.
        item: ItemId,
    },
    /// One tick of the consistency observatory's divergence sampler: a
    /// global snapshot of how far the cached copies have drifted from
    /// their masters. Journal schema ≥ 2 only.
    ConsistencySample {
        /// Cached copies holding the current master version.
        fresh_copies: u32,
        /// Cached copies audited in total.
        total_copies: u32,
        /// Items with at least one cached copy.
        items_replicated: u32,
        /// Largest replica count of any single item.
        max_replicas: u32,
        /// Connected components among switched-on nodes (1 = fully
        /// reachable; more = the terrain is partitioned).
        partitions: u32,
        /// Nodes currently holding at least one relay duty.
        relay_nodes: u32,
        /// Histogram of stale-copy ages over
        /// [`mp2p_metrics::AGE_BUCKET_EDGES`] (last bucket = overflow).
        ages: [u32; AGE_BUCKETS],
    },
    /// A measured query was answered with a superseded version, with the
    /// proximate cause the blame tracker attributed. Journal schema ≥ 2
    /// only.
    StaleServe {
        /// The peer that got the stale answer.
        node: NodeId,
        /// The query number from [`TraceEvent::QueryIssued`].
        query: u64,
        /// The stale item.
        item: ItemId,
        /// Why the copy was stale.
        cause: BlameCause,
        /// How long the served version had been superseded, in ms.
        staleness_ms: u64,
        /// Versions behind the master.
        lag: u64,
        /// True if the staleness exceeded the run's Δ (the TTP), i.e.
        /// this serve violated Δ-consistency (Eq. 3.2.2).
        violation: bool,
    },
    /// A rejoining node flooded its version digest to its neighbors
    /// (recovery layer). Journal schema ≥ 3 only.
    ResyncStart {
        /// The rejoining node.
        node: NodeId,
        /// Digest entries advertised across all frames.
        items: u32,
    },
    /// A rejoining node finished processing one resync reply. Journal
    /// schema ≥ 3 only.
    ResyncDone {
        /// The rejoining node.
        node: NodeId,
        /// Stale copies dropped or queued for refresh by this reply.
        stale: u32,
    },
    /// The recovery layer retransmitted an unacknowledged update.
    /// Journal schema ≥ 3 only.
    RecoveryRetransmit {
        /// The retransmitting sender (source host).
        node: NodeId,
        /// The relay peer being retried.
        dest: NodeId,
        /// The updated item.
        item: ItemId,
        /// The frame's sequence number.
        seq: u64,
        /// 1-based retransmission attempt.
        attempt: u8,
    },
    /// A delivery ACK settled a pending retransmission. Journal
    /// schema ≥ 3 only.
    RecoveryAck {
        /// The sender whose retransmit entry was settled.
        node: NodeId,
        /// The acknowledging relay peer.
        peer: NodeId,
        /// The acknowledged item.
        item: ItemId,
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// An orphan-expiring relay handed its duty to an elected cached
    /// neighbor instead of self-CANCELing. Journal schema ≥ 3 only.
    RelayHandover {
        /// The expiring relay that gave up the duty.
        from: NodeId,
        /// The elected neighbor that takes it over.
        to: NodeId,
        /// The item whose relay duty moved.
        item: ItemId,
    },
    /// A frame entered the network: its first transmission at the origin
    /// node. `(node, frame)` is the frame's deterministic identity (the
    /// per-node monotonic counter) for every later hop and fate record.
    /// Journal schema ≥ 4 only.
    FrameBorn {
        /// The originating node (also the frame-id namespace).
        node: NodeId,
        /// The origin-local monotonic frame sequence number.
        frame: u64,
        /// What the frame carries.
        class: MessageClass,
        /// Final unicast destination; `None` for a flood.
        dest: Option<NodeId>,
        /// The item whose update/invalidation the frame propagates, if
        /// it is a propagation frame.
        item: Option<ItemId>,
        /// The propagated master version (only with `item`).
        version: u64,
    },
    /// A frame was re-transmitted by an intermediate node (flood
    /// re-broadcast or routed unicast forward). Journal schema ≥ 4 only.
    FrameHop {
        /// The forwarding node.
        node: NodeId,
        /// The frame's originating node.
        origin: NodeId,
        /// The origin-local frame sequence number.
        frame: u64,
        /// Hops travelled so far (this transmission included).
        hops: u8,
    },
    /// A frame's life ended at one node: delivered, suppressed as a
    /// duplicate, or dropped with the injecting fault's cause. Journal
    /// schema ≥ 4 only.
    FrameFate {
        /// The node where the fate occurred.
        node: NodeId,
        /// The frame's originating node.
        origin: NodeId,
        /// The origin-local frame sequence number.
        frame: u64,
        /// What happened.
        fate: FrameFateKind,
    },
    /// A cached copy was installed or refreshed from a delivered
    /// message: the copy's lineage record, naming the carrying frame and
    /// its hop path. Journal schema ≥ 4 only.
    CopyLineage {
        /// The node whose cache changed.
        node: NodeId,
        /// The installed item.
        item: ItemId,
        /// The installed version (the origin update sequence).
        version: u64,
        /// The carrying frame's originating node.
        origin: NodeId,
        /// The carrying frame's origin-local sequence number.
        frame: u64,
        /// Hops the carrying frame travelled to arrive here.
        hops: u8,
    },
}

/// Discriminant of a [`TraceEvent`], for counting and table rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// See [`TraceEvent::MsgSend`].
    MsgSend,
    /// See [`TraceEvent::MsgDeliver`].
    MsgDeliver,
    /// See [`TraceEvent::MacDrop`].
    MacDrop,
    /// See [`TraceEvent::Undeliverable`].
    Undeliverable,
    /// See [`TraceEvent::FloodDupDrop`].
    FloodDupDrop,
    /// See [`TraceEvent::FloodTtlExhausted`].
    FloodTtlExhausted,
    /// See [`TraceEvent::RreqDupDrop`].
    RreqDupDrop,
    /// See [`TraceEvent::HopBudgetDrop`].
    HopBudgetDrop,
    /// See [`TraceEvent::NoRouteDrop`].
    NoRouteDrop,
    /// See [`TraceEvent::DiscoveryStart`].
    DiscoveryStart,
    /// See [`TraceEvent::DiscoveryFailed`].
    DiscoveryFailed,
    /// See [`TraceEvent::RelayTransition`].
    RelayTransition,
    /// See [`TraceEvent::QueryIssued`].
    QueryIssued,
    /// See [`TraceEvent::QueryServed`].
    QueryServed,
    /// See [`TraceEvent::QueryFailed`].
    QueryFailed,
    /// See [`TraceEvent::NodeUp`].
    NodeUp,
    /// See [`TraceEvent::NodeDown`].
    NodeDown,
    /// See [`TraceEvent::SourceUpdate`].
    SourceUpdate,
    /// See [`TraceEvent::NodeCrash`].
    NodeCrash,
    /// See [`TraceEvent::NodeRecover`].
    NodeRecover,
    /// See [`TraceEvent::PartitionStart`].
    PartitionStart,
    /// See [`TraceEvent::PartitionHeal`].
    PartitionHeal,
    /// See [`TraceEvent::FrameDup`].
    FrameDup,
    /// See [`TraceEvent::BurstDrop`].
    BurstDrop,
    /// See [`TraceEvent::RelayLeaseExpired`].
    RelayLeaseExpired,
    /// See [`TraceEvent::FallbackFlood`].
    FallbackFlood,
    /// See [`TraceEvent::QueryPhase`].
    QueryPhase,
    /// See [`TraceEvent::ConsistencySample`].
    ConsistencySample,
    /// See [`TraceEvent::StaleServe`].
    StaleServe,
    /// See [`TraceEvent::ResyncStart`].
    ResyncStart,
    /// See [`TraceEvent::ResyncDone`].
    ResyncDone,
    /// See [`TraceEvent::RecoveryRetransmit`].
    RecoveryRetransmit,
    /// See [`TraceEvent::RecoveryAck`].
    RecoveryAck,
    /// See [`TraceEvent::RelayHandover`].
    RelayHandover,
    /// See [`TraceEvent::FrameBorn`].
    FrameBorn,
    /// See [`TraceEvent::FrameHop`].
    FrameHop,
    /// See [`TraceEvent::FrameFate`].
    FrameFate,
    /// See [`TraceEvent::CopyLineage`].
    CopyLineage,
}

impl EventKind {
    /// All kinds, for iteration and table rendering. Schema-2, schema-3
    /// and schema-4 kinds are appended at the end so older indices stay
    /// stable.
    pub const ALL: [EventKind; 38] = [
        EventKind::MsgSend,
        EventKind::MsgDeliver,
        EventKind::MacDrop,
        EventKind::Undeliverable,
        EventKind::FloodDupDrop,
        EventKind::FloodTtlExhausted,
        EventKind::RreqDupDrop,
        EventKind::HopBudgetDrop,
        EventKind::NoRouteDrop,
        EventKind::DiscoveryStart,
        EventKind::DiscoveryFailed,
        EventKind::RelayTransition,
        EventKind::QueryIssued,
        EventKind::QueryServed,
        EventKind::QueryFailed,
        EventKind::NodeUp,
        EventKind::NodeDown,
        EventKind::SourceUpdate,
        EventKind::NodeCrash,
        EventKind::NodeRecover,
        EventKind::PartitionStart,
        EventKind::PartitionHeal,
        EventKind::FrameDup,
        EventKind::BurstDrop,
        EventKind::RelayLeaseExpired,
        EventKind::FallbackFlood,
        EventKind::QueryPhase,
        EventKind::ConsistencySample,
        EventKind::StaleServe,
        EventKind::ResyncStart,
        EventKind::ResyncDone,
        EventKind::RecoveryRetransmit,
        EventKind::RecoveryAck,
        EventKind::RelayHandover,
        EventKind::FrameBorn,
        EventKind::FrameHop,
        EventKind::FrameFate,
        EventKind::CopyLineage,
    ];

    /// Position of this kind in [`EventKind::ALL`] (stable array index
    /// for per-kind counters).
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind listed in ALL")
    }

    /// The snake_case label used both in JSONL `"ev"` fields and tables.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::MsgSend => "msg_send",
            EventKind::MsgDeliver => "msg_deliver",
            EventKind::MacDrop => "mac_drop",
            EventKind::Undeliverable => "undeliverable",
            EventKind::FloodDupDrop => "flood_dup_drop",
            EventKind::FloodTtlExhausted => "flood_ttl_exhausted",
            EventKind::RreqDupDrop => "rreq_dup_drop",
            EventKind::HopBudgetDrop => "hop_budget_drop",
            EventKind::NoRouteDrop => "no_route_drop",
            EventKind::DiscoveryStart => "discovery_start",
            EventKind::DiscoveryFailed => "discovery_failed",
            EventKind::RelayTransition => "relay_transition",
            EventKind::QueryIssued => "query_issued",
            EventKind::QueryServed => "query_served",
            EventKind::QueryFailed => "query_failed",
            EventKind::NodeUp => "node_up",
            EventKind::NodeDown => "node_down",
            EventKind::SourceUpdate => "source_update",
            EventKind::NodeCrash => "node_crash",
            EventKind::NodeRecover => "node_recover",
            EventKind::PartitionStart => "partition_start",
            EventKind::PartitionHeal => "partition_heal",
            EventKind::FrameDup => "frame_dup",
            EventKind::BurstDrop => "burst_drop",
            EventKind::RelayLeaseExpired => "relay_lease_expired",
            EventKind::FallbackFlood => "fallback_flood",
            EventKind::QueryPhase => "query_phase",
            EventKind::ConsistencySample => "consistency",
            EventKind::StaleServe => "stale_serve",
            EventKind::ResyncStart => "resync_start",
            EventKind::ResyncDone => "resync_done",
            EventKind::RecoveryRetransmit => "retransmit",
            EventKind::RecoveryAck => "recovery_ack",
            EventKind::RelayHandover => "relay_handover",
            EventKind::FrameBorn => "frame_born",
            EventKind::FrameHop => "frame_hop",
            EventKind::FrameFate => "frame_fate",
            EventKind::CopyLineage => "copy_lineage",
        }
    }

    /// Inverse of [`EventKind::label`] (journal parsing).
    pub fn from_label(label: &str) -> Option<EventKind> {
        Self::ALL.into_iter().find(|k| k.label() == label)
    }

    /// The lowest journal schema whose vocabulary includes this kind.
    /// A [`crate::JsonlSink`] writing an older schema skips the event;
    /// a [`crate::reader::JournalReader`] of an older journal rejects
    /// its line.
    pub fn min_schema(self) -> u64 {
        match self {
            EventKind::ConsistencySample | EventKind::StaleServe => 2,
            EventKind::ResyncStart
            | EventKind::ResyncDone
            | EventKind::RecoveryRetransmit
            | EventKind::RecoveryAck
            | EventKind::RelayHandover => 3,
            EventKind::FrameBorn
            | EventKind::FrameHop
            | EventKind::FrameFate
            | EventKind::CopyLineage => 4,
            _ => 1,
        }
    }
}

impl TraceEvent {
    /// The kind discriminant of this event.
    pub fn kind(&self) -> EventKind {
        match self {
            TraceEvent::MsgSend { .. } => EventKind::MsgSend,
            TraceEvent::MsgDeliver { .. } => EventKind::MsgDeliver,
            TraceEvent::MacDrop { .. } => EventKind::MacDrop,
            TraceEvent::Undeliverable { .. } => EventKind::Undeliverable,
            TraceEvent::FloodDupDrop { .. } => EventKind::FloodDupDrop,
            TraceEvent::FloodTtlExhausted { .. } => EventKind::FloodTtlExhausted,
            TraceEvent::RreqDupDrop { .. } => EventKind::RreqDupDrop,
            TraceEvent::HopBudgetDrop { .. } => EventKind::HopBudgetDrop,
            TraceEvent::NoRouteDrop { .. } => EventKind::NoRouteDrop,
            TraceEvent::DiscoveryStart { .. } => EventKind::DiscoveryStart,
            TraceEvent::DiscoveryFailed { .. } => EventKind::DiscoveryFailed,
            TraceEvent::RelayTransition { .. } => EventKind::RelayTransition,
            TraceEvent::QueryIssued { .. } => EventKind::QueryIssued,
            TraceEvent::QueryServed { .. } => EventKind::QueryServed,
            TraceEvent::QueryFailed { .. } => EventKind::QueryFailed,
            TraceEvent::NodeUp { .. } => EventKind::NodeUp,
            TraceEvent::NodeDown { .. } => EventKind::NodeDown,
            TraceEvent::SourceUpdate { .. } => EventKind::SourceUpdate,
            TraceEvent::NodeCrash { .. } => EventKind::NodeCrash,
            TraceEvent::NodeRecover { .. } => EventKind::NodeRecover,
            TraceEvent::PartitionStart { .. } => EventKind::PartitionStart,
            TraceEvent::PartitionHeal { .. } => EventKind::PartitionHeal,
            TraceEvent::FrameDup { .. } => EventKind::FrameDup,
            TraceEvent::BurstDrop { .. } => EventKind::BurstDrop,
            TraceEvent::RelayLeaseExpired { .. } => EventKind::RelayLeaseExpired,
            TraceEvent::FallbackFlood { .. } => EventKind::FallbackFlood,
            TraceEvent::QueryPhase { .. } => EventKind::QueryPhase,
            TraceEvent::ConsistencySample { .. } => EventKind::ConsistencySample,
            TraceEvent::StaleServe { .. } => EventKind::StaleServe,
            TraceEvent::ResyncStart { .. } => EventKind::ResyncStart,
            TraceEvent::ResyncDone { .. } => EventKind::ResyncDone,
            TraceEvent::RecoveryRetransmit { .. } => EventKind::RecoveryRetransmit,
            TraceEvent::RecoveryAck { .. } => EventKind::RecoveryAck,
            TraceEvent::RelayHandover { .. } => EventKind::RelayHandover,
            TraceEvent::FrameBorn { .. } => EventKind::FrameBorn,
            TraceEvent::FrameHop { .. } => EventKind::FrameHop,
            TraceEvent::FrameFate { .. } => EventKind::FrameFate,
            TraceEvent::CopyLineage { .. } => EventKind::CopyLineage,
        }
    }

    /// Serialises this event as one JSON object appended to `out` (no
    /// trailing newline). `at` is the simulated timestamp.
    ///
    /// # Example
    ///
    /// ```
    /// use mp2p_sim::{NodeId, SimTime};
    /// use mp2p_trace::TraceEvent;
    ///
    /// let mut line = String::new();
    /// TraceEvent::NodeDown { node: NodeId::new(3) }
    ///     .write_json(SimTime::from_millis(1_500), &mut line);
    /// assert_eq!(line, r#"{"t":1500,"ev":"node_down","node":3}"#);
    /// ```
    pub fn write_json(&self, at: SimTime, out: &mut String) {
        use std::fmt::Write;

        let field_str = |out: &mut String, key: &str, value: &str| {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            json::escape_into(out, value);
        };
        let field_num = |out: &mut String, key: &str, value: u64| {
            let _ = write!(out, ",\"{key}\":{value}");
        };

        out.push_str("{\"t\":");
        let _ = write!(out, "{}", at.as_millis());
        field_str(out, "ev", self.kind().label());
        match *self {
            TraceEvent::MsgSend {
                node,
                class,
                bytes,
                dest,
                span,
            } => {
                field_num(out, "node", node.index() as u64);
                field_str(out, "class", class.label());
                field_num(out, "bytes", u64::from(bytes));
                match dest {
                    Some(d) => field_num(out, "dest", d.index() as u64),
                    None => out.push_str(",\"dest\":null"),
                }
                if let Some(span) = span {
                    field_num(out, "span", span);
                }
            }
            TraceEvent::MsgDeliver {
                node,
                origin,
                class,
                hops,
                via_flood,
                span,
            } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "origin", origin.index() as u64);
                field_str(out, "class", class.label());
                field_num(out, "hops", u64::from(hops));
                let _ = write!(out, ",\"flood\":{via_flood}");
                if let Some(span) = span {
                    field_num(out, "span", span);
                }
            }
            TraceEvent::MacDrop {
                node,
                next_hop,
                class,
            } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "next_hop", next_hop.index() as u64);
                field_str(out, "class", class.label());
            }
            TraceEvent::Undeliverable { node, dest, class } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "dest", dest.index() as u64);
                field_str(out, "class", class.label());
            }
            TraceEvent::FloodDupDrop { node, origin }
            | TraceEvent::FloodTtlExhausted { node, origin }
            | TraceEvent::RreqDupDrop { node, origin } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "origin", origin.index() as u64);
            }
            TraceEvent::HopBudgetDrop { node, origin, dest }
            | TraceEvent::NoRouteDrop { node, origin, dest } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "origin", origin.index() as u64);
                field_num(out, "dest", dest.index() as u64);
            }
            TraceEvent::DiscoveryStart {
                node,
                dest,
                attempt,
            } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "dest", dest.index() as u64);
                field_num(out, "attempt", u64::from(attempt));
            }
            TraceEvent::DiscoveryFailed {
                node,
                dest,
                dropped,
            } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "dest", dest.index() as u64);
                field_num(out, "dropped", u64::from(dropped));
            }
            TraceEvent::RelayTransition { node, item, kind } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "item", item.index() as u64);
                field_str(out, "kind", kind.label());
            }
            TraceEvent::QueryIssued {
                node,
                query,
                item,
                level,
            } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "query", query);
                field_num(out, "item", item.index() as u64);
                field_str(out, "level", level.label());
            }
            TraceEvent::QueryServed {
                node,
                query,
                level,
                served_by,
                issued,
            } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "query", query);
                field_str(out, "level", level.label());
                field_str(out, "by", served_by.label());
                field_num(out, "issued", issued.as_millis());
            }
            TraceEvent::QueryFailed { node, query, level } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "query", query);
                field_str(out, "level", level.label());
            }
            TraceEvent::NodeUp { node } | TraceEvent::NodeDown { node } => {
                field_num(out, "node", node.index() as u64);
            }
            TraceEvent::SourceUpdate {
                node,
                item,
                version,
            } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "item", item.index() as u64);
                field_num(out, "version", version);
            }
            TraceEvent::NodeCrash { node }
            | TraceEvent::NodeRecover { node }
            | TraceEvent::BurstDrop { node } => {
                field_num(out, "node", node.index() as u64);
            }
            TraceEvent::PartitionStart { axis } | TraceEvent::PartitionHeal { axis } => {
                field_num(out, "axis", u64::from(axis));
            }
            TraceEvent::FrameDup { node, class } => {
                field_num(out, "node", node.index() as u64);
                field_str(out, "class", class.label());
            }
            TraceEvent::RelayLeaseExpired { node, item } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "item", item.index() as u64);
            }
            TraceEvent::FallbackFlood { node, query, item } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "query", query);
                field_num(out, "item", item.index() as u64);
            }
            TraceEvent::QueryPhase {
                node,
                query,
                item,
                phase,
                attempt,
            } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "query", query);
                field_num(out, "item", item.index() as u64);
                field_str(out, "phase", phase.label());
                field_num(out, "attempt", u64::from(attempt));
            }
            TraceEvent::ConsistencySample {
                fresh_copies,
                total_copies,
                items_replicated,
                max_replicas,
                partitions,
                relay_nodes,
                ages,
            } => {
                field_num(out, "fresh", u64::from(fresh_copies));
                field_num(out, "copies", u64::from(total_copies));
                field_num(out, "items", u64::from(items_replicated));
                field_num(out, "max_replicas", u64::from(max_replicas));
                field_num(out, "partitions", u64::from(partitions));
                field_num(out, "relay_nodes", u64::from(relay_nodes));
                out.push_str(",\"ages\":[");
                for (i, count) in ages.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{count}");
                }
                out.push(']');
            }
            TraceEvent::StaleServe {
                node,
                query,
                item,
                cause,
                staleness_ms,
                lag,
                violation,
            } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "query", query);
                field_num(out, "item", item.index() as u64);
                field_str(out, "cause", cause.label());
                field_num(out, "staleness_ms", staleness_ms);
                field_num(out, "lag", lag);
                let _ = write!(out, ",\"violation\":{violation}");
            }
            TraceEvent::ResyncStart { node, items } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "items", u64::from(items));
            }
            TraceEvent::ResyncDone { node, stale } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "stale", u64::from(stale));
            }
            TraceEvent::RecoveryRetransmit {
                node,
                dest,
                item,
                seq,
                attempt,
            } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "dest", dest.index() as u64);
                field_num(out, "item", item.index() as u64);
                field_num(out, "seq", seq);
                field_num(out, "attempt", u64::from(attempt));
            }
            TraceEvent::RecoveryAck {
                node,
                peer,
                item,
                seq,
            } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "peer", peer.index() as u64);
                field_num(out, "item", item.index() as u64);
                field_num(out, "seq", seq);
            }
            TraceEvent::RelayHandover { from, to, item } => {
                field_num(out, "from", from.index() as u64);
                field_num(out, "to", to.index() as u64);
                field_num(out, "item", item.index() as u64);
            }
            TraceEvent::FrameBorn {
                node,
                frame,
                class,
                dest,
                item,
                version,
            } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "frame", frame);
                field_str(out, "class", class.label());
                match dest {
                    Some(d) => field_num(out, "dest", d.index() as u64),
                    None => out.push_str(",\"dest\":null"),
                }
                if let Some(item) = item {
                    field_num(out, "item", item.index() as u64);
                    field_num(out, "version", version);
                }
            }
            TraceEvent::FrameHop {
                node,
                origin,
                frame,
                hops,
            } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "origin", origin.index() as u64);
                field_num(out, "frame", frame);
                field_num(out, "hops", u64::from(hops));
            }
            TraceEvent::FrameFate {
                node,
                origin,
                frame,
                fate,
            } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "origin", origin.index() as u64);
                field_num(out, "frame", frame);
                field_str(out, "fate", fate.label());
            }
            TraceEvent::CopyLineage {
                node,
                item,
                version,
                origin,
                frame,
                hops,
            } => {
                field_num(out, "node", node.index() as u64);
                field_num(out, "item", item.index() as u64);
                field_num(out, "version", version);
                field_num(out, "origin", origin.index() as u64);
                field_num(out, "frame", frame);
                field_num(out, "hops", u64::from(hops));
            }
        }
        out.push('}');
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// One sample of every variant, exercising every serialisation arm.
    pub(crate) fn samples() -> Vec<TraceEvent> {
        let n = NodeId::new(1);
        let m = NodeId::new(2);
        let item = ItemId::new(3);
        vec![
            TraceEvent::MsgSend {
                node: n,
                class: MessageClass::Poll,
                bytes: 48,
                dest: Some(m),
                span: Some(7),
            },
            TraceEvent::MsgSend {
                node: n,
                class: MessageClass::Invalidation,
                bytes: 40,
                dest: None,
                span: None,
            },
            TraceEvent::MsgDeliver {
                node: m,
                origin: n,
                class: MessageClass::Update,
                hops: 3,
                via_flood: false,
                span: None,
            },
            TraceEvent::MsgDeliver {
                node: m,
                origin: n,
                class: MessageClass::PollAckB,
                hops: 2,
                via_flood: true,
                span: Some(7),
            },
            TraceEvent::MacDrop {
                node: n,
                next_hop: m,
                class: MessageClass::Apply,
            },
            TraceEvent::Undeliverable {
                node: n,
                dest: m,
                class: MessageClass::GetNew,
            },
            TraceEvent::FloodDupDrop { node: n, origin: m },
            TraceEvent::FloodTtlExhausted { node: n, origin: m },
            TraceEvent::RreqDupDrop { node: n, origin: m },
            TraceEvent::HopBudgetDrop {
                node: n,
                origin: m,
                dest: n,
            },
            TraceEvent::NoRouteDrop {
                node: n,
                origin: m,
                dest: n,
            },
            TraceEvent::DiscoveryStart {
                node: n,
                dest: m,
                attempt: 2,
            },
            TraceEvent::DiscoveryFailed {
                node: n,
                dest: m,
                dropped: 5,
            },
            TraceEvent::RelayTransition {
                node: n,
                item,
                kind: RelayTransitionKind::Promoted,
            },
            TraceEvent::QueryIssued {
                node: n,
                query: 7,
                item,
                level: LevelTag::Strong,
            },
            TraceEvent::QueryServed {
                node: n,
                query: 7,
                level: LevelTag::Strong,
                served_by: ServedBy::Relay,
                issued: SimTime::from_millis(120),
            },
            TraceEvent::QueryFailed {
                node: n,
                query: 8,
                level: LevelTag::Weak,
            },
            TraceEvent::NodeUp { node: n },
            TraceEvent::NodeDown { node: n },
            TraceEvent::SourceUpdate {
                node: n,
                item,
                version: 4,
            },
            TraceEvent::NodeCrash { node: n },
            TraceEvent::NodeRecover { node: n },
            TraceEvent::PartitionStart { axis: 0 },
            TraceEvent::PartitionHeal { axis: 0 },
            TraceEvent::FrameDup {
                node: n,
                class: MessageClass::Update,
            },
            TraceEvent::BurstDrop { node: m },
            TraceEvent::RelayLeaseExpired { node: n, item },
            TraceEvent::FallbackFlood {
                node: n,
                query: 9,
                item,
            },
            TraceEvent::QueryPhase {
                node: n,
                query: 7,
                item,
                phase: SpanPhase::PollFlood,
                attempt: 2,
            },
            TraceEvent::QueryPhase {
                node: n,
                query: 9,
                item,
                phase: SpanPhase::Grace,
                attempt: 0,
            },
            TraceEvent::ConsistencySample {
                fresh_copies: 12,
                total_copies: 20,
                items_replicated: 7,
                max_replicas: 5,
                partitions: 2,
                relay_nodes: 4,
                ages: [3, 2, 1, 1, 0, 1],
            },
            TraceEvent::StaleServe {
                node: n,
                query: 7,
                item,
                cause: BlameCause::InvalidateLost,
                staleness_ms: 1_500,
                lag: 2,
                violation: false,
            },
            TraceEvent::StaleServe {
                node: m,
                query: 11,
                item,
                cause: BlameCause::Partitioned,
                staleness_ms: 250_000,
                lag: 4,
                violation: true,
            },
            TraceEvent::ResyncStart { node: n, items: 6 },
            TraceEvent::ResyncDone { node: n, stale: 2 },
            TraceEvent::RecoveryRetransmit {
                node: n,
                dest: m,
                item,
                seq: 17,
                attempt: 1,
            },
            TraceEvent::RecoveryAck {
                node: n,
                peer: m,
                item,
                seq: 17,
            },
            TraceEvent::RelayHandover {
                from: n,
                to: m,
                item,
            },
            TraceEvent::FrameBorn {
                node: n,
                frame: 12,
                class: MessageClass::Update,
                dest: Some(m),
                item: Some(item),
                version: 4,
            },
            TraceEvent::FrameBorn {
                node: n,
                frame: 13,
                class: MessageClass::Invalidation,
                dest: None,
                item: None,
                version: 0,
            },
            TraceEvent::FrameHop {
                node: m,
                origin: n,
                frame: 12,
                hops: 2,
            },
            TraceEvent::FrameFate {
                node: m,
                origin: n,
                frame: 12,
                fate: FrameFateKind::Delivered,
            },
            TraceEvent::FrameFate {
                node: m,
                origin: n,
                frame: 13,
                fate: FrameFateKind::BurstDrop,
            },
            TraceEvent::CopyLineage {
                node: m,
                item,
                version: 4,
                origin: n,
                frame: 12,
                hops: 2,
            },
        ]
    }

    #[test]
    fn every_variant_serialises_to_valid_json() {
        for event in samples() {
            let mut line = String::new();
            event.write_json(SimTime::from_millis(250), &mut line);
            assert!(
                json::is_valid(&line),
                "{:?} produced invalid JSON: {line}",
                event.kind()
            );
            assert!(
                line.contains(&format!("\"ev\":\"{}\"", event.kind().label())),
                "missing kind tag in {line}"
            );
        }
    }

    #[test]
    fn samples_cover_every_kind() {
        let mut kinds: Vec<_> = samples().iter().map(|e| e.kind()).collect();
        kinds.sort_by_key(|k| k.index());
        kinds.dedup();
        assert_eq!(kinds.len(), EventKind::ALL.len());
    }

    #[test]
    fn kind_labels_and_indices_are_unique() {
        let mut labels: Vec<_> = EventKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), EventKind::ALL.len());
        for (i, kind) in EventKind::ALL.into_iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
    }

    #[test]
    fn broadcast_dest_serialises_as_null() {
        let mut line = String::new();
        TraceEvent::MsgSend {
            node: NodeId::new(0),
            class: MessageClass::Invalidation,
            bytes: 40,
            dest: None,
            span: None,
        }
        .write_json(SimTime::ZERO, &mut line);
        assert!(line.contains("\"dest\":null"), "{line}");
        assert!(!line.contains("\"span\""), "untagged frames omit the span");
        assert!(json::is_valid(&line));
    }

    #[test]
    fn span_tag_serialises_only_when_present() {
        let mut line = String::new();
        TraceEvent::MsgSend {
            node: NodeId::new(0),
            class: MessageClass::Poll,
            bytes: 40,
            dest: Some(NodeId::new(4)),
            span: Some(31),
        }
        .write_json(SimTime::ZERO, &mut line);
        assert!(line.contains("\"span\":31"), "{line}");
        assert!(json::is_valid(&line));
    }

    #[test]
    fn phase_and_tag_labels_are_unique() {
        for labels in [
            SpanPhase::ALL.map(SpanPhase::label).to_vec(),
            LevelTag::ALL.map(LevelTag::label).to_vec(),
            ServedBy::ALL.map(ServedBy::label).to_vec(),
            BlameCause::ALL.map(BlameCause::label).to_vec(),
            FrameFateKind::ALL.map(FrameFateKind::label).to_vec(),
            RelayTransitionKind::ALL
                .map(RelayTransitionKind::label)
                .to_vec(),
        ] {
            let mut sorted = labels.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), labels.len(), "{labels:?}");
        }
        for (i, phase) in SpanPhase::ALL.into_iter().enumerate() {
            assert_eq!(phase.index(), i);
            assert_eq!(SpanPhase::from_label(phase.label()), Some(phase));
        }
        for (i, cause) in BlameCause::ALL.into_iter().enumerate() {
            assert_eq!(cause.index(), i);
            assert_eq!(BlameCause::from_label(cause.label()), Some(cause));
        }
        for (i, fate) in FrameFateKind::ALL.into_iter().enumerate() {
            assert_eq!(fate.index(), i);
            assert_eq!(FrameFateKind::from_label(fate.label()), Some(fate));
        }
    }

    #[test]
    fn schema_tiers_match_the_kind_vocabulary() {
        for kind in EventKind::ALL {
            let expected = match kind {
                EventKind::ConsistencySample | EventKind::StaleServe => 2,
                EventKind::ResyncStart
                | EventKind::ResyncDone
                | EventKind::RecoveryRetransmit
                | EventKind::RecoveryAck
                | EventKind::RelayHandover => 3,
                EventKind::FrameBorn
                | EventKind::FrameHop
                | EventKind::FrameFate
                | EventKind::CopyLineage => 4,
                _ => 1,
            };
            assert_eq!(kind.min_schema(), expected, "{kind:?}");
        }
    }
}
