//! Offline journal reading: parse a JSONL trace back into typed events.
//!
//! A journal written by [`crate::JsonlSink`] starts with one versioned
//! header object (`{"schema":1,...}` or `{"schema":2,...}`) followed by
//! one event object per line. [`JournalReader`] streams it line-by-line —
//! it never buffers the whole file — checking the schema up front and
//! turning each line back into a `(SimTime, TraceEvent)` pair via the
//! label inverses (`EventKind::from_label` and friends). Parsing is
//! version-gated: the reader accepts every schema up to
//! [`JOURNAL_SCHEMA`], and a line whose kind post-dates the journal's
//! declared schema (e.g. a `consistency` record in a schema-1 journal)
//! is a [`ReadError::BadLine`], not a silently-adopted event.
//! Serialise-then-parse is the identity on every event variant (see the
//! roundtrip test).

use std::fmt;
use std::io::{self, BufRead};

use mp2p_metrics::MessageClass;
use mp2p_sim::{ItemId, NodeId, SimTime};

use crate::event::{
    BlameCause, EventKind, FrameFateKind, LevelTag, RelayTransitionKind, ServedBy, SpanPhase,
    TraceEvent,
};
use crate::json::{self, Value};
use crate::sink::JOURNAL_SCHEMA;

/// The journal's leading metadata record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// Schema version (between 1 and [`JOURNAL_SCHEMA`] inclusive).
    pub schema: u64,
    /// How many event kinds the writer knew about.
    pub kinds: u64,
    /// The run's warm-up period in milliseconds (censoring boundary).
    pub warmup_ms: u64,
}

/// Why reading a journal failed.
#[derive(Debug)]
pub enum ReadError {
    /// The underlying reader failed.
    Io(io::Error),
    /// The journal is empty or its first line is not a header object.
    MissingHeader,
    /// The header's schema version is not the one this reader speaks.
    SchemaMismatch {
        /// The version found in the header.
        found: u64,
    },
    /// A line did not parse as a known event.
    BadLine {
        /// 1-based line number in the journal (the header is line 1).
        line_no: usize,
        /// The offending text (truncated for display).
        text: String,
    },
}

impl fmt::Display for ReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "journal I/O error: {e}"),
            ReadError::MissingHeader => {
                write!(f, "journal has no {{\"schema\":...}} header line")
            }
            ReadError::SchemaMismatch { found } => write!(
                f,
                "journal schema {found} unsupported (reader speaks 1..={JOURNAL_SCHEMA})"
            ),
            ReadError::BadLine { line_no, text } => {
                write!(f, "unparseable journal line {line_no}: {text}")
            }
        }
    }
}

impl std::error::Error for ReadError {}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Streams `(SimTime, TraceEvent)` pairs out of a JSONL journal.
///
/// # Example
///
/// ```
/// use std::io::BufReader;
/// use mp2p_trace::reader::JournalReader;
///
/// let journal = "{\"schema\":1,\"kinds\":27,\"warmup_ms\":0}\n\
///                {\"t\":1500,\"ev\":\"node_down\",\"node\":3}\n";
/// let mut reader = JournalReader::new(BufReader::new(journal.as_bytes())).unwrap();
/// assert_eq!(reader.header().warmup_ms, 0);
/// let (at, event) = reader.next().unwrap().unwrap();
/// assert_eq!(at.as_millis(), 1500);
/// assert_eq!(event.kind().label(), "node_down");
/// ```
#[derive(Debug)]
pub struct JournalReader<R: BufRead> {
    input: R,
    header: JournalHeader,
    buf: Vec<u8>,
    line_no: usize,
}

impl<R: BufRead> JournalReader<R> {
    /// Opens a journal, consuming and validating its header line.
    ///
    /// Lines are read as raw bytes and validated as UTF-8 here rather
    /// than through `read_line`, so a corrupt journal (truncated write,
    /// binary garbage) yields a line-accurate [`ReadError::BadLine`]
    /// instead of an anonymous I/O error.
    pub fn new(mut input: R) -> Result<Self, ReadError> {
        let mut buf = Vec::with_capacity(256);
        if input.read_until(b'\n', &mut buf)? == 0 {
            return Err(ReadError::MissingHeader);
        }
        // A non-UTF-8 first line cannot be the header object.
        let text = std::str::from_utf8(&buf).map_err(|_| ReadError::MissingHeader)?;
        let header = parse_header(text.trim_end()).ok_or(ReadError::MissingHeader)?;
        if header.schema == 0 || header.schema > JOURNAL_SCHEMA {
            return Err(ReadError::SchemaMismatch {
                found: header.schema,
            });
        }
        Ok(JournalReader {
            input,
            header,
            buf,
            line_no: 1,
        })
    }

    /// The validated header.
    pub fn header(&self) -> JournalHeader {
        self.header
    }

    /// Lines consumed so far (header included).
    pub fn lines_read(&self) -> usize {
        self.line_no
    }
}

impl<R: BufRead> Iterator for JournalReader<R> {
    type Item = Result<(SimTime, TraceEvent), ReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            self.buf.clear();
            match self.input.read_until(b'\n', &mut self.buf) {
                Ok(0) => return None,
                Ok(_) => {}
                Err(e) => return Some(Err(ReadError::Io(e))),
            }
            self.line_no += 1;
            // Invalid UTF-8 is a corrupt line, not an I/O failure: report
            // it with its line number like any other unparseable line.
            let Ok(text) = std::str::from_utf8(&self.buf) else {
                let text = String::from_utf8_lossy(&self.buf);
                return Some(Err(ReadError::BadLine {
                    line_no: self.line_no,
                    text: text.trim_end().chars().take(160).collect(),
                }));
            };
            let text = text.trim_end();
            if text.is_empty() {
                continue; // tolerate a trailing blank line
            }
            return Some(
                parse_event_versioned(text, self.header.schema).ok_or_else(|| ReadError::BadLine {
                    line_no: self.line_no,
                    text: text.chars().take(160).collect(),
                }),
            );
        }
    }
}

/// Parses the header line, accepting any object with a numeric `schema`.
fn parse_header(line: &str) -> Option<JournalHeader> {
    let v = json::parse(line)?;
    let schema = v.get("schema")?.as_u64()?;
    Some(JournalHeader {
        schema,
        kinds: v.get("kinds").and_then(Value::as_u64).unwrap_or(0),
        warmup_ms: v.get("warmup_ms").and_then(Value::as_u64).unwrap_or(0),
    })
}

/// Parses one event line back into the pair `write_json` flattened,
/// accepting the full current vocabulary. Returns `None` on any
/// structural or vocabulary mismatch.
pub fn parse_event(line: &str) -> Option<(SimTime, TraceEvent)> {
    parse_event_versioned(line, JOURNAL_SCHEMA)
}

/// Version-gated [`parse_event`]: a kind introduced after `schema` (see
/// [`EventKind::min_schema`]) does not parse, so a schema-1 journal
/// carrying schema-2 records is rejected line-accurately instead of
/// silently adopted.
pub fn parse_event_versioned(line: &str, schema: u64) -> Option<(SimTime, TraceEvent)> {
    let v = json::parse(line)?;
    let at = SimTime::from_millis(v.get("t")?.as_u64()?);
    let kind = EventKind::from_label(v.get("ev")?.as_str()?)?;
    if kind.min_schema() > schema {
        return None;
    }

    let num = |key: &str| v.get(key).and_then(Value::as_u64);
    let node_field = |key: &str| num(key).map(|n| NodeId::new(n as u32));
    let item_field = |key: &str| num(key).map(|n| ItemId::new(n as u32));
    let class_field = || {
        v.get("class")
            .and_then(Value::as_str)
            .and_then(MessageClass::from_label)
    };
    let level_field = || {
        v.get("level")
            .and_then(Value::as_str)
            .and_then(LevelTag::from_label)
    };
    let span_field = || match v.get("span") {
        Some(s) => s.as_u64().map(Some), // present but non-numeric = bad
        None => Some(None),
    };

    let event = match kind {
        EventKind::MsgSend => TraceEvent::MsgSend {
            node: node_field("node")?,
            class: class_field()?,
            bytes: num("bytes")? as u32,
            dest: match v.get("dest")? {
                Value::Null => None,
                d => Some(NodeId::new(d.as_u64()? as u32)),
            },
            span: span_field()?,
        },
        EventKind::MsgDeliver => TraceEvent::MsgDeliver {
            node: node_field("node")?,
            origin: node_field("origin")?,
            class: class_field()?,
            hops: num("hops")? as u8,
            via_flood: v.get("flood")?.as_bool()?,
            span: span_field()?,
        },
        EventKind::MacDrop => TraceEvent::MacDrop {
            node: node_field("node")?,
            next_hop: node_field("next_hop")?,
            class: class_field()?,
        },
        EventKind::Undeliverable => TraceEvent::Undeliverable {
            node: node_field("node")?,
            dest: node_field("dest")?,
            class: class_field()?,
        },
        EventKind::FloodDupDrop => TraceEvent::FloodDupDrop {
            node: node_field("node")?,
            origin: node_field("origin")?,
        },
        EventKind::FloodTtlExhausted => TraceEvent::FloodTtlExhausted {
            node: node_field("node")?,
            origin: node_field("origin")?,
        },
        EventKind::RreqDupDrop => TraceEvent::RreqDupDrop {
            node: node_field("node")?,
            origin: node_field("origin")?,
        },
        EventKind::HopBudgetDrop => TraceEvent::HopBudgetDrop {
            node: node_field("node")?,
            origin: node_field("origin")?,
            dest: node_field("dest")?,
        },
        EventKind::NoRouteDrop => TraceEvent::NoRouteDrop {
            node: node_field("node")?,
            origin: node_field("origin")?,
            dest: node_field("dest")?,
        },
        EventKind::DiscoveryStart => TraceEvent::DiscoveryStart {
            node: node_field("node")?,
            dest: node_field("dest")?,
            attempt: num("attempt")? as u8,
        },
        EventKind::DiscoveryFailed => TraceEvent::DiscoveryFailed {
            node: node_field("node")?,
            dest: node_field("dest")?,
            dropped: num("dropped")? as u32,
        },
        EventKind::RelayTransition => TraceEvent::RelayTransition {
            node: node_field("node")?,
            item: item_field("item")?,
            kind: RelayTransitionKind::from_label(v.get("kind")?.as_str()?)?,
        },
        EventKind::QueryIssued => TraceEvent::QueryIssued {
            node: node_field("node")?,
            query: num("query")?,
            item: item_field("item")?,
            level: level_field()?,
        },
        EventKind::QueryPhase => TraceEvent::QueryPhase {
            node: node_field("node")?,
            query: num("query")?,
            item: item_field("item")?,
            phase: SpanPhase::from_label(v.get("phase")?.as_str()?)?,
            attempt: num("attempt")? as u8,
        },
        EventKind::QueryServed => TraceEvent::QueryServed {
            node: node_field("node")?,
            query: num("query")?,
            level: level_field()?,
            served_by: ServedBy::from_label(v.get("by")?.as_str()?)?,
            issued: SimTime::from_millis(num("issued")?),
        },
        EventKind::QueryFailed => TraceEvent::QueryFailed {
            node: node_field("node")?,
            query: num("query")?,
            level: level_field()?,
        },
        EventKind::NodeUp => TraceEvent::NodeUp {
            node: node_field("node")?,
        },
        EventKind::NodeDown => TraceEvent::NodeDown {
            node: node_field("node")?,
        },
        EventKind::SourceUpdate => TraceEvent::SourceUpdate {
            node: node_field("node")?,
            item: item_field("item")?,
            version: num("version")?,
        },
        EventKind::NodeCrash => TraceEvent::NodeCrash {
            node: node_field("node")?,
        },
        EventKind::NodeRecover => TraceEvent::NodeRecover {
            node: node_field("node")?,
        },
        EventKind::PartitionStart => TraceEvent::PartitionStart {
            axis: num("axis")? as u8,
        },
        EventKind::PartitionHeal => TraceEvent::PartitionHeal {
            axis: num("axis")? as u8,
        },
        EventKind::FrameDup => TraceEvent::FrameDup {
            node: node_field("node")?,
            class: class_field()?,
        },
        EventKind::BurstDrop => TraceEvent::BurstDrop {
            node: node_field("node")?,
        },
        EventKind::RelayLeaseExpired => TraceEvent::RelayLeaseExpired {
            node: node_field("node")?,
            item: item_field("item")?,
        },
        EventKind::FallbackFlood => TraceEvent::FallbackFlood {
            node: node_field("node")?,
            query: num("query")?,
            item: item_field("item")?,
        },
        EventKind::ConsistencySample => {
            let Value::Arr(raw) = v.get("ages")? else {
                return None;
            };
            if raw.len() != mp2p_metrics::AGE_BUCKETS {
                return None;
            }
            let mut ages = [0u32; mp2p_metrics::AGE_BUCKETS];
            for (slot, value) in ages.iter_mut().zip(raw) {
                *slot = value.as_u64()? as u32;
            }
            TraceEvent::ConsistencySample {
                fresh_copies: num("fresh")? as u32,
                total_copies: num("copies")? as u32,
                items_replicated: num("items")? as u32,
                max_replicas: num("max_replicas")? as u32,
                partitions: num("partitions")? as u32,
                relay_nodes: num("relay_nodes")? as u32,
                ages,
            }
        }
        EventKind::StaleServe => TraceEvent::StaleServe {
            node: node_field("node")?,
            query: num("query")?,
            item: item_field("item")?,
            cause: BlameCause::from_label(v.get("cause")?.as_str()?)?,
            staleness_ms: num("staleness_ms")?,
            lag: num("lag")?,
            violation: v.get("violation")?.as_bool()?,
        },
        EventKind::ResyncStart => TraceEvent::ResyncStart {
            node: node_field("node")?,
            items: num("items")? as u32,
        },
        EventKind::ResyncDone => TraceEvent::ResyncDone {
            node: node_field("node")?,
            stale: num("stale")? as u32,
        },
        EventKind::RecoveryRetransmit => TraceEvent::RecoveryRetransmit {
            node: node_field("node")?,
            dest: node_field("dest")?,
            item: item_field("item")?,
            seq: num("seq")?,
            attempt: num("attempt")? as u8,
        },
        EventKind::RecoveryAck => TraceEvent::RecoveryAck {
            node: node_field("node")?,
            peer: node_field("peer")?,
            item: item_field("item")?,
            seq: num("seq")?,
        },
        EventKind::RelayHandover => TraceEvent::RelayHandover {
            from: node_field("from")?,
            to: node_field("to")?,
            item: item_field("item")?,
        },
        EventKind::FrameBorn => {
            // `item`/`version` are written only for propagation frames.
            let item = match v.get("item") {
                Some(i) => Some(ItemId::new(i.as_u64()? as u32)),
                None => None,
            };
            TraceEvent::FrameBorn {
                node: node_field("node")?,
                frame: num("frame")?,
                class: class_field()?,
                dest: match v.get("dest")? {
                    Value::Null => None,
                    d => Some(NodeId::new(d.as_u64()? as u32)),
                },
                version: if item.is_some() { num("version")? } else { 0 },
                item,
            }
        }
        EventKind::FrameHop => TraceEvent::FrameHop {
            node: node_field("node")?,
            origin: node_field("origin")?,
            frame: num("frame")?,
            hops: num("hops")? as u8,
        },
        EventKind::FrameFate => TraceEvent::FrameFate {
            node: node_field("node")?,
            origin: node_field("origin")?,
            frame: num("frame")?,
            fate: FrameFateKind::from_label(v.get("fate")?.as_str()?)?,
        },
        EventKind::CopyLineage => TraceEvent::CopyLineage {
            node: node_field("node")?,
            item: item_field("item")?,
            version: num("version")?,
            origin: node_field("origin")?,
            frame: num("frame")?,
            hops: num("hops")? as u8,
        },
    };
    Some((at, event))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{JsonlSink, TraceSink};
    use mp2p_sim::SimDuration;
    use std::io::BufReader;

    #[test]
    fn serialise_then_parse_is_identity_on_every_variant() {
        for (i, event) in crate::event::tests::samples().into_iter().enumerate() {
            let at = SimTime::from_millis(17 * i as u64);
            let mut line = String::new();
            event.write_json(at, &mut line);
            let (back_at, back) = parse_event(&line).unwrap_or_else(|| {
                panic!("{:?} did not parse back: {line}", event.kind());
            });
            assert_eq!(back_at, at, "{line}");
            assert_eq!(back, event, "{line}");
        }
    }

    #[test]
    fn reader_streams_a_sink_written_journal() {
        // The boxed writer swallows an in-memory buffer, so go through a
        // temp file and read the bytes back.
        let path = std::env::temp_dir().join(format!(
            "mp2p-trace-reader-test-{}.jsonl",
            std::process::id()
        ));
        {
            let mut sink =
                JsonlSink::create_v4_with_warmup(&path, SimDuration::from_secs(60)).unwrap();
            for (i, event) in crate::event::tests::samples().into_iter().enumerate() {
                sink.record(SimTime::from_millis(i as u64 * 10), &event);
            }
            sink.flush();
            assert!(sink.io_error().is_none());
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let mut reader = JournalReader::new(BufReader::new(bytes.as_slice())).unwrap();
        assert_eq!(reader.header().schema, JOURNAL_SCHEMA);
        assert_eq!(reader.header().warmup_ms, 60_000);
        let events: Vec<_> = reader.by_ref().collect::<Result<Vec<_>, _>>().unwrap();
        assert_eq!(events.len(), crate::event::tests::samples().len());
        for ((at, event), (i, expected)) in events
            .iter()
            .zip(crate::event::tests::samples().into_iter().enumerate())
        {
            assert_eq!(at.as_millis(), i as u64 * 10);
            assert_eq!(event, &expected);
        }
        assert_eq!(reader.lines_read(), events.len() + 1);
    }

    #[test]
    fn missing_or_wrong_header_is_rejected() {
        let empty = JournalReader::new(BufReader::new(&b""[..]));
        assert!(matches!(empty, Err(ReadError::MissingHeader)));

        let no_header = "{\"t\":0,\"ev\":\"node_up\",\"node\":0}\n";
        let r = JournalReader::new(BufReader::new(no_header.as_bytes()));
        assert!(matches!(r, Err(ReadError::MissingHeader)));

        let future = "{\"schema\":99}\n";
        let r = JournalReader::new(BufReader::new(future.as_bytes()));
        assert!(matches!(r, Err(ReadError::SchemaMismatch { found: 99 })));

        let zero = "{\"schema\":0}\n";
        let r = JournalReader::new(BufReader::new(zero.as_bytes()));
        assert!(matches!(r, Err(ReadError::SchemaMismatch { found: 0 })));
    }

    #[test]
    fn both_supported_schemas_are_accepted() {
        for schema in 1..=JOURNAL_SCHEMA {
            let journal =
                format!("{{\"schema\":{schema}}}\n{{\"t\":5,\"ev\":\"node_up\",\"node\":1}}\n");
            let mut reader = JournalReader::new(BufReader::new(journal.as_bytes())).unwrap();
            assert_eq!(reader.header().schema, schema);
            let (at, event) = reader.next().unwrap().unwrap();
            assert_eq!(at.as_millis(), 5);
            assert_eq!(event.kind(), EventKind::NodeUp);
        }
    }

    #[test]
    fn observatory_kinds_are_version_gated() {
        // Serialise one schema-2 record.
        let mut line = String::new();
        TraceEvent::StaleServe {
            node: NodeId::new(3),
            query: 12,
            item: ItemId::new(1),
            cause: BlameCause::LeaseOrphan,
            staleness_ms: 900,
            lag: 1,
            violation: false,
        }
        .write_json(SimTime::from_millis(7), &mut line);

        // In a schema-2 journal it parses back exactly.
        let v2 = format!("{{\"schema\":2}}\n{line}\n");
        let mut reader = JournalReader::new(BufReader::new(v2.as_bytes())).unwrap();
        let (_, event) = reader.next().unwrap().unwrap();
        assert_eq!(event.kind(), EventKind::StaleServe);

        // In a schema-1 journal the same line is a BadLine, not an event.
        let v1 = format!("{{\"schema\":1}}\n{line}\n");
        let mut reader = JournalReader::new(BufReader::new(v1.as_bytes())).unwrap();
        match reader.next().unwrap() {
            Err(ReadError::BadLine { line_no, .. }) => assert_eq!(line_no, 2),
            other => panic!("expected BadLine, got {other:?}"),
        }

        // The free-function gate agrees.
        assert!(parse_event_versioned(&line, 2).is_some());
        assert!(parse_event_versioned(&line, 1).is_none());
        assert!(
            parse_event(&line).is_some(),
            "default speaks the newest schema"
        );
    }

    #[test]
    fn bad_lines_carry_their_line_number() {
        let journal = "{\"schema\":1}\n{\"t\":0,\"ev\":\"node_up\",\"node\":0}\nnot json\n";
        let mut reader = JournalReader::new(BufReader::new(journal.as_bytes())).unwrap();
        assert!(reader.next().unwrap().is_ok());
        match reader.next().unwrap() {
            Err(ReadError::BadLine { line_no, text }) => {
                assert_eq!(line_no, 3);
                assert_eq!(text, "not json");
            }
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn unknown_event_labels_are_bad_lines() {
        assert!(parse_event("{\"t\":0,\"ev\":\"martian\",\"node\":0}").is_none());
        // A span tag that is present but non-numeric must not silently
        // become None.
        assert!(parse_event(
            "{\"t\":0,\"ev\":\"msg_send\",\"node\":0,\"class\":\"POLL\",\"bytes\":4,\"dest\":null,\"span\":\"x\"}"
        )
        .is_none());
    }
}
