//! Fuzz-style hardening tests for [`mp2p_trace::reader::JournalReader`]:
//! truncated journals, byte-level corruption, invalid UTF-8 and wrong
//! schema headers must all surface as line-accurate `Err`s — the reader
//! must never panic, whatever bytes it is fed.
//!
//! The journal lines are hand-built from the writer's documented shapes
//! (the serialise-then-parse identity itself is covered by the reader's
//! unit tests against `TraceEvent::write_json`).

use std::io::BufReader;

use mp2p_trace::reader::{JournalReader, ReadError};
use proptest::prelude::*;

/// A well-formed header for the schema this reader speaks.
fn header(schema: u64) -> String {
    format!("{{\"schema\":{schema},\"kinds\":27,\"warmup_ms\":60000}}")
}

/// One well-formed event line, drawn from a handful of real shapes.
fn valid_line() -> impl Strategy<Value = String> {
    let t = 0u64..500_000;
    let node = 0u64..64;
    prop_oneof![
        (t.clone(), node.clone())
            .prop_map(|(t, n)| format!("{{\"t\":{t},\"ev\":\"node_up\",\"node\":{n}}}")),
        (t.clone(), node.clone())
            .prop_map(|(t, n)| format!("{{\"t\":{t},\"ev\":\"node_down\",\"node\":{n}}}")),
        (t.clone(), node.clone(), 1u64..99).prop_map(|(t, n, v)| format!(
            "{{\"t\":{t},\"ev\":\"source_update\",\"node\":{n},\"item\":{n},\"version\":{v}}}"
        )),
        (t.clone(), node.clone(), 0u64..64).prop_map(|(t, n, o)| format!(
            "{{\"t\":{t},\"ev\":\"flood_dup_drop\",\"node\":{n},\"origin\":{o}}}"
        )),
        (t, node, 1u64..2048).prop_map(|(t, n, b)| format!(
            "{{\"t\":{t},\"ev\":\"msg_send\",\"node\":{n},\"class\":\"POLL\",\"bytes\":{b},\"dest\":null}}"
        )),
    ]
}

/// One well-formed recovery-layer event line (schema-3 kinds).
fn valid_v3_line() -> impl Strategy<Value = String> {
    let t = 0u64..500_000;
    let node = 0u64..64;
    prop_oneof![
        (t.clone(), node.clone(), 0u32..200).prop_map(|(t, n, i)| format!(
            "{{\"t\":{t},\"ev\":\"resync_start\",\"node\":{n},\"items\":{i}}}"
        )),
        (t.clone(), node.clone(), 0u32..50).prop_map(|(t, n, s)| format!(
            "{{\"t\":{t},\"ev\":\"resync_done\",\"node\":{n},\"stale\":{s}}}"
        )),
        (t.clone(), node.clone(), 0u64..64, 1u64..999, 1u8..5).prop_map(|(t, n, d, s, a)| format!(
            "{{\"t\":{t},\"ev\":\"retransmit\",\"node\":{n},\"dest\":{d},\
                 \"item\":{n},\"seq\":{s},\"attempt\":{a}}}"
        )),
        (t.clone(), node.clone(), 0u64..64, 1u64..999).prop_map(|(t, n, p, s)| format!(
            "{{\"t\":{t},\"ev\":\"recovery_ack\",\"node\":{n},\"peer\":{p},\"item\":{n},\
             \"seq\":{s}}}"
        )),
        (t, node.clone(), node).prop_map(|(t, f, o)| format!(
            "{{\"t\":{t},\"ev\":\"relay_handover\",\"from\":{f},\"to\":{o},\"item\":{f}}}"
        )),
    ]
}

/// One well-formed provenance event line (schema-4 kinds), fate labels
/// drawn from the real [`mp2p_trace::FrameFateKind`] set.
fn valid_v4_line() -> impl Strategy<Value = String> {
    let t = 0u64..500_000;
    let node = 0u64..64;
    let fate = (0usize..mp2p_trace::FrameFateKind::ALL.len())
        .prop_map(|i| mp2p_trace::FrameFateKind::ALL[i].label());
    prop_oneof![
        // A propagation frame (carries item + version)...
        (t.clone(), node.clone(), 0u64..9999, 1u64..99).prop_map(|(t, n, f, v)| format!(
            "{{\"t\":{t},\"ev\":\"frame_born\",\"node\":{n},\"frame\":{f},\
             \"class\":\"INVALIDATION\",\"dest\":null,\"item\":{n},\"version\":{v}}}"
        )),
        // ...and a plain one (no item fields, unicast dest).
        (t.clone(), node.clone(), 0u64..9999, 0u64..64).prop_map(|(t, n, f, d)| format!(
            "{{\"t\":{t},\"ev\":\"frame_born\",\"node\":{n},\"frame\":{f},\
             \"class\":\"POLL\",\"dest\":{d}}}"
        )),
        (t.clone(), node.clone(), 0u64..64, 0u64..9999, 1u8..10).prop_map(
            |(t, n, o, f, h)| format!(
                "{{\"t\":{t},\"ev\":\"frame_hop\",\"node\":{n},\"origin\":{o},\
                 \"frame\":{f},\"hops\":{h}}}"
            )
        ),
        (t.clone(), node.clone(), 0u64..64, 0u64..9999, fate).prop_map(
            |(t, n, o, f, fate)| format!(
                "{{\"t\":{t},\"ev\":\"frame_fate\",\"node\":{n},\"origin\":{o},\
                 \"frame\":{f},\"fate\":\"{fate}\"}}"
            )
        ),
        (t, node.clone(), 1u64..99, node, 0u64..9999, 0u8..10).prop_map(
            |(t, n, v, o, f, h)| format!(
                "{{\"t\":{t},\"ev\":\"copy_lineage\",\"node\":{n},\"item\":{n},\
                 \"version\":{v},\"origin\":{o},\"frame\":{f},\"hops\":{h}}}"
            )
        ),
    ]
}

/// Assembles header + event lines into journal bytes.
fn journal(schema: u64, lines: &[String]) -> Vec<u8> {
    let mut bytes = header(schema).into_bytes();
    bytes.push(b'\n');
    for line in lines {
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
    }
    bytes
}

/// Drains a reader, panicking only on a reader panic — errors are data.
fn drain(
    reader: &mut JournalReader<BufReader<&[u8]>>,
) -> Vec<Result<(mp2p_sim::SimTime, mp2p_trace::TraceEvent), ReadError>> {
    reader.collect()
}

proptest! {
    /// A fully valid journal streams back every line.
    #[test]
    fn valid_journals_parse_completely(
        lines in proptest::collection::vec(valid_line(), 0..40),
    ) {
        let bytes = journal(1, &lines);
        let mut reader = JournalReader::new(BufReader::new(bytes.as_slice())).unwrap();
        let items = drain(&mut reader);
        prop_assert_eq!(items.len(), lines.len());
        for item in &items {
            prop_assert!(item.is_ok(), "unexpected error: {:?}", item.as_ref().err());
        }
        prop_assert_eq!(reader.lines_read(), lines.len() + 1);
    }

    /// A schema-3 journal mixing legacy and recovery-layer kinds streams
    /// back every line.
    #[test]
    fn valid_v3_journals_parse_completely(
        lines in proptest::collection::vec(
            prop_oneof![valid_line(), valid_v3_line()], 0..40,
        ),
    ) {
        let bytes = journal(3, &lines);
        let mut reader = JournalReader::new(BufReader::new(bytes.as_slice())).unwrap();
        let items = drain(&mut reader);
        prop_assert_eq!(items.len(), lines.len());
        for item in &items {
            prop_assert!(item.is_ok(), "unexpected error: {:?}", item.as_ref().err());
        }
    }

    /// A schema-4 journal mixing all four schema tiers streams back
    /// every line.
    #[test]
    fn valid_v4_journals_parse_completely(
        lines in proptest::collection::vec(
            prop_oneof![valid_line(), valid_v3_line(), valid_v4_line()], 0..40,
        ),
    ) {
        let bytes = journal(4, &lines);
        let mut reader = JournalReader::new(BufReader::new(bytes.as_slice())).unwrap();
        let items = drain(&mut reader);
        prop_assert_eq!(items.len(), lines.len());
        for item in &items {
            prop_assert!(item.is_ok(), "unexpected error: {:?}", item.as_ref().err());
        }
    }

    /// Newer-schema kinds inside an old journal are line errors, not
    /// panics and not silent successes: a schema-1 header promises no
    /// recovery or provenance records, so each such line must surface
    /// as a `BadLine` while the legacy lines around it still parse.
    #[test]
    fn newer_kinds_in_an_old_journal_are_bad_lines(
        old in proptest::collection::vec(valid_line(), 0..10),
        newer in prop_oneof![valid_v3_line(), valid_v4_line()],
    ) {
        let mut lines = old.clone();
        lines.push(newer);
        let bytes = journal(1, &lines);
        let mut reader = JournalReader::new(BufReader::new(bytes.as_slice())).unwrap();
        let items = drain(&mut reader);
        prop_assert_eq!(items.len(), lines.len());
        for (i, item) in items.iter().enumerate() {
            if i == old.len() {
                match item {
                    Err(ReadError::BadLine { line_no, .. }) => {
                        prop_assert_eq!(*line_no, old.len() + 2);
                    }
                    other => prop_assert!(false, "expected BadLine, got {other:?}"),
                }
            } else {
                prop_assert!(item.is_ok(), "legacy line {i} failed: {:?}", item.as_ref().err());
            }
        }
    }

    /// Truncating a valid journal at any byte offset never panics, and a
    /// partial trailing line is reported under its own line number.
    #[test]
    fn truncation_is_line_accurate(
        lines in proptest::collection::vec(valid_line(), 1..20),
        cut_frac in 0.0f64..1.0,
    ) {
        let bytes = journal(1, &lines);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let cut_bytes = &bytes[..cut];
        let header_len = header(1).len() + 1;
        match JournalReader::new(BufReader::new(cut_bytes)) {
            Err(e) => {
                // Losing part of the header line is the only legal
                // construction failure for this input.
                prop_assert!(cut < header_len, "rejected with full header: {e}");
                prop_assert!(matches!(e, ReadError::MissingHeader));
            }
            Ok(mut reader) => {
                let items = drain(&mut reader);
                // Complete lines survive; only a partial trailing line may
                // error, and it must carry the journal's final line number.
                let whole_lines = cut_bytes.iter().filter(|&&b| b == b'\n').count();
                let has_partial_tail = cut > 0 && cut_bytes[cut - 1] != b'\n';
                for (i, item) in items.iter().enumerate() {
                    match item {
                        Ok(_) => {}
                        Err(ReadError::BadLine { line_no, .. }) => {
                            prop_assert!(has_partial_tail, "complete lines must parse");
                            prop_assert_eq!(i, items.len() - 1, "only the tail may fail");
                            prop_assert_eq!(*line_no, whole_lines + 1);
                        }
                        Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
                    }
                }
            }
        }
    }

    /// Any schema outside the supported 1..=JOURNAL_SCHEMA range is
    /// refused up front, echoing the version it found.
    #[test]
    fn wrong_schema_is_refused(
        schema in 0u64..50,
        lines in proptest::collection::vec(valid_line(), 0..5),
    ) {
        let bytes = journal(schema, &lines);
        let result = JournalReader::new(BufReader::new(bytes.as_slice()));
        if (1..=mp2p_trace::JOURNAL_SCHEMA).contains(&schema) {
            prop_assert!(result.is_ok());
        } else {
            match result {
                Err(ReadError::SchemaMismatch { found }) => prop_assert_eq!(found, schema),
                other => prop_assert!(false, "expected SchemaMismatch, got {:?}", other.err()),
            }
        }
    }

    /// A line of invalid UTF-8 mid-journal yields a `BadLine` carrying
    /// exactly that line's number; the lines around it still parse.
    #[test]
    fn invalid_utf8_is_a_bad_line_not_a_panic(
        before in proptest::collection::vec(valid_line(), 0..10),
        after in proptest::collection::vec(valid_line(), 0..10),
        garbage in proptest::collection::vec(0x80u8..0xc0, 1..16),
    ) {
        // Continuation bytes with no lead byte are never valid UTF-8.
        let mut bytes = journal(1, &before);
        bytes.extend_from_slice(&garbage);
        bytes.push(b'\n');
        for line in &after {
            bytes.extend_from_slice(line.as_bytes());
            bytes.push(b'\n');
        }
        let mut reader = JournalReader::new(BufReader::new(bytes.as_slice())).unwrap();
        let items = drain(&mut reader);
        prop_assert_eq!(items.len(), before.len() + 1 + after.len());
        for (i, item) in items.iter().enumerate() {
            if i == before.len() {
                match item {
                    Err(ReadError::BadLine { line_no, .. }) => {
                        // Header is line 1, so the garbage sits at +2.
                        prop_assert_eq!(*line_no, before.len() + 2);
                    }
                    other => prop_assert!(false, "expected BadLine, got {other:?}"),
                }
            } else {
                prop_assert!(item.is_ok(), "spillover at {}: {:?}", i, item.as_ref().err());
            }
        }
    }

    /// Flipping one byte of a valid journal body never panics, and any
    /// resulting error points at the mutated line.
    #[test]
    fn single_byte_corruption_never_panics(
        lines in proptest::collection::vec(valid_line(), 1..10),
        pos_frac in 0.0f64..1.0,
        replacement in 0u8..=255,
    ) {
        let mut bytes = journal(1, &lines);
        let body_start = header(1).len() + 1;
        let pos = body_start
            + (((bytes.len() - body_start) as f64) * pos_frac) as usize;
        let pos = pos.min(bytes.len() - 1);
        let victim_line = 2 + bytes[body_start..pos].iter().filter(|&&b| b == b'\n').count();
        bytes[pos] = replacement;
        let mut reader = JournalReader::new(BufReader::new(bytes.as_slice())).unwrap();
        for item in drain(&mut reader) {
            match item {
                Ok(_) => {}
                Err(ReadError::BadLine { line_no, .. }) => {
                    // Mutating a byte to '\n' splits the line in two, so
                    // later fragments may fail too; never *earlier* ones.
                    prop_assert!(line_no >= victim_line, "error before the mutation");
                }
                Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
            }
        }
    }

    /// Completely arbitrary bytes: constructing and draining the reader
    /// must not panic, whatever comes back.
    #[test]
    fn arbitrary_bytes_never_panic(input in proptest::collection::vec(0u8..=255, 0..512)) {
        if let Ok(mut reader) = JournalReader::new(BufReader::new(input.as_slice())) {
            for _ in drain(&mut reader) {}
        }
    }
}
