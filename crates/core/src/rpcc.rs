//! The RPCC protocol (Section 4): relay-peer based cache consistency.
//!
//! One [`Rpcc`] instance per node plays all three roles of Fig. 4:
//!
//! * **Source host** for the node's own item — Fig. 6(b): periodic
//!   `INVALIDATION` floods (TTL-limited), batched `UPDATE` pushes to the
//!   relay table, `GET_NEW`/`APPLY`/`CANCEL` handling.
//! * **Relay peer** for approved cached items — Fig. 6(c): freshness via
//!   `TTR`, poll answering (or holding until the next invalidation),
//!   missed-update resynchronisation via `GET_NEW`.
//! * **Cache peer** for the rest of the cache — Fig. 6(d): weak/Δ/strong
//!   query handling (Section 4.4), expanding-ring `POLL`s, candidacy and
//!   promotion per the Fig. 5 state machine.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use mp2p_cache::Version;
use mp2p_sim::{ItemId, NodeId, SimTime};
use mp2p_trace::{RelayTransitionKind, ServedBy, SpanPhase};

use crate::adaptive::AdaptiveTuner;
use crate::coefficients::Coefficients;
use crate::config::ProtocolConfig;
use crate::level::ConsistencyLevel;
use crate::msg::ProtoMsg;
use crate::protocol::{Ctx, DegradationKind, Protocol, QueryId, Timer};
use crate::recovery::{RecoveryAction, RetransmitQueue, SeqTracker, VersionDigest};

/// The node-level position in the Fig. 5 state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayRole {
    /// Ordinary cache node.
    CachePeer,
    /// Qualifies per Eq. 4.2.8, not yet approved for any item.
    Candidate,
    /// Approved relay peer for at least one item.
    Relay,
}

#[derive(Debug, Clone)]
struct RelayState {
    /// The copy is authoritatively fresh until this instant (`TTR_d`).
    ttr_expiry: SimTime,
    /// POLLs that arrived while stale, waiting for the next
    /// INVALIDATION/UPDATE (Fig. 6(c) line 16).
    held_polls: Vec<HeldPoll>,
    /// True while a `GET_NEW` is outstanding.
    awaiting_get_new: bool,
}

#[derive(Debug, Clone, Copy)]
struct HeldPoll {
    from: NodeId,
    version: Version,
    held_at: SimTime,
    /// Span tag of the held poll, echoed into the eventual ack.
    span: Option<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PendingKind {
    /// Waiting for a POLL_ACK.
    Poll,
    /// Waiting for a FETCH_REPLY (cache-miss path).
    Fetch,
}

#[derive(Debug, Clone, Copy)]
struct PendingQuery {
    item: ItemId,
    kind: PendingKind,
    attempt: u8,
}

/// The RPCC protocol state of one node. See the module docs.
#[derive(Debug, Clone)]
pub struct Rpcc {
    /// Whether this node's own item participates (false for non-source
    /// nodes in the single-item Fig. 9 scenario).
    publishes: bool,
    /// Source role: the relay-peer table for the own item (`RP_d`).
    relay_table: BTreeSet<NodeId>,
    /// Source role: did the master copy change since the last TTN tick?
    updated_since_inv: bool,
    /// Node-level candidacy (Fig. 5).
    candidate: bool,
    /// Consecutive coefficient ticks that failed Eq. 4.2.8.
    failing_ticks: u8,
    coeffs: Coefficients,
    /// Relay role, per approved item.
    relay: BTreeMap<ItemId, RelayState>,
    /// Cache role: `TTP` expiry per cached item.
    ttp_expiry: HashMap<ItemId, SimTime>,
    /// Latest master version learnt per item (from INVALIDATION/acks).
    last_seen_ver: HashMap<ItemId, Version>,
    /// The nearest known answerer per item ("find the nearest relay
    /// peer", Section 4.1): first polls go unicast to it; a miss falls
    /// back to the expanding-ring flood.
    known_relay: HashMap<ItemId, NodeId>,
    /// Open local queries awaiting network answers.
    pending: HashMap<QueryId, PendingQuery>,
    /// APPLYs sent and not yet acknowledged (item → when), to rate-limit
    /// re-application.
    applied: HashMap<ItemId, SimTime>,
    /// Consecutive unacknowledged APPLYs per item, driving the hardened
    /// re-APPLY backoff (empty when `retry_backoff == 1.0`).
    apply_attempts: HashMap<ItemId, u8>,
    /// Adaptive push/pull frequency machinery (extension, future work
    /// §6 item 1); `None` reproduces the paper.
    tuner: Option<AdaptiveTuner>,
    /// Recovery: bounded retransmit queue for acknowledged UPDATE
    /// delivery (source role). Also the sequence allocator for
    /// INVALIDATION floods, so every stamped frame is totally ordered
    /// per source.
    retx: RetransmitQueue,
    /// Recovery: highest UPDATE seq seen per (peer, item) — makes
    /// delivery idempotent under frame duplication and retransmits.
    seen_upd: SeqTracker,
    /// Recovery: highest INVALIDATION seq seen per (peer, item).
    /// Tracked separately from UPDATEs: the two ride different paths
    /// (unicast vs flood) and may arrive out of allocation order.
    seen_inv: SeqTracker,
}

impl Rpcc {
    /// Creates the protocol state for one node.
    ///
    /// `publishes` controls whether the node runs the source role for its
    /// own item (true in the paper's main scenarios; false for all but
    /// one node in the Fig. 9 single-item scenario).
    pub fn new(cfg: &ProtocolConfig, publishes: bool) -> Self {
        Rpcc {
            publishes,
            relay_table: BTreeSet::new(),
            updated_since_inv: false,
            candidate: false,
            failing_ticks: 0,
            coeffs: Coefficients::new(cfg.omega),
            relay: BTreeMap::new(),
            ttp_expiry: HashMap::new(),
            last_seen_ver: HashMap::new(),
            known_relay: HashMap::new(),
            pending: HashMap::new(),
            applied: HashMap::new(),
            apply_attempts: HashMap::new(),
            tuner: cfg.adaptive.then(|| AdaptiveTuner::new(cfg.adaptive_span)),
            retx: RetransmitQueue::new(cfg.recovery.retx_cap),
            seen_upd: SeqTracker::new(),
            seen_inv: SeqTracker::new(),
        }
    }

    /// The adaptive tuner, if the extension is enabled (for tests and
    /// gauges).
    pub fn tuner(&self) -> Option<&AdaptiveTuner> {
        self.tuner.as_ref()
    }

    /// The node's Fig. 5 role.
    pub fn role(&self) -> RelayRole {
        if !self.relay.is_empty() {
            RelayRole::Relay
        } else if self.candidate {
            RelayRole::Candidate
        } else {
            RelayRole::CachePeer
        }
    }

    /// The coefficients (exposed for tests and gauges).
    pub fn coefficients(&self) -> &Coefficients {
        &self.coeffs
    }

    /// Size of the source-side relay table for this node's own item.
    pub fn relay_table_len(&self) -> usize {
        self.relay_table.len()
    }

    /// True if this node is an approved relay for `item`.
    pub fn is_relay_for(&self, item: ItemId) -> bool {
        self.relay.contains_key(&item)
    }

    fn ttr_fresh(&self, item: ItemId, now: SimTime) -> bool {
        matches!(self.relay.get(&item), Some(st) if st.ttr_expiry > now)
    }

    /// The relay serving lease granted by a freshness confirmation.
    ///
    /// Table 1 sets `TTR` (1.5 min) *below* the invalidation period `TTN`
    /// (2 min). Read literally as a serving lease that would forbid relays
    /// from answering for 25% of every cycle, contradicting the latency
    /// and traffic behaviour of Figs. 8/9 — so `TTR` is interpreted as the
    /// relay's tolerance for *missing* reports, and the lease runs to the
    /// next expected report (plus flood-jitter slack) or `TTR`, whichever
    /// is longer (DESIGN.md §5).
    fn relay_lease(cfg: &ProtocolConfig) -> mp2p_sim::SimDuration {
        cfg.ttr.max(cfg.ttn + mp2p_sim::SimDuration::from_secs(5))
    }

    fn ttp_fresh(&self, item: ItemId, now: SimTime) -> bool {
        matches!(self.ttp_expiry.get(&item), Some(&t) if t > now)
    }

    fn renew_ttp(&mut self, ctx: &Ctx<'_>, item: ItemId) {
        let lease = match &self.tuner {
            Some(tuner) => tuner.effective_ttp(item, ctx.cfg.ttp),
            None => ctx.cfg.ttp,
        };
        self.ttp_expiry.insert(item, ctx.now + lease);
    }

    /// Starts (or widens) a POLL for an open query. The first attempt
    /// goes unicast to the last known answerer; misses and retries fall
    /// back to the expanding-ring flood.
    fn start_poll(&mut self, ctx: &mut Ctx<'_>, query: QueryId, item: ItemId, attempt: u8) {
        let version = ctx
            .cache
            .peek(item)
            .map(|e| e.version)
            .unwrap_or(Version::INITIAL);
        let span = Some(query.0);
        match self.known_relay.get(&item) {
            Some(&relay) if attempt == 1 => {
                ctx.phase(query, item, SpanPhase::PollUnicast, attempt);
                ctx.send(
                    relay,
                    ProtoMsg::Poll {
                        item,
                        version,
                        span,
                    },
                );
            }
            _ => {
                self.known_relay.remove(&item);
                let ttl = ctx.cfg.poll_ttl_for_attempt(attempt);
                ctx.phase(query, item, SpanPhase::PollFlood, attempt);
                ctx.flood(
                    ttl,
                    ProtoMsg::Poll {
                        item,
                        version,
                        span,
                    },
                );
            }
        }
        self.pending.insert(
            query,
            PendingQuery {
                item,
                kind: PendingKind::Poll,
                attempt,
            },
        );
        let delay = ctx.cfg.retry_delay(ctx.cfg.poll_timeout, attempt, ctx.rng);
        ctx.set_timer(delay, Timer::PollRetry { query, attempt });
    }

    /// Starts a cache-miss fetch for an open query.
    fn start_fetch(&mut self, ctx: &mut Ctx<'_>, query: QueryId, item: ItemId, attempt: u8) {
        ctx.phase(query, item, SpanPhase::Fetch, attempt);
        ctx.send(
            item.source_host(),
            ProtoMsg::Fetch {
                item,
                span: Some(query.0),
            },
        );
        self.pending.insert(
            query,
            PendingQuery {
                item,
                kind: PendingKind::Fetch,
                attempt,
            },
        );
        let delay = ctx.cfg.retry_delay(ctx.cfg.fetch_timeout, attempt, ctx.rng);
        ctx.set_timer(delay, Timer::PollRetry { query, attempt });
    }

    /// Answers every open query on `item` with the (just-validated)
    /// cached version, attributing the answer to `served_by`.
    fn answer_pending_for(&mut self, ctx: &mut Ctx<'_>, item: ItemId, served_by: ServedBy) {
        let version = match ctx.cache.peek(item) {
            Some(e) => e.version,
            None => return,
        };
        let mut queries: Vec<QueryId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.item == item)
            .map(|(&q, _)| q)
            .collect();
        // HashMap iteration order is process-random: sort for determinism.
        queries.sort_unstable();
        for q in queries {
            self.pending.remove(&q);
            ctx.answer(q, version, served_by);
        }
    }

    /// Relay-side: answer one POLL against the local (fresh) copy,
    /// echoing the poll's span tag into the ack.
    fn answer_poll(
        &self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        item: ItemId,
        their_version: Version,
        span: Option<u64>,
    ) {
        let Some(entry) = ctx.cache.peek(item) else {
            return;
        };
        if their_version >= entry.version {
            ctx.send(
                from,
                ProtoMsg::PollAckA {
                    item,
                    version: their_version,
                    span,
                },
            );
        } else {
            ctx.send(
                from,
                ProtoMsg::PollAckB {
                    item,
                    version: entry.version,
                    content_bytes: entry.size_bytes,
                    span,
                },
            );
        }
    }

    /// Relay-side: a freshness proof arrived; drain held polls.
    fn drain_held_polls(&mut self, ctx: &mut Ctx<'_>, item: ItemId) {
        let held = match self.relay.get_mut(&item) {
            Some(st) => std::mem::take(&mut st.held_polls),
            None => return,
        };
        for poll in held {
            self.answer_poll(ctx, poll.from, item, poll.version, poll.span);
        }
    }

    /// Source-side TTN tick (Fig. 6(b) lines 1–8).
    fn source_tick(&mut self, ctx: &mut Ctx<'_>) {
        if self.publishes && ctx.connected {
            let item = ctx.own_item.id();
            let version = ctx.own_item.version();
            let acked = ctx.cfg.recovery.acked_delivery;
            if self.updated_since_inv {
                let peers: Vec<NodeId> = self.relay_table.iter().copied().collect();
                for rp in peers {
                    let seq = acked.then(|| {
                        self.retx.enqueue(
                            rp,
                            item,
                            version,
                            ctx.now + ctx.cfg.recovery.retx_timeout,
                        )
                    });
                    ctx.send(
                        rp,
                        ProtoMsg::Update {
                            item,
                            version,
                            content_bytes: ctx.own_item.size_bytes(),
                            seq,
                        },
                    );
                }
                self.updated_since_inv = false;
            }
            // INVALIDATION floods are stamped but never retransmitted:
            // the seq buys receiver-side dedup under frame duplication,
            // and the next TTN tick is the natural retry.
            let seq = acked.then(|| self.retx.alloc_seq());
            ctx.flood(
                ctx.cfg.invalidation_ttl,
                ProtoMsg::Invalidation { item, version, seq },
            );
        }
        // Adaptive push (extension): report on the item's own update
        // timescale instead of the fixed TTN.
        let period = match &self.tuner {
            Some(tuner) => tuner.effective_ttn(ctx.cfg.ttn),
            None => ctx.cfg.ttn,
        };
        ctx.set_timer(period, Timer::Ttn);
    }

    fn note_master_version(&mut self, item: ItemId, version: Version) {
        let known = self.last_seen_ver.entry(item).or_insert(Version::INITIAL);
        if version > *known {
            *known = version;
        }
    }

    /// Handles INVALIDATION (Fig. 6(c) lines 1–8 for relays, Section 4.3
    /// for candidates).
    fn on_invalidation(&mut self, ctx: &mut Ctx<'_>, item: ItemId, version: Version) {
        self.note_master_version(item, version);
        let source = item.source_host();
        if self.relay.contains_key(&item) {
            let local = ctx
                .cache
                .peek(item)
                .map(|e| e.version)
                .unwrap_or(Version::INITIAL);
            if local < version {
                // Missed an update while disconnected: resynchronise.
                let st = self.relay.get_mut(&item).expect("checked above");
                if !st.awaiting_get_new {
                    st.awaiting_get_new = true;
                    ctx.send(source, ProtoMsg::GetNew { item });
                    ctx.transition(item, RelayTransitionKind::ResyncStarted);
                }
            } else {
                let st = self.relay.get_mut(&item).expect("checked above");
                st.ttr_expiry = ctx.now + Self::relay_lease(ctx.cfg);
                self.drain_held_polls(ctx, item);
            }
            return;
        }
        // Candidate hearing an invalidation for a cached item applies for
        // promotion (Section 4.3).
        if self.candidate && ctx.cache.contains(item) {
            // Hardening: each unacknowledged APPLY widens the re-apply
            // gap (with the default backoff of 1.0 the gap stays exactly
            // TTN and no attempt state accrues — the paper's behaviour).
            let attempts = self.apply_attempts.get(&item).copied().unwrap_or(0);
            let gap = ctx
                .cfg
                .retry_delay(ctx.cfg.ttn, attempts.saturating_add(1), ctx.rng);
            let reapply_ok = match self.applied.get(&item) {
                Some(&when) => ctx.now.saturating_since(when) >= gap,
                None => true,
            };
            if reapply_ok {
                self.applied.insert(item, ctx.now);
                if ctx.cfg.retry_backoff > 1.0 {
                    self.apply_attempts.insert(item, attempts.saturating_add(1));
                }
                ctx.send(source, ProtoMsg::Apply { item });
                ctx.transition(item, RelayTransitionKind::ApplySent);
            }
        }
    }

    /// Handles UPDATE (Fig. 6(c) lines 23–25 and Fig. 6(d) lines 27–36).
    fn on_update(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        item: ItemId,
        version: Version,
        content: u32,
    ) {
        self.note_master_version(item, version);
        if self.relay.contains_key(&item) {
            let st = self.relay.get_mut(&item).expect("checked above");
            st.ttr_expiry = ctx.now + Self::relay_lease(ctx.cfg);
            if std::mem::take(&mut st.awaiting_get_new) {
                ctx.transition(item, RelayTransitionKind::ResyncCompleted);
            }
            refresh_or_insert(ctx, item, version, content);
            self.drain_held_polls(ctx, item);
        } else if self.candidate {
            // We are a candidate that missed its APPLY_ACK: the UPDATE
            // proves the source considers us a relay (Fig. 6(d) 28–31).
            self.applied.remove(&item);
            self.apply_attempts.remove(&item);
            refresh_or_insert(ctx, item, version, content);
            self.relay.insert(
                item,
                RelayState {
                    ttr_expiry: ctx.now + Self::relay_lease(ctx.cfg),
                    held_polls: Vec::new(),
                    awaiting_get_new: false,
                },
            );
            ctx.transition(item, RelayTransitionKind::Promoted);
        } else {
            // Plain cache peer: the owner missed our CANCEL (Fig. 6(d)
            // 32–35): use the data, tell it again.
            refresh_or_insert(ctx, item, version, content);
            self.renew_ttp(ctx, item);
            ctx.send(from, ProtoMsg::Cancel { item });
        }
    }

    /// Handles POLL (Fig. 6(c) lines 9–18, plus the source answering for
    /// its own item).
    fn on_poll(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        item: ItemId,
        their_version: Version,
        span: Option<u64>,
    ) {
        if from == ctx.me {
            return; // own flood heard back; floods do not self-deliver, but guard anyway
        }
        if self.publishes && item == ctx.own_item.id() {
            self.coeffs.note_access();
            let master = ctx.own_item.version();
            if their_version >= master {
                ctx.send(
                    from,
                    ProtoMsg::PollAckA {
                        item,
                        version: their_version,
                        span,
                    },
                );
            } else {
                ctx.send(
                    from,
                    ProtoMsg::PollAckB {
                        item,
                        version: master,
                        content_bytes: ctx.own_item.size_bytes(),
                        span,
                    },
                );
            }
            return;
        }
        if self.relay.contains_key(&item) {
            self.coeffs.note_access();
            if self.ttr_fresh(item, ctx.now) {
                self.answer_poll(ctx, from, item, their_version, span);
            } else if let Some(st) = self.relay.get_mut(&item) {
                // Stale TTR: hold the poll (Fig. 6(c) 16). Rather than
                // idle until the next INVALIDATION, resynchronise with the
                // source right away via GET_NEW — the message the protocol
                // already uses for relay resync (DESIGN.md §5 documents
                // this as the poll-triggered-resync interpretation).
                // One held slot per poller: a retry replaces the original.
                st.held_polls.retain(|p| p.from != from);
                st.held_polls.push(HeldPoll {
                    from,
                    version: their_version,
                    held_at: ctx.now,
                    span,
                });
                if !st.awaiting_get_new {
                    st.awaiting_get_new = true;
                    ctx.send(item.source_host(), ProtoMsg::GetNew { item });
                    ctx.transition(item, RelayTransitionKind::ResyncStarted);
                }
            }
        }
        // Plain cache peers ignore other peers' polls.
    }

    fn on_poll_ack(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: NodeId,
        item: ItemId,
        version: Version,
        content: Option<u32>,
    ) {
        if let Some(tuner) = &mut self.tuner {
            // Adaptive pull (extension): confirmations stretch the lease,
            // changes collapse it.
            match content {
                Some(_) => tuner.note_changed(item),
                None => tuner.note_confirmed(item),
            }
        }
        if let Some(content) = content {
            refresh_or_insert(ctx, item, version, content);
        }
        self.note_master_version(item, version);
        self.renew_ttp(ctx, item);
        // Sticky nearest-relay choice: switching on every answer would
        // churn routes; failures clear the entry instead.
        self.known_relay.entry(item).or_insert(from);
        let served_by = if from == item.source_host() {
            ServedBy::Source
        } else {
            ServedBy::Relay
        };
        self.answer_pending_for(ctx, item, served_by);
    }

    /// Promotion on APPLY_ACK (Fig. 6(d) lines 24–26).
    fn on_apply_ack(&mut self, ctx: &mut Ctx<'_>, item: ItemId, version: Version) {
        self.applied.remove(&item);
        self.apply_attempts.remove(&item);
        self.note_master_version(item, version);
        if !ctx.cache.contains(item) {
            return; // cached copy evicted meanwhile; let the table age out
        }
        let local = ctx
            .cache
            .peek(item)
            .map(|e| e.version)
            .unwrap_or(Version::INITIAL);
        let mut st = RelayState {
            ttr_expiry: ctx.now + Self::relay_lease(ctx.cfg),
            held_polls: Vec::new(),
            awaiting_get_new: false,
        };
        if local < version {
            st.ttr_expiry = ctx.now; // stale until SEND_NEW arrives
            st.awaiting_get_new = true;
            ctx.send(item.source_host(), ProtoMsg::GetNew { item });
            ctx.transition(item, RelayTransitionKind::ResyncStarted);
        }
        self.relay.insert(item, st);
        ctx.transition(item, RelayTransitionKind::Promoted);
    }

    /// Demotes this node from all relay roles (coefficient failure;
    /// Fig. 5 "relay peer → cache node" edge).
    fn demote(&mut self, ctx: &mut Ctx<'_>) {
        let items: Vec<ItemId> = self.relay.keys().copied().collect();
        for item in items {
            if let Some(st) = self.relay.remove(&item) {
                // Held polls cannot be answered honestly any more; the
                // pollers' retry timers recover them.
                drop(st);
            }
            ctx.send(item.source_host(), ProtoMsg::Cancel { item });
            ctx.transition(item, RelayTransitionKind::Demoted);
            // The copy stays cached; give it a normal TTP lease from now.
            self.renew_ttp(ctx, item);
        }
        self.applied.clear();
        self.apply_attempts.clear();
    }

    /// Hardening: demote relay items whose lease ran out — TTR expired
    /// more than `relay_orphan_grace` ago with no source contact since.
    /// The peer stops serving data it cannot verify and tells the source
    /// with a best-effort CANCEL (which may itself be lost; the source's
    /// own MAC-failure pruning is the backstop).
    fn expire_orphaned_relays(&mut self, ctx: &mut Ctx<'_>) {
        let Some(grace) = ctx.cfg.relay_orphan_grace else {
            return;
        };
        let expired: Vec<ItemId> = self
            .relay
            .iter()
            .filter(|(_, st)| ctx.now.saturating_since(st.ttr_expiry) > grace)
            .map(|(&item, _)| item)
            .collect();
        for item in expired {
            self.relay.remove(&item);
            ctx.send(item.source_host(), ProtoMsg::Cancel { item });
            ctx.transition(item, RelayTransitionKind::Demoted);
            if ctx.cfg.recovery.handover {
                // Recovery: instead of letting the coverage hole stand,
                // ask the driver to elect a reachable cached neighbour
                // and hand the relay role over (DESIGN.md §12). The
                // degradation only lands if no successor exists.
                let version = ctx
                    .cache
                    .peek(item)
                    .map(|e| e.version)
                    .unwrap_or(Version::INITIAL);
                ctx.recovery(RecoveryAction::HandoverRequest { item, version });
            } else {
                ctx.degraded(item, None, DegradationKind::RelayLeaseExpired);
            }
            // The copy stays cached as ordinary (possibly stale) data;
            // it gets no fresh TTP lease because nothing validated it.
        }
    }

    /// The freshest version this node can vouch for: its own master
    /// copy, the cached copy, or the latest advertisement it heard.
    fn best_known_version(&self, ctx: &Ctx<'_>, item: ItemId) -> Version {
        let mut best = if self.publishes && item == ctx.own_item.id() {
            ctx.own_item.version()
        } else {
            Version::INITIAL
        };
        if let Some(e) = ctx.cache.peek(item) {
            if e.version > best {
                best = e.version;
            }
        }
        if let Some(&v) = self.last_seen_ver.get(&item) {
            if v > best {
                best = v;
            }
        }
        best
    }

    /// Rejoin resync (recovery layer): flood a compact version digest of
    /// everything held so nearby peers can flag stale copies *before*
    /// they get served to local queries.
    fn start_resync(&mut self, ctx: &mut Ctx<'_>) {
        let mut entries: Vec<(ItemId, Version)> =
            ctx.cache.iter().map(|(id, e)| (id, e.version)).collect();
        if self.publishes {
            entries.push((ctx.own_item.id(), ctx.own_item.version()));
        }
        if entries.is_empty() {
            return;
        }
        // HashMap iteration order is process-random: sort for determinism.
        entries.sort_unstable_by_key(|&(id, _)| id);
        let items = entries.len() as u32;
        for digest in VersionDigest::chunk(&entries) {
            ctx.flood(
                ctx.cfg.recovery.resync_ttl,
                ProtoMsg::ResyncDigest { digest },
            );
        }
        ctx.recovery(RecoveryAction::ResyncStart { items });
    }

    /// Neighbour side of a rejoin resync: answer with the subset of the
    /// digest this node knows a strictly newer version of.
    fn on_resync_digest(&mut self, ctx: &mut Ctx<'_>, from: NodeId, digest: VersionDigest) {
        if !ctx.cfg.recovery.resync {
            return;
        }
        let mut newer: Vec<(ItemId, Version)> = Vec::new();
        for &(item, version) in digest.entries() {
            self.note_master_version(item, version);
            let known = self.best_known_version(ctx, item);
            if known > version {
                newer.push((item, known));
            }
        }
        for chunk in VersionDigest::chunk(&newer) {
            ctx.send(from, ProtoMsg::ResyncAck { digest: chunk });
        }
    }

    /// Rejoiner side of a resync answer: refresh or drop every copy a
    /// neighbour proved stale, so it is never served after the rejoin.
    fn on_resync_ack(&mut self, ctx: &mut Ctx<'_>, digest: VersionDigest) {
        if !ctx.cfg.recovery.resync {
            return;
        }
        let mut stale = 0u32;
        for &(item, version) in digest.entries() {
            if item == ctx.own_item.id() {
                continue; // nothing outranks the master copy
            }
            self.note_master_version(item, version);
            let local = match ctx.cache.peek(item) {
                Some(e) => e.version,
                None => continue,
            };
            if local >= version {
                continue;
            }
            stale += 1;
            if let Some(st) = self.relay.get_mut(&item) {
                // Relay copies refresh through the protocol's own resync
                // channel instead of being dropped.
                st.ttr_expiry = ctx.now;
                if !st.awaiting_get_new {
                    st.awaiting_get_new = true;
                    ctx.send(item.source_host(), ProtoMsg::GetNew { item });
                    ctx.transition(item, RelayTransitionKind::ResyncStarted);
                }
            } else {
                // A plain stale copy is dropped rather than served; the
                // next query re-fetches fresh data on the miss path.
                ctx.cache.remove(item);
                self.ttp_expiry.remove(&item);
                self.known_relay.remove(&item);
            }
        }
        ctx.recovery(RecoveryAction::ResyncDone { stale });
    }

    /// An expiring relay handed its role to this node (driver-elected).
    /// Adopt the item with a fresh lease, resyncing first if the local
    /// copy lags the version the old relay vouched for.
    fn on_handover(&mut self, ctx: &mut Ctx<'_>, item: ItemId, version: Version) {
        if !ctx.cfg.recovery.handover || !ctx.connected {
            return;
        }
        if self.relay.contains_key(&item) || !ctx.cache.contains(item) {
            return;
        }
        self.note_master_version(item, version);
        let local = ctx
            .cache
            .peek(item)
            .map(|e| e.version)
            .unwrap_or(Version::INITIAL);
        let mut st = RelayState {
            ttr_expiry: ctx.now + Self::relay_lease(ctx.cfg),
            held_polls: Vec::new(),
            awaiting_get_new: false,
        };
        if local < version {
            st.ttr_expiry = ctx.now; // stale until SEND_NEW arrives
            st.awaiting_get_new = true;
            ctx.send(item.source_host(), ProtoMsg::GetNew { item });
            ctx.transition(item, RelayTransitionKind::ResyncStarted);
        }
        self.relay.insert(item, st);
        ctx.transition(item, RelayTransitionKind::Promoted);
        // Tell the source, so its relay table points at the successor.
        ctx.send(item.source_host(), ProtoMsg::Apply { item });
    }

    /// Source-side retransmit sweep: re-push unacknowledged UPDATEs with
    /// deterministic-jitter backoff, giving up after `retx_attempts`.
    fn retx_sweep(&mut self, ctx: &mut Ctx<'_>) {
        for entry in self.retx.due_entries(ctx.now) {
            if entry.attempt >= ctx.cfg.recovery.retx_attempts {
                self.retx.drop_seq(entry.seq);
                continue;
            }
            let attempt = entry.attempt + 1;
            let delay = ctx.recovery_delay(ctx.cfg.recovery.retx_timeout, attempt);
            self.retx.bump(entry.seq, ctx.now + delay);
            if ctx.connected {
                ctx.send(
                    entry.dest,
                    ProtoMsg::Update {
                        item: entry.item,
                        version: entry.version,
                        content_bytes: ctx.own_item.size_bytes(),
                        seq: Some(entry.seq),
                    },
                );
                ctx.recovery(RecoveryAction::Retransmit {
                    dest: entry.dest,
                    item: entry.item,
                    seq: entry.seq,
                    attempt,
                });
            }
        }
    }
}

/// Refreshes `item` in the cache, inserting it if missing.
fn refresh_or_insert(ctx: &mut Ctx<'_>, item: ItemId, version: Version, content: u32) {
    if !ctx.cache.refresh(item, version, ctx.now) {
        ctx.cache.insert(item, version, content, ctx.now);
    }
    ctx.note_copy(item, version);
}

impl Protocol for Rpcc {
    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        // Pre-warmed cache copies carry a fresh TTP lease.
        let items: Vec<ItemId> = ctx.cache.iter().map(|(id, _)| id).collect();
        for item in items {
            self.renew_ttp(ctx, item);
        }
        if self.publishes {
            // Stagger TTN across sources to avoid synchronised flood storms.
            let offset = mp2p_sim::SimDuration::from_millis(
                ctx.rng.uniform_u64(ctx.cfg.ttn.as_millis().max(1)),
            );
            ctx.set_timer(offset, Timer::Ttn);
        }
        ctx.set_timer(ctx.cfg.relay_poll_hold, Timer::RelayHoldSweep);
        if ctx.cfg.recovery.acked_delivery && self.publishes {
            ctx.set_timer(ctx.cfg.recovery.retx_timeout, Timer::RetxSweep);
        }
    }

    fn on_query(
        &mut self,
        ctx: &mut Ctx<'_>,
        query: QueryId,
        item: ItemId,
        level: ConsistencyLevel,
    ) {
        self.coeffs.note_access();
        if item == ctx.own_item.id() {
            let version = ctx.own_item.version();
            ctx.answer(query, version, ServedBy::Source);
            return;
        }
        let Some(entry) = ctx.cache.touch(item).copied() else {
            self.start_fetch(ctx, query, item, 1);
            return;
        };
        // A relay's own copy is authoritative while TTR is fresh.
        if self.ttr_fresh(item, ctx.now) {
            ctx.answer(query, entry.version, ServedBy::Relay);
            return;
        }
        match level {
            ConsistencyLevel::Weak => ctx.answer(query, entry.version, ServedBy::Cache),
            ConsistencyLevel::Delta if self.ttp_fresh(item, ctx.now) => {
                ctx.answer(query, entry.version, ServedBy::Cache);
            }
            ConsistencyLevel::Delta | ConsistencyLevel::Strong => {
                self.start_poll(ctx, query, item, 1);
            }
        }
    }

    fn on_source_update(&mut self, ctx: &mut Ctx<'_>) {
        self.updated_since_inv = true;
        if let Some(tuner) = &mut self.tuner {
            tuner.note_source_update(ctx.now);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: ProtoMsg) {
        // Cache/relay-role messages about this node's *own* item are
        // nonsense (we are its source); acting on them would create
        // self-addressed traffic. Source-role messages (GET_NEW, APPLY,
        // CANCEL, POLL, FETCH) legitimately concern the own item and pass.
        if msg.item() == ctx.own_item.id() {
            if let ProtoMsg::Invalidation { .. }
            | ProtoMsg::Update { .. }
            | ProtoMsg::SendNew { .. }
            | ProtoMsg::ApplyAck { .. }
            | ProtoMsg::PollAckA { .. }
            | ProtoMsg::PollAckB { .. }
            | ProtoMsg::FetchReply { .. }
            | ProtoMsg::Handover { .. } = msg
            {
                return;
            }
        }
        match msg {
            ProtoMsg::Invalidation { item, version, seq } => {
                if let Some(seq) = seq {
                    if !self.seen_inv.is_new(from, item, seq) {
                        return; // duplicated frame: idempotent drop
                    }
                }
                self.on_invalidation(ctx, item, version)
            }
            ProtoMsg::Update {
                item,
                version,
                content_bytes,
                seq,
            } => {
                if let Some(seq) = seq {
                    // Ack first — even for duplicates — so a lost
                    // DELIVERY_ACK cannot strand the source's
                    // retransmit entry until it exhausts its attempts.
                    ctx.send(from, ProtoMsg::DeliveryAck { item, seq });
                    if !self.seen_upd.is_new(from, item, seq) {
                        return;
                    }
                }
                self.on_update(ctx, from, item, version, content_bytes)
            }
            ProtoMsg::GetNew { item } => {
                if self.publishes && item == ctx.own_item.id() {
                    self.coeffs.note_access();
                    ctx.send(
                        from,
                        ProtoMsg::SendNew {
                            item,
                            version: ctx.own_item.version(),
                            content_bytes: ctx.own_item.size_bytes(),
                        },
                    );
                }
            }
            ProtoMsg::SendNew {
                item,
                version,
                content_bytes,
            } => {
                self.note_master_version(item, version);
                refresh_or_insert(ctx, item, version, content_bytes);
                if self.relay.contains_key(&item) {
                    let st = self.relay.get_mut(&item).expect("checked above");
                    st.ttr_expiry = ctx.now + Self::relay_lease(ctx.cfg);
                    if std::mem::take(&mut st.awaiting_get_new) {
                        ctx.transition(item, RelayTransitionKind::ResyncCompleted);
                    }
                    self.drain_held_polls(ctx, item);
                } else {
                    self.renew_ttp(ctx, item);
                }
            }
            ProtoMsg::Apply { item } => {
                if self.publishes && item == ctx.own_item.id() {
                    // Admission control (extension, future work §6 item 2):
                    // a full relay table rejects new applicants silently;
                    // the candidate re-applies at a later report.
                    let full = ctx.cfg.max_relays_per_item.is_some_and(|cap| {
                        self.relay_table.len() >= cap && !self.relay_table.contains(&from)
                    });
                    if !full {
                        self.relay_table.insert(from);
                        ctx.send(
                            from,
                            ProtoMsg::ApplyAck {
                                item,
                                version: ctx.own_item.version(),
                            },
                        );
                    }
                }
            }
            ProtoMsg::ApplyAck { item, version } => self.on_apply_ack(ctx, item, version),
            ProtoMsg::Cancel { item } => {
                if self.publishes && item == ctx.own_item.id() {
                    self.relay_table.remove(&from);
                }
            }
            ProtoMsg::Poll {
                item,
                version,
                span,
            } => self.on_poll(ctx, from, item, version, span),
            ProtoMsg::PollAckA { item, version, .. } => {
                self.on_poll_ack(ctx, from, item, version, None)
            }
            ProtoMsg::PollAckB {
                item,
                version,
                content_bytes,
                ..
            } => self.on_poll_ack(ctx, from, item, version, Some(content_bytes)),
            ProtoMsg::Fetch { item, span } => {
                if self.publishes && item == ctx.own_item.id() {
                    self.coeffs.note_access();
                    ctx.send(
                        from,
                        ProtoMsg::FetchReply {
                            item,
                            version: ctx.own_item.version(),
                            content_bytes: ctx.own_item.size_bytes(),
                            span,
                        },
                    );
                }
            }
            ProtoMsg::FetchReply {
                item,
                version,
                content_bytes,
                ..
            } => {
                self.note_master_version(item, version);
                refresh_or_insert(ctx, item, version, content_bytes);
                self.renew_ttp(ctx, item);
                self.answer_pending_for(ctx, item, ServedBy::Source);
            }
            ProtoMsg::ResyncDigest { digest } => self.on_resync_digest(ctx, from, digest),
            ProtoMsg::ResyncAck { digest } => self.on_resync_ack(ctx, digest),
            ProtoMsg::DeliveryAck { item: _, seq } => {
                if let Some(entry) = self.retx.ack(from, seq) {
                    ctx.recovery(RecoveryAction::AckReceived {
                        peer: from,
                        item: entry.item,
                        seq,
                    });
                }
            }
            ProtoMsg::Handover { item, version } => self.on_handover(ctx, item, version),
            // Replica writes are handled by the simulation driver before
            // they reach the protocol layer.
            ProtoMsg::WriteRequest { .. } | ProtoMsg::WriteAck { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: Timer) {
        match timer {
            Timer::Ttn => self.source_tick(ctx),
            Timer::PollRetry { query, attempt } => {
                let Some(pending) = self.pending.get(&query).copied() else {
                    return; // already answered
                };
                if attempt != pending.attempt {
                    return; // stale timer from an earlier attempt
                }
                if attempt >= ctx.cfg.poll_attempts {
                    // Hardening: before giving up, one last max-TTL flood
                    // aimed at reaching the source (or any relay) past
                    // whatever localized damage swallowed the ring polls.
                    if ctx.cfg.fallback_flood {
                        let version = ctx
                            .cache
                            .peek(pending.item)
                            .map(|e| e.version)
                            .unwrap_or(Version::INITIAL);
                        self.known_relay.remove(&pending.item);
                        ctx.phase(query, pending.item, SpanPhase::FallbackFlood, attempt);
                        ctx.flood(
                            ctx.cfg.broadcast_ttl,
                            ProtoMsg::Poll {
                                item: pending.item,
                                version,
                                span: Some(query.0),
                            },
                        );
                        ctx.degraded(pending.item, Some(query), DegradationKind::FallbackFlood);
                    }
                    // A relay may still be holding our poll until its next
                    // INVALIDATION; linger before giving up.
                    ctx.phase(query, pending.item, SpanPhase::Grace, 0);
                    ctx.set_timer(ctx.cfg.poll_grace, Timer::PollGrace { query });
                    return;
                }
                match pending.kind {
                    PendingKind::Poll => self.start_poll(ctx, query, pending.item, attempt + 1),
                    PendingKind::Fetch => self.start_fetch(ctx, query, pending.item, attempt + 1),
                }
            }
            Timer::PollGrace { query } => {
                if self.pending.remove(&query).is_some() {
                    ctx.fail(query);
                }
            }
            Timer::RelayHoldSweep => {
                let hold = ctx.cfg.relay_poll_hold;
                let now = ctx.now;
                for st in self.relay.values_mut() {
                    st.held_polls
                        .retain(|p| now.saturating_since(p.held_at) < hold);
                }
                self.expire_orphaned_relays(ctx);
                ctx.set_timer(hold, Timer::RelayHoldSweep);
            }
            Timer::RetxSweep => {
                self.retx_sweep(ctx);
                // Re-arms itself like TTN, so it survives nothing — a
                // crash wipes it with the rest of the protocol state and
                // on_init re-arms it on the rebuilt instance.
                ctx.set_timer(ctx.cfg.recovery.retx_timeout, Timer::RetxSweep);
            }
            Timer::PushWait { .. } => {}
        }
    }

    fn on_undeliverable(&mut self, ctx: &mut Ctx<'_>, dest: NodeId, msg: ProtoMsg) {
        match msg {
            // Source side: an unreachable relay peer leaves the table
            // (Section 4.5: "the destination peer of APPLY_ACK
            // unreachable ⇒ remove the peer").
            ProtoMsg::ApplyAck { .. } | ProtoMsg::Update { .. } | ProtoMsg::SendNew { .. } => {
                self.relay_table.remove(&dest);
                // Pending retransmits to an unreachable peer are moot.
                self.retx.drop_dest(dest);
            }
            ProtoMsg::GetNew { item } => {
                if let Some(st) = self.relay.get_mut(&item) {
                    st.awaiting_get_new = false; // retry at the next INVALIDATION
                }
            }
            ProtoMsg::Apply { item } => {
                self.applied.remove(&item);
            }
            ProtoMsg::Poll { item, .. } => {
                // Our remembered nearest relay is gone; re-discover by
                // flooding on the retry.
                self.known_relay.remove(&item);
            }
            ProtoMsg::Fetch { item, .. } => {
                let mut queries: Vec<QueryId> = self
                    .pending
                    .iter()
                    .filter(|(_, p)| p.item == item && p.kind == PendingKind::Fetch)
                    .map(|(&q, _)| q)
                    .collect();
                // HashMap iteration order is process-random: sort for determinism.
                queries.sort_unstable();
                for q in queries {
                    self.pending.remove(&q);
                    ctx.fail(q);
                }
            }
            _ => {}
        }
    }

    fn on_status_change(&mut self, ctx: &mut Ctx<'_>, up: bool) {
        self.coeffs.note_switch();
        if up && ctx.cfg.recovery.resync && ctx.connected {
            self.start_resync(ctx);
        }
    }

    fn on_coefficient_tick(&mut self, ctx: &mut Ctx<'_>, moved: bool) {
        self.coeffs.tick(moved, ctx.energy_fraction);
        if self.coeffs.qualifies(ctx.cfg) {
            self.failing_ticks = 0;
            self.candidate = true;
        } else {
            self.failing_ticks = self.failing_ticks.saturating_add(1);
            if self.failing_ticks >= ctx.cfg.demote_grace_ticks
                && (self.candidate || !self.relay.is_empty())
            {
                self.candidate = false;
                self.demote(ctx);
            }
        }
    }

    fn relay_item_count(&self) -> usize {
        self.relay.len()
    }

    fn is_candidate(&self) -> bool {
        self.candidate
    }

    fn retx_high_water(&self) -> usize {
        self.retx.high_water()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp2p_cache::{CacheStore, DataItem};
    use mp2p_sim::{SimDuration, SimRng};

    struct Fixture {
        cache: CacheStore,
        own: DataItem,
        rng: SimRng,
        cfg: ProtocolConfig,
        proto: Rpcc,
        now: SimTime,
    }

    impl Fixture {
        fn new(me: u32) -> Self {
            let cfg = ProtocolConfig::default();
            let mut cache = CacheStore::new(10);
            // Pre-warm a foreign item (D1 unless we are node 1).
            let foreign = if me == 1 {
                ItemId::new(2)
            } else {
                ItemId::new(1)
            };
            cache.insert(foreign, Version::INITIAL, 1_024, SimTime::ZERO);
            Fixture {
                cache,
                own: DataItem::new(ItemId::new(me), 1_024),
                rng: SimRng::from_seed(9, u64::from(me)),
                cfg,
                proto: Rpcc::new(&cfg, true),
                now: SimTime::ZERO,
                // `me` recorded via own item id
            }
        }

        fn ctx(&mut self) -> Ctx<'_> {
            Ctx::new(
                self.now,
                NodeId::new(self.own.id().index() as u32),
                &mut self.cache,
                &mut self.own,
                &mut self.rng,
                &self.cfg,
                1.0,
                true,
            )
        }

        fn run<F: FnOnce(&mut Rpcc, &mut Ctx<'_>)>(&mut self, f: F) -> Vec<crate::CtxOut> {
            let mut proto = std::mem::replace(&mut self.proto, Rpcc::new(&self.cfg, true));
            let mut ctx = self.ctx();
            f(&mut proto, &mut ctx);
            let out = ctx.take_outputs();
            self.proto = proto;
            out
        }

        /// Drives the node to candidate status via busy, stable periods.
        fn make_candidate(&mut self) {
            for _ in 0..5 {
                for _ in 0..10 {
                    self.proto.coeffs.note_access();
                }
                let out = self.run(|p, ctx| p.on_coefficient_tick(ctx, false));
                assert!(out.is_empty());
            }
            assert!(self.proto.is_candidate());
        }
    }

    fn sends_of(out: &[crate::CtxOut]) -> Vec<(NodeId, ProtoMsg)> {
        out.iter()
            .filter_map(|o| match o {
                crate::CtxOut::Send { to, msg } => Some((*to, *msg)),
                _ => None,
            })
            .collect()
    }

    fn answers_of(out: &[crate::CtxOut]) -> Vec<(QueryId, Version)> {
        out.iter()
            .filter_map(|o| match o {
                crate::CtxOut::Answer { query, version, .. } => Some((*query, *version)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn weak_query_answers_immediately() {
        let mut fx = Fixture::new(0);
        let out =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(1), ItemId::new(1), ConsistencyLevel::Weak));
        assert_eq!(answers_of(&out), vec![(QueryId(1), Version::INITIAL)]);
    }

    #[test]
    fn delta_query_with_fresh_ttp_answers_immediately() {
        let mut fx = Fixture::new(0);
        let _ = fx.run(|p, ctx| p.on_init(ctx)); // grants TTP leases to warmed items
        let out =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(2), ItemId::new(1), ConsistencyLevel::Delta));
        assert_eq!(answers_of(&out).len(), 1);
    }

    #[test]
    fn strong_query_polls_even_with_fresh_ttp() {
        let mut fx = Fixture::new(0);
        let _ = fx.run(|p, ctx| p.on_init(ctx));
        let out =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(3), ItemId::new(1), ConsistencyLevel::Strong));
        assert!(answers_of(&out).is_empty());
        assert!(out.iter().any(|o| matches!(
            o,
            crate::CtxOut::Flood { msg: ProtoMsg::Poll { .. }, ttl } if *ttl == 2
        )));
    }

    #[test]
    fn delta_query_with_expired_ttp_polls() {
        let mut fx = Fixture::new(0);
        let _ = fx.run(|p, ctx| p.on_init(ctx));
        fx.now = SimTime::ZERO + SimDuration::from_mins(10); // past TTP=4min
        let out =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(4), ItemId::new(1), ConsistencyLevel::Delta));
        assert!(answers_of(&out).is_empty());
        assert!(out.iter().any(|o| matches!(
            o,
            crate::CtxOut::Flood {
                msg: ProtoMsg::Poll { .. },
                ..
            }
        )));
    }

    #[test]
    fn poll_ack_a_answers_and_renews_ttp() {
        let mut fx = Fixture::new(0);
        let _ = fx.run(|p, ctx| p.on_init(ctx));
        let _ =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(5), ItemId::new(1), ConsistencyLevel::Strong));
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(7),
                ProtoMsg::PollAckA {
                    item: ItemId::new(1),
                    version: Version::INITIAL,
                    span: None,
                },
            )
        });
        assert_eq!(answers_of(&out), vec![(QueryId(5), Version::INITIAL)]);
        // TTP renewed: an immediate Δ query answers locally.
        let out =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(6), ItemId::new(1), ConsistencyLevel::Delta));
        assert_eq!(answers_of(&out).len(), 1);
    }

    #[test]
    fn poll_ack_b_refreshes_cache_before_answering() {
        let mut fx = Fixture::new(0);
        let _ = fx.run(|p, ctx| p.on_init(ctx));
        let _ =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(7), ItemId::new(1), ConsistencyLevel::Strong));
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(7),
                ProtoMsg::PollAckB {
                    item: ItemId::new(1),
                    version: Version::new(4),
                    content_bytes: 1_024,
                    span: None,
                },
            )
        });
        assert_eq!(answers_of(&out), vec![(QueryId(7), Version::new(4))]);
        assert_eq!(
            fx.cache.peek(ItemId::new(1)).unwrap().version,
            Version::new(4)
        );
    }

    #[test]
    fn poll_retry_escalates_then_fails() {
        let mut fx = Fixture::new(0);
        let _ = fx.run(|p, ctx| p.on_init(ctx));
        let _ =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(8), ItemId::new(1), ConsistencyLevel::Strong));
        // Attempt 1 timed out: retry with doubled TTL.
        let out = fx.run(|p, ctx| {
            p.on_timer(
                ctx,
                Timer::PollRetry {
                    query: QueryId(8),
                    attempt: 1,
                },
            )
        });
        assert!(out.iter().any(|o| matches!(
            o,
            crate::CtxOut::Flood {
                ttl: 4,
                msg: ProtoMsg::Poll { .. }
            }
        )));
        let out = fx.run(|p, ctx| {
            p.on_timer(
                ctx,
                Timer::PollRetry {
                    query: QueryId(8),
                    attempt: 2,
                },
            )
        });
        assert!(out.iter().any(|o| matches!(
            o,
            crate::CtxOut::Flood {
                ttl: 8,
                msg: ProtoMsg::Poll { .. }
            }
        )));
        // Final attempt exhausted: the query lingers in grace, then fails.
        let out = fx.run(|p, ctx| {
            p.on_timer(
                ctx,
                Timer::PollRetry {
                    query: QueryId(8),
                    attempt: 3,
                },
            )
        });
        assert!(out.iter().any(|o| matches!(
            o,
            crate::CtxOut::SetTimer {
                timer: Timer::PollGrace { query: QueryId(8) },
                ..
            }
        )));
        // A late answer during grace still completes the query.
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(7),
                ProtoMsg::PollAckA {
                    item: ItemId::new(1),
                    version: Version::INITIAL,
                    span: None,
                },
            )
        });
        assert_eq!(answers_of(&out), vec![(QueryId(8), Version::INITIAL)]);
        // Grace firing after the answer is a no-op.
        let out = fx.run(|p, ctx| p.on_timer(ctx, Timer::PollGrace { query: QueryId(8) }));
        assert!(out.is_empty());
    }

    #[test]
    fn grace_expiry_fails_unanswered_query() {
        let mut fx = Fixture::new(0);
        let _ = fx.run(|p, ctx| p.on_init(ctx));
        let _ =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(20), ItemId::new(1), ConsistencyLevel::Strong));
        for attempt in 1..=3 {
            let _ = fx.run(|p, ctx| {
                p.on_timer(
                    ctx,
                    Timer::PollRetry {
                        query: QueryId(20),
                        attempt,
                    },
                )
            });
        }
        let out = fx.run(|p, ctx| p.on_timer(ctx, Timer::PollGrace { query: QueryId(20) }));
        assert!(out
            .iter()
            .any(|o| matches!(o, crate::CtxOut::Fail { query: QueryId(20) })));
    }

    #[test]
    fn source_answers_polls_for_own_item() {
        let mut fx = Fixture::new(0);
        fx.own.update(); // v1
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(3),
                ProtoMsg::Poll {
                    item: ItemId::new(0),
                    version: Version::INITIAL,
                    span: None,
                },
            )
        });
        let sends = sends_of(&out);
        assert_eq!(sends.len(), 1);
        assert!(matches!(
            sends[0],
            (to, ProtoMsg::PollAckB { version, .. }) if to == NodeId::new(3) && version == Version::new(1)
        ));
    }

    #[test]
    fn source_ttn_floods_invalidation_and_pushes_updates() {
        let mut fx = Fixture::new(0);
        // Install a relay peer and a pending update.
        let _ = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(4),
                ProtoMsg::Apply {
                    item: ItemId::new(0),
                },
            )
        });
        fx.own.update();
        let _ = fx.run(|p, ctx| p.on_source_update(ctx));
        let out = fx.run(|p, ctx| p.on_timer(ctx, Timer::Ttn));
        assert!(out.iter().any(|o| matches!(
            o,
            crate::CtxOut::Flood {
                ttl: 3,
                msg: ProtoMsg::Invalidation { .. }
            }
        )));
        assert!(sends_of(&out)
            .iter()
            .any(|(to, m)| *to == NodeId::new(4) && matches!(m, ProtoMsg::Update { .. })));
        // TTN rescheduled.
        assert!(out.iter().any(|o| matches!(
            o,
            crate::CtxOut::SetTimer {
                timer: Timer::Ttn,
                ..
            }
        )));
    }

    #[test]
    fn apply_then_ack_promotes_to_relay() {
        let mut fx = Fixture::new(0);
        fx.make_candidate();
        // Candidate hears an INVALIDATION for its cached item D1 → APPLY.
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::Invalidation {
                    item: ItemId::new(1),
                    version: Version::INITIAL,
                    seq: None,
                },
            )
        });
        assert!(sends_of(&out).iter().any(|(to, m)| *to == NodeId::new(1)
            && matches!(m, ProtoMsg::Apply { item } if *item == ItemId::new(1))));
        // Source acks: promotion.
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::ApplyAck {
                    item: ItemId::new(1),
                    version: Version::INITIAL,
                },
            )
        });
        assert!(
            out.iter()
                .all(|o| matches!(o, crate::CtxOut::Transition { .. })),
            "up-to-date new relay needs no GET_NEW"
        );
        assert!(out.iter().any(|o| matches!(
            o,
            crate::CtxOut::Transition {
                kind: RelayTransitionKind::Promoted,
                ..
            }
        )));
        assert!(fx.proto.is_relay_for(ItemId::new(1)));
        assert_eq!(fx.proto.role(), RelayRole::Relay);
    }

    #[test]
    fn stale_new_relay_fetches_content() {
        let mut fx = Fixture::new(0);
        fx.make_candidate();
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::ApplyAck {
                    item: ItemId::new(1),
                    version: Version::new(3),
                },
            )
        });
        assert!(sends_of(&out)
            .iter()
            .any(|(_, m)| matches!(m, ProtoMsg::GetNew { item } if *item == ItemId::new(1))));
    }

    #[test]
    fn fresh_relay_answers_polls_stale_relay_holds_them() {
        let mut fx = Fixture::new(0);
        fx.make_candidate();
        let _ = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::ApplyAck {
                    item: ItemId::new(1),
                    version: Version::INITIAL,
                },
            )
        });
        // Fresh TTR: poll answered instantly.
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(9),
                ProtoMsg::Poll {
                    item: ItemId::new(1),
                    version: Version::INITIAL,
                    span: None,
                },
            )
        });
        assert!(sends_of(&out)
            .iter()
            .any(|(to, m)| *to == NodeId::new(9) && matches!(m, ProtoMsg::PollAckA { .. })));
        // Let TTR lapse: poll is held.
        fx.now += SimDuration::from_mins(5);
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(9),
                ProtoMsg::Poll {
                    item: ItemId::new(1),
                    version: Version::INITIAL,
                    span: None,
                },
            )
        });
        let sends = sends_of(&out);
        assert!(
            !sends
                .iter()
                .any(|(_, m)| matches!(m, ProtoMsg::PollAckA { .. } | ProtoMsg::PollAckB { .. })),
            "stale relay must hold the poll, not answer it"
        );
        assert!(
            sends
                .iter()
                .any(|(to, m)| *to == NodeId::new(1) && matches!(m, ProtoMsg::GetNew { .. })),
            "stale relay resynchronises with the source when polled"
        );
        // The next INVALIDATION (same version) proves freshness: held poll
        // answered.
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::Invalidation {
                    item: ItemId::new(1),
                    version: Version::INITIAL,
                    seq: None,
                },
            )
        });
        assert!(sends_of(&out)
            .iter()
            .any(|(to, m)| *to == NodeId::new(9) && matches!(m, ProtoMsg::PollAckA { .. })));
    }

    #[test]
    fn relay_missing_updates_resyncs_with_get_new() {
        let mut fx = Fixture::new(0);
        fx.make_candidate();
        let _ = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::ApplyAck {
                    item: ItemId::new(1),
                    version: Version::INITIAL,
                },
            )
        });
        // INVALIDATION advertises v2 while we hold v0 (missed UPDATEs).
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::Invalidation {
                    item: ItemId::new(1),
                    version: Version::new(2),
                    seq: None,
                },
            )
        });
        assert!(sends_of(&out)
            .iter()
            .any(|(to, m)| *to == NodeId::new(1) && matches!(m, ProtoMsg::GetNew { .. })));
        // SEND_NEW restores freshness.
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::SendNew {
                    item: ItemId::new(1),
                    version: Version::new(2),
                    content_bytes: 1_024,
                },
            )
        });
        assert!(out.iter().all(|o| matches!(
            o,
            crate::CtxOut::Transition {
                kind: RelayTransitionKind::ResyncCompleted,
                ..
            } | crate::CtxOut::CopyInstalled { .. }
        )));
        assert!(out
            .iter()
            .any(|o| matches!(o, crate::CtxOut::Transition { .. })));
        assert_eq!(
            fx.cache.peek(ItemId::new(1)).unwrap().version,
            Version::new(2)
        );
        // Relay answers its own strong query instantly now.
        let out =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(9), ItemId::new(1), ConsistencyLevel::Strong));
        assert_eq!(answers_of(&out), vec![(QueryId(9), Version::new(2))]);
    }

    #[test]
    fn update_to_plain_cache_peer_triggers_cancel() {
        let mut fx = Fixture::new(0);
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::Update {
                    item: ItemId::new(1),
                    version: Version::new(5),
                    content_bytes: 1_024,
                    seq: None,
                },
            )
        });
        assert!(sends_of(&out)
            .iter()
            .any(|(to, m)| *to == NodeId::new(1) && matches!(m, ProtoMsg::Cancel { .. })));
        assert_eq!(
            fx.cache.peek(ItemId::new(1)).unwrap().version,
            Version::new(5)
        );
    }

    #[test]
    fn update_to_candidate_promotes_without_ack() {
        let mut fx = Fixture::new(0);
        fx.make_candidate();
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::Update {
                    item: ItemId::new(1),
                    version: Version::new(1),
                    content_bytes: 1_024,
                    seq: None,
                },
            )
        });
        assert!(out.iter().all(|o| matches!(
            o,
            crate::CtxOut::Transition {
                kind: RelayTransitionKind::Promoted,
                ..
            } | crate::CtxOut::CopyInstalled { .. }
        )));
        assert!(out
            .iter()
            .any(|o| matches!(o, crate::CtxOut::Transition { .. })));
        assert!(
            fx.proto.is_relay_for(ItemId::new(1)),
            "Fig 6(d) 28-31: missed APPLY_ACK"
        );
    }

    #[test]
    fn demotion_cancels_all_relayed_items() {
        let mut fx = Fixture::new(0);
        fx.make_candidate();
        let _ = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::ApplyAck {
                    item: ItemId::new(1),
                    version: Version::INITIAL,
                },
            )
        });
        // Heavy churn: demotion needs `demote_grace_ticks` failing ticks.
        fx.proto.coeffs.note_switch();
        let first = fx.run(|p, ctx| {
            ctx.energy_fraction = 0.1;
            p.on_coefficient_tick(ctx, true)
        });
        assert!(
            sends_of(&first).is_empty(),
            "one failing tick is grace, not demotion"
        );
        assert!(fx.proto.is_relay_for(ItemId::new(1)));
        fx.proto.coeffs.note_switch();
        let out = fx.run(|p, ctx| {
            ctx.energy_fraction = 0.1;
            p.on_coefficient_tick(ctx, true)
        });
        assert!(sends_of(&out)
            .iter()
            .any(|(to, m)| *to == NodeId::new(1) && matches!(m, ProtoMsg::Cancel { .. })));
        assert_eq!(fx.proto.role(), RelayRole::CachePeer);
        assert_eq!(fx.proto.relay_item_count(), 0);
    }

    #[test]
    fn source_drops_unreachable_relay_from_table() {
        let mut fx = Fixture::new(0);
        let _ = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(4),
                ProtoMsg::Apply {
                    item: ItemId::new(0),
                },
            )
        });
        assert_eq!(fx.proto.relay_table_len(), 1);
        let _ = fx.run(|p, ctx| {
            p.on_undeliverable(
                ctx,
                NodeId::new(4),
                ProtoMsg::ApplyAck {
                    item: ItemId::new(0),
                    version: Version::INITIAL,
                },
            )
        });
        assert_eq!(fx.proto.relay_table_len(), 0);
    }

    #[test]
    fn cache_miss_fetches_from_source() {
        let mut fx = Fixture::new(0);
        let out =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(11), ItemId::new(5), ConsistencyLevel::Weak));
        assert!(sends_of(&out)
            .iter()
            .any(|(to, m)| *to == NodeId::new(5) && matches!(m, ProtoMsg::Fetch { .. })));
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(5),
                ProtoMsg::FetchReply {
                    item: ItemId::new(5),
                    version: Version::new(1),
                    content_bytes: 1_024,
                    span: None,
                },
            )
        });
        assert_eq!(answers_of(&out), vec![(QueryId(11), Version::new(1))]);
        assert!(fx.cache.contains(ItemId::new(5)));
    }

    #[test]
    fn admission_cap_rejects_extra_relays() {
        let mut fx = Fixture::new(0);
        fx.cfg.max_relays_per_item = Some(2);
        for peer in [4u32, 5] {
            let out = fx.run(|p, ctx| {
                p.on_message(
                    ctx,
                    NodeId::new(peer),
                    ProtoMsg::Apply {
                        item: ItemId::new(0),
                    },
                )
            });
            assert!(
                sends_of(&out)
                    .iter()
                    .any(|(_, m)| matches!(m, ProtoMsg::ApplyAck { .. })),
                "peer {peer} is under the cap and must be approved"
            );
        }
        assert_eq!(fx.proto.relay_table_len(), 2);
        // Third applicant: silently rejected.
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(6),
                ProtoMsg::Apply {
                    item: ItemId::new(0),
                },
            )
        });
        assert!(sends_of(&out).is_empty(), "a full table must not approve");
        assert_eq!(fx.proto.relay_table_len(), 2);
        // Existing member re-applying is re-approved (idempotent).
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(5),
                ProtoMsg::Apply {
                    item: ItemId::new(0),
                },
            )
        });
        assert!(sends_of(&out)
            .iter()
            .any(|(_, m)| matches!(m, ProtoMsg::ApplyAck { .. })));
    }

    #[test]
    fn adaptive_ttp_lease_reacts_to_poll_answers() {
        let mut fx = Fixture::new(0);
        fx.cfg.adaptive = true;
        fx.proto = Rpcc::new(&fx.cfg, true);
        // Confirmations stretch the Δ-lease.
        for _ in 0..10 {
            let _ = fx.run(|p, ctx| {
                p.on_message(
                    ctx,
                    NodeId::new(7),
                    ProtoMsg::PollAckA {
                        item: ItemId::new(1),
                        version: Version::INITIAL,
                        span: None,
                    },
                )
            });
        }
        let stretched = fx.proto.tuner().unwrap().ttp_scale_of(ItemId::new(1));
        assert!(
            stretched > 1.0,
            "confirmed answers must stretch the lease, got {stretched}"
        );
        // One change collapses it.
        let _ = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(7),
                ProtoMsg::PollAckB {
                    item: ItemId::new(1),
                    version: Version::new(2),
                    content_bytes: 64,
                    span: None,
                },
            )
        });
        let collapsed = fx.proto.tuner().unwrap().ttp_scale_of(ItemId::new(1));
        assert!(
            collapsed < stretched,
            "a changed answer must shrink the lease"
        );
    }

    #[test]
    fn adaptive_source_stretches_quiet_reports() {
        let mut fx = Fixture::new(0);
        fx.cfg.adaptive = true;
        fx.proto = Rpcc::new(&fx.cfg, true);
        // Sparse updates: one every 6 minutes.
        for i in 1..=6u64 {
            fx.now = SimTime::from_millis(i * 360_000);
            fx.own.update();
            let _ = fx.run(|p, ctx| p.on_source_update(ctx));
        }
        let out = fx.run(|p, ctx| p.on_timer(ctx, Timer::Ttn));
        let period = out
            .iter()
            .find_map(|o| match o {
                crate::CtxOut::SetTimer {
                    after,
                    timer: Timer::Ttn,
                } => Some(*after),
                _ => None,
            })
            .expect("TTN rescheduled");
        assert!(
            period > SimDuration::from_mins(2),
            "a quiet source must report less often than base TTN, got {period}"
        );
        assert!(
            period <= SimDuration::from_mins(8),
            "bounded by the adaptive span"
        );
    }

    #[test]
    fn own_item_queries_answer_from_master() {
        let mut fx = Fixture::new(0);
        fx.own.update();
        let out =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(12), ItemId::new(0), ConsistencyLevel::Strong));
        assert_eq!(answers_of(&out), vec![(QueryId(12), Version::new(1))]);
    }

    /// Promotes the fixture to relay for D1 via APPLY_ACK.
    fn make_relay(fx: &mut Fixture) {
        fx.make_candidate();
        let _ = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::ApplyAck {
                    item: ItemId::new(1),
                    version: Version::INITIAL,
                },
            )
        });
        assert!(fx.proto.is_relay_for(ItemId::new(1)));
    }

    #[test]
    fn orphaned_relay_lease_expires_with_self_cancel() {
        let mut fx = Fixture::new(0);
        fx.cfg = fx.cfg.hardened();
        fx.proto = Rpcc::new(&fx.cfg, true);
        make_relay(&mut fx);
        let grace = fx.cfg.relay_orphan_grace.expect("hardened sets a grace");
        // Within lease + grace: the sweep leaves the relay alone.
        fx.now += Rpcc::relay_lease(&fx.cfg);
        let out = fx.run(|p, ctx| p.on_timer(ctx, Timer::RelayHoldSweep));
        assert!(fx.proto.is_relay_for(ItemId::new(1)));
        assert!(!out
            .iter()
            .any(|o| matches!(o, crate::CtxOut::Degraded { .. })));
        // Past the grace with no source contact: self-CANCEL demotion.
        fx.now += grace + SimDuration::from_secs(1);
        let out = fx.run(|p, ctx| p.on_timer(ctx, Timer::RelayHoldSweep));
        assert!(!fx.proto.is_relay_for(ItemId::new(1)));
        assert_eq!(fx.proto.role(), RelayRole::Candidate);
        assert!(
            sends_of(&out).iter().any(|(to, m)| *to == NodeId::new(1)
                && matches!(m, ProtoMsg::Cancel { item } if *item == ItemId::new(1))),
            "orphaned relay must tell the source it resigned"
        );
        assert!(
            out.iter().any(|o| matches!(
                o,
                crate::CtxOut::Degraded {
                    kind: DegradationKind::RelayLeaseExpired,
                    query: None,
                    ..
                }
            )),
            "lease expiry must surface as a degradation output"
        );
    }

    #[test]
    fn source_contact_keeps_renewing_the_relay_lease() {
        let mut fx = Fixture::new(0);
        fx.cfg = fx.cfg.hardened();
        fx.proto = Rpcc::new(&fx.cfg, true);
        make_relay(&mut fx);
        // Invalidations keep arriving: even far past the original expiry
        // the lease stays alive.
        for _ in 0..5 {
            fx.now += SimDuration::from_mins(2);
            let _ = fx.run(|p, ctx| {
                p.on_message(
                    ctx,
                    NodeId::new(1),
                    ProtoMsg::Invalidation {
                        item: ItemId::new(1),
                        version: Version::INITIAL,
                        seq: None,
                    },
                )
            });
            let out = fx.run(|p, ctx| p.on_timer(ctx, Timer::RelayHoldSweep));
            assert!(
                !out.iter()
                    .any(|o| matches!(o, crate::CtxOut::Degraded { .. })),
                "a relay in contact with its source never orphans"
            );
        }
        assert!(fx.proto.is_relay_for(ItemId::new(1)));
    }

    #[test]
    fn exhausted_poll_falls_back_to_source_flood() {
        let mut fx = Fixture::new(0);
        fx.cfg = fx.cfg.hardened();
        fx.proto = Rpcc::new(&fx.cfg, true);
        // Strong query on the cached (non-fresh) D1 starts a POLL.
        let out =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(5), ItemId::new(1), ConsistencyLevel::Strong));
        assert!(out.iter().any(|o| matches!(o, crate::CtxOut::Flood { .. })));
        // Exhaust every attempt without an answer.
        for attempt in 1..fx.cfg.poll_attempts {
            let out = fx.run(|p, ctx| {
                p.on_timer(
                    ctx,
                    Timer::PollRetry {
                        query: QueryId(5),
                        attempt,
                    },
                )
            });
            assert!(
                !out.iter()
                    .any(|o| matches!(o, crate::CtxOut::Degraded { .. })),
                "no fallback before the attempts run out"
            );
        }
        let last_attempt = fx.cfg.poll_attempts;
        let out = fx.run(|p, ctx| {
            p.on_timer(
                ctx,
                Timer::PollRetry {
                    query: QueryId(5),
                    attempt: last_attempt,
                },
            )
        });
        let fallback = out.iter().find_map(|o| match o {
            crate::CtxOut::Flood { ttl, msg } => Some((*ttl, *msg)),
            _ => None,
        });
        let (ttl, msg) = fallback.expect("exhaustion must trigger the fallback flood");
        assert_eq!(ttl, fx.cfg.broadcast_ttl, "fallback goes out at max TTL");
        assert!(matches!(msg, ProtoMsg::Poll { item, .. } if item == ItemId::new(1)));
        assert!(out.iter().any(|o| matches!(
            o,
            crate::CtxOut::Degraded {
                kind: DegradationKind::FallbackFlood,
                query: Some(QueryId(5)),
                ..
            }
        )));
        // The query lingers (PollGrace) rather than failing on the spot,
        // so a flood answer can still rescue it.
        assert!(out.iter().any(|o| matches!(
            o,
            crate::CtxOut::SetTimer {
                timer: Timer::PollGrace { query: QueryId(5) },
                ..
            }
        )));
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::PollAckB {
                    item: ItemId::new(1),
                    version: Version::new(2),
                    content_bytes: 1_024,
                    span: None,
                },
            )
        });
        assert_eq!(answers_of(&out), vec![(QueryId(5), Version::new(2))]);
    }

    #[test]
    fn hardened_poll_retries_back_off_exponentially() {
        let mut fx = Fixture::new(0);
        fx.cfg.retry_backoff = 2.0; // no jitter: exact delays
        fx.proto = Rpcc::new(&fx.cfg, true);
        let timer_delay = |out: &[crate::CtxOut]| {
            out.iter()
                .find_map(|o| match o {
                    crate::CtxOut::SetTimer {
                        after,
                        timer: Timer::PollRetry { .. },
                    } => Some(*after),
                    _ => None,
                })
                .expect("poll schedules a retry timer")
        };
        let out =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(6), ItemId::new(1), ConsistencyLevel::Strong));
        assert_eq!(timer_delay(&out), fx.cfg.poll_timeout);
        let out = fx.run(|p, ctx| {
            p.on_timer(
                ctx,
                Timer::PollRetry {
                    query: QueryId(6),
                    attempt: 1,
                },
            )
        });
        assert_eq!(timer_delay(&out), fx.cfg.poll_timeout.mul_f64(2.0));
        let out = fx.run(|p, ctx| {
            p.on_timer(
                ctx,
                Timer::PollRetry {
                    query: QueryId(6),
                    attempt: 2,
                },
            )
        });
        assert_eq!(timer_delay(&out), fx.cfg.poll_timeout.mul_f64(4.0));
    }

    #[test]
    fn recovery_off_changes_nothing_on_the_wire() {
        let mut fx = Fixture::new(0);
        let out = fx.run(|p, ctx| p.on_status_change(ctx, true));
        assert!(out.is_empty(), "rejoin is silent with recovery off");
        let out = fx.run(|p, ctx| p.on_timer(ctx, Timer::Ttn));
        assert!(
            out.iter().all(|o| !matches!(
                o,
                crate::CtxOut::Flood {
                    msg: ProtoMsg::Invalidation { seq: Some(_), .. },
                    ..
                }
            )),
            "invalidations stay unstamped with recovery off"
        );
    }

    #[test]
    fn rejoin_resync_floods_a_sorted_digest() {
        let mut fx = Fixture::new(0);
        fx.cfg.recovery = crate::RecoveryConfig::on();
        fx.proto = Rpcc::new(&fx.cfg, true);
        let out = fx.run(|p, ctx| p.on_status_change(ctx, true));
        let resync_ttl = fx.cfg.recovery.resync_ttl;
        let digest = out
            .iter()
            .find_map(|o| match o {
                crate::CtxOut::Flood {
                    ttl,
                    msg: ProtoMsg::ResyncDigest { digest },
                } => {
                    assert_eq!(*ttl, resync_ttl);
                    Some(*digest)
                }
                _ => None,
            })
            .expect("rejoin floods a version digest");
        // Cached D1 plus the own item D0, in ascending item order.
        assert_eq!(
            digest.entries(),
            &[
                (ItemId::new(0), Version::INITIAL),
                (ItemId::new(1), Version::INITIAL),
            ]
        );
        assert!(out.iter().any(|o| matches!(
            o,
            crate::CtxOut::Recovery {
                action: RecoveryAction::ResyncStart { items: 2 }
            }
        )));
    }

    #[test]
    fn resync_digest_is_answered_with_newer_versions_only() {
        let mut fx = Fixture::new(0);
        fx.cfg.recovery = crate::RecoveryConfig::on();
        fx.proto = Rpcc::new(&fx.cfg, true);
        fx.own.update(); // master D0 now at v1
                         // The rejoiner claims D0@v0 (older than our master) and D1@v0
                         // (same as our cached copy).
        let digest = VersionDigest::new(&[
            (ItemId::new(0), Version::INITIAL),
            (ItemId::new(1), Version::INITIAL),
        ]);
        let out =
            fx.run(|p, ctx| p.on_message(ctx, NodeId::new(7), ProtoMsg::ResyncDigest { digest }));
        let sends = sends_of(&out);
        assert_eq!(sends.len(), 1);
        let (to, ProtoMsg::ResyncAck { digest }) = sends[0] else {
            panic!("expected a ResyncAck, got {:?}", sends[0]);
        };
        assert_eq!(to, NodeId::new(7));
        assert_eq!(digest.entries(), &[(ItemId::new(0), Version::new(1))]);
    }

    #[test]
    fn resync_ack_drops_stale_plain_copies() {
        let mut fx = Fixture::new(0);
        fx.cfg.recovery = crate::RecoveryConfig::on();
        fx.proto = Rpcc::new(&fx.cfg, true);
        let digest = VersionDigest::new(&[(ItemId::new(1), Version::new(3))]);
        let out =
            fx.run(|p, ctx| p.on_message(ctx, NodeId::new(7), ProtoMsg::ResyncAck { digest }));
        assert!(
            !fx.cache.contains(ItemId::new(1)),
            "a proven-stale plain copy must not survive the rejoin"
        );
        assert!(out.iter().any(|o| matches!(
            o,
            crate::CtxOut::Recovery {
                action: RecoveryAction::ResyncDone { stale: 1 }
            }
        )));
    }

    #[test]
    fn seqd_update_acks_always_but_processes_once() {
        let mut fx = Fixture::new(0);
        fx.cfg.recovery = crate::RecoveryConfig::on();
        fx.proto = Rpcc::new(&fx.cfg, true);
        let update = ProtoMsg::Update {
            item: ItemId::new(1),
            version: Version::new(2),
            content_bytes: 1_024,
            seq: Some(9),
        };
        let out = fx.run(|p, ctx| p.on_message(ctx, NodeId::new(1), update));
        let sends = sends_of(&out);
        assert!(sends
            .iter()
            .any(|(to, m)| *to == NodeId::new(1)
                && matches!(m, ProtoMsg::DeliveryAck { seq: 9, .. })));
        assert!(
            sends
                .iter()
                .any(|(_, m)| matches!(m, ProtoMsg::Cancel { .. })),
            "first delivery is processed normally (plain peer cancels)"
        );
        // The duplicated frame is acked again but not re-processed.
        let out = fx.run(|p, ctx| p.on_message(ctx, NodeId::new(1), update));
        let sends = sends_of(&out);
        assert!(sends
            .iter()
            .any(|(_, m)| matches!(m, ProtoMsg::DeliveryAck { seq: 9, .. })));
        assert!(
            !sends
                .iter()
                .any(|(_, m)| matches!(m, ProtoMsg::Cancel { .. })),
            "a duplicate must be idempotent"
        );
    }

    /// Installs relay peer 4, updates the master and runs one TTN tick;
    /// returns the seq the pushed UPDATE was stamped with.
    fn push_one_acked_update(fx: &mut Fixture) -> u64 {
        let _ = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(4),
                ProtoMsg::Apply {
                    item: ItemId::new(0),
                },
            )
        });
        fx.own.update();
        let _ = fx.run(|p, ctx| p.on_source_update(ctx));
        let out = fx.run(|p, ctx| p.on_timer(ctx, Timer::Ttn));
        sends_of(&out)
            .iter()
            .find_map(|(_, m)| match m {
                ProtoMsg::Update { seq, .. } => *seq,
                _ => None,
            })
            .expect("acked delivery stamps pushed updates")
    }

    #[test]
    fn unacked_update_retransmits_then_gives_up() {
        let mut fx = Fixture::new(0);
        fx.cfg.recovery = crate::RecoveryConfig::on();
        fx.proto = Rpcc::new(&fx.cfg, true);
        let _seq = push_one_acked_update(&mut fx);
        // No ack: each sweep past the deadline retransmits once...
        for attempt in 1..=fx.cfg.recovery.retx_attempts {
            fx.now += fx.cfg.recovery.retx_timeout + SimDuration::from_secs(1);
            let out = fx.run(|p, ctx| p.on_timer(ctx, Timer::RetxSweep));
            assert!(
                out.iter().any(|o| matches!(
                    o,
                    crate::CtxOut::Recovery {
                        action: RecoveryAction::Retransmit { attempt: a, .. }
                    } if *a == attempt
                )),
                "sweep {attempt} must retransmit"
            );
        }
        // ...until the attempts run out and the entry is abandoned.
        fx.now += fx.cfg.recovery.retx_timeout + SimDuration::from_secs(1);
        let out = fx.run(|p, ctx| p.on_timer(ctx, Timer::RetxSweep));
        assert!(
            !out.iter()
                .any(|o| matches!(o, crate::CtxOut::Recovery { .. })),
            "an exhausted entry must not retransmit forever"
        );
        assert_eq!(fx.proto.retx_high_water(), 1);
    }

    #[test]
    fn delivery_ack_clears_the_retransmit_entry() {
        let mut fx = Fixture::new(0);
        fx.cfg.recovery = crate::RecoveryConfig::on();
        fx.proto = Rpcc::new(&fx.cfg, true);
        let seq = push_one_acked_update(&mut fx);
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(4),
                ProtoMsg::DeliveryAck {
                    item: ItemId::new(0),
                    seq,
                },
            )
        });
        assert!(out.iter().any(|o| matches!(
            o,
            crate::CtxOut::Recovery {
                action: RecoveryAction::AckReceived { .. }
            }
        )));
        // The sweep has nothing left to resend.
        fx.now += fx.cfg.recovery.retx_timeout + fx.cfg.recovery.retx_timeout;
        let out = fx.run(|p, ctx| p.on_timer(ctx, Timer::RetxSweep));
        assert!(
            !out.iter().any(|o| matches!(
                o,
                crate::CtxOut::Send { .. } | crate::CtxOut::Recovery { .. }
            )),
            "an acked entry must not be retransmitted"
        );
    }

    #[test]
    fn lease_expiry_requests_handover_instead_of_degrading() {
        let mut fx = Fixture::new(0);
        fx.cfg = fx.cfg.hardened();
        fx.cfg.recovery = crate::RecoveryConfig::on();
        fx.proto = Rpcc::new(&fx.cfg, true);
        make_relay(&mut fx);
        let grace = fx.cfg.relay_orphan_grace.expect("hardened sets a grace");
        fx.now += Rpcc::relay_lease(&fx.cfg) + grace + SimDuration::from_secs(1);
        let out = fx.run(|p, ctx| p.on_timer(ctx, Timer::RelayHoldSweep));
        assert!(!fx.proto.is_relay_for(ItemId::new(1)));
        assert!(
            !out.iter()
                .any(|o| matches!(o, crate::CtxOut::Degraded { .. })),
            "with handover on, expiry defers degradation to the driver"
        );
        assert!(out.iter().any(|o| matches!(
            o,
            crate::CtxOut::Recovery {
                action: RecoveryAction::HandoverRequest { item, .. }
            } if *item == ItemId::new(1)
        )));
    }

    #[test]
    fn handover_recipient_adopts_the_relay_role() {
        let mut fx = Fixture::new(0);
        fx.cfg.recovery = crate::RecoveryConfig::on();
        fx.proto = Rpcc::new(&fx.cfg, true);
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(9),
                ProtoMsg::Handover {
                    item: ItemId::new(1),
                    version: Version::INITIAL,
                },
            )
        });
        assert!(fx.proto.is_relay_for(ItemId::new(1)));
        assert!(
            sends_of(&out)
                .iter()
                .any(|(to, m)| *to == NodeId::new(1) && matches!(m, ProtoMsg::Apply { .. })),
            "the successor must introduce itself to the source"
        );
        // A strong query is now answered locally from the adopted lease.
        let out =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(30), ItemId::new(1), ConsistencyLevel::Strong));
        assert_eq!(answers_of(&out), vec![(QueryId(30), Version::INITIAL)]);
    }
}
