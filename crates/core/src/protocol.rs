//! The consistency-protocol interface and its driver-side context.

use mp2p_cache::{CacheStore, DataItem, Version};
use mp2p_sim::{ItemId, NodeId, SimDuration, SimRng, SimTime};
use mp2p_trace::{RelayTransitionKind, ServedBy, SpanPhase};

use crate::config::ProtocolConfig;
use crate::level::ConsistencyLevel;
use crate::msg::ProtoMsg;
use crate::recovery::RecoveryAction;

/// Identifier of one query request (globally unique within a run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryId(pub u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A protocol-level timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timer {
    /// RPCC source / push baseline: the next invalidation period (`TTN`).
    Ttn,
    /// A pending POLL (RPCC or pull baseline) timed out; retry or fail.
    PollRetry {
        /// The waiting query.
        query: QueryId,
        /// 1-based attempt that just timed out.
        attempt: u8,
    },
    /// A push-baseline query waited too long for an invalidation report.
    PushWait {
        /// The waiting query.
        query: QueryId,
    },
    /// All POLL attempts are exhausted; the query lingers this long for a
    /// late answer (a relay draining its held polls at the next
    /// INVALIDATION, Fig. 6(c) line 16) before failing.
    PollGrace {
        /// The lingering query.
        query: QueryId,
    },
    /// Periodic cleanup of held POLLs at a relay peer.
    RelayHoldSweep,
    /// Periodic sweep of the recovery layer's retransmit queue (only
    /// armed when acked delivery is on).
    RetxSweep,
}

/// A graceful-degradation decision a hardened protocol took instead of
/// failing outright (surfaced as a typed trace event and counted in the
/// run report's fault statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradationKind {
    /// A relay's hold on an item outlived TTR plus the configured orphan
    /// grace without any source contact; the peer demoted itself with a
    /// best-effort CANCEL rather than serve unverifiable data.
    RelayLeaseExpired,
    /// Routed POLL retries were exhausted; the peer fell back to one
    /// max-TTL flood aimed at the source before giving up.
    FallbackFlood,
}

/// One output of a protocol handler, applied by the simulation driver.
#[derive(Debug, Clone, PartialEq)]
pub enum CtxOut {
    /// Route `msg` to `to` (unicast via the network stack).
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: ProtoMsg,
    },
    /// Flood `msg` with the given TTL.
    Flood {
        /// Flood scope in hops.
        ttl: u8,
        /// The message.
        msg: ProtoMsg,
    },
    /// Fire [`crate::Protocol::on_timer`] after `after`.
    SetTimer {
        /// Delay until the timer fires.
        after: SimDuration,
        /// Timer payload.
        timer: Timer,
    },
    /// Answer an open query with the given served version.
    Answer {
        /// The query being answered.
        query: QueryId,
        /// The version served to the client.
        version: Version,
        /// Which copy produced the answer (flight-recorder metadata).
        served_by: ServedBy,
    },
    /// Give up on an open query (counted as failed, not as latency).
    Fail {
        /// The abandoned query.
        query: QueryId,
    },
    /// Report a relay state-machine transition (Fig. 5) to the flight
    /// recorder. Carries no simulation effect.
    Transition {
        /// The item whose relay duty changed on this node.
        item: ItemId,
        /// What happened.
        kind: RelayTransitionKind,
    },
    /// Report a graceful-degradation decision (hardening extensions) to
    /// the flight recorder and fault counters. Carries no simulation
    /// effect beyond bookkeeping.
    Degraded {
        /// The item the decision concerned.
        item: ItemId,
        /// The query being rescued, if the decision was query-scoped.
        query: Option<QueryId>,
        /// Which degradation path was taken.
        kind: DegradationKind,
    },
    /// Report a recovery-layer decision (resync, retransmit, ack,
    /// handover) to the driver: fault counters, trace events, and — for
    /// handover requests — the neighbor election only the driver's
    /// shared topology view can run.
    Recovery {
        /// What the recovery layer did or requests.
        action: RecoveryAction,
    },
    /// Report that a cached copy of `item` was installed or refreshed to
    /// `version` from a just-delivered message. The driver pairs it with
    /// the carrying frame's identity to emit a provenance
    /// [`mp2p_trace::TraceEvent::CopyLineage`] record. Carries no
    /// simulation effect.
    CopyInstalled {
        /// The item whose cached copy changed.
        item: ItemId,
        /// The installed version.
        version: Version,
    },
    /// Report that an open query entered a new causal phase (span
    /// tracing). Carries no simulation effect.
    QueryPhase {
        /// The query whose span advanced.
        query: QueryId,
        /// The item being queried.
        item: ItemId,
        /// Which phase was entered.
        phase: SpanPhase,
        /// 1-based attempt number within the phase (0 where attempts are
        /// meaningless).
        attempt: u8,
    },
}

/// The per-call context a protocol handler runs against: direct access to
/// this node's cache and master copy, buffered network/timer/query
/// outputs.
///
/// Handlers mutate local state eagerly (cache, RNG) and *request* global
/// effects (sends, floods, timers, answers) through [`CtxOut`]s that the
/// driver applies after the handler returns — keeping every protocol a
/// deterministic, synchronously-testable state machine.
#[derive(Debug)]
pub struct Ctx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The node this handler runs on.
    pub me: NodeId,
    /// This node's cache store.
    pub cache: &'a mut CacheStore,
    /// The master copy of this node's own item.
    pub own_item: &'a mut DataItem,
    /// This node's random stream.
    pub rng: &'a mut SimRng,
    /// Protocol parameters.
    pub cfg: &'a ProtocolConfig,
    /// Battery fraction remaining (`CE` input).
    pub energy_fraction: f64,
    /// True if this node is currently connected (switched on).
    pub connected: bool,
    /// The recovery layer's dedicated random stream (backoff jitter for
    /// retransmissions). Kept separate from [`Ctx::rng`] so switching
    /// recovery on never reorders the draws of existing machinery; the
    /// driver attaches it after construction, unit fixtures may leave
    /// it `None` (see [`Ctx::recovery_delay`]).
    pub recovery_rng: Option<&'a mut SimRng>,
    /// Buffered outputs, drained by the driver.
    out: Vec<CtxOut>,
}

impl<'a> Ctx<'a> {
    /// Builds a context (driver-side).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        now: SimTime,
        me: NodeId,
        cache: &'a mut CacheStore,
        own_item: &'a mut DataItem,
        rng: &'a mut SimRng,
        cfg: &'a ProtocolConfig,
        energy_fraction: f64,
        connected: bool,
    ) -> Self {
        Ctx {
            now,
            me,
            cache,
            own_item,
            rng,
            cfg,
            energy_fraction,
            connected,
            recovery_rng: None,
            out: Vec::new(),
        }
    }

    /// Requests a unicast send.
    pub fn send(&mut self, to: NodeId, msg: ProtoMsg) {
        self.out.push(CtxOut::Send { to, msg });
    }

    /// Requests a TTL-scoped flood.
    pub fn flood(&mut self, ttl: u8, msg: ProtoMsg) {
        self.out.push(CtxOut::Flood { ttl, msg });
    }

    /// Requests a protocol timer.
    pub fn set_timer(&mut self, after: SimDuration, timer: Timer) {
        self.out.push(CtxOut::SetTimer { after, timer });
    }

    /// Answers an open query, noting which copy served it.
    pub fn answer(&mut self, query: QueryId, version: Version, served_by: ServedBy) {
        self.out.push(CtxOut::Answer {
            query,
            version,
            served_by,
        });
    }

    /// Abandons an open query.
    pub fn fail(&mut self, query: QueryId) {
        self.out.push(CtxOut::Fail { query });
    }

    /// Reports a relay state-machine transition (Fig. 5) for tracing.
    pub fn transition(&mut self, item: ItemId, kind: RelayTransitionKind) {
        self.out.push(CtxOut::Transition { item, kind });
    }

    /// Reports a graceful-degradation decision for tracing/accounting.
    pub fn degraded(&mut self, item: ItemId, query: Option<QueryId>, kind: DegradationKind) {
        self.out.push(CtxOut::Degraded { item, query, kind });
    }

    /// Reports a recovery-layer decision to the driver.
    pub fn recovery(&mut self, action: RecoveryAction) {
        self.out.push(CtxOut::Recovery { action });
    }

    /// The backed-off, jittered delay before the `attempt`-th
    /// retransmission, drawn from the **recovery** stream so acked
    /// delivery never reorders existing protocol draws. Fixtures
    /// without an attached stream get a deterministic private one.
    pub fn recovery_delay(&mut self, base: SimDuration, attempt: u8) -> SimDuration {
        let cfg = self.cfg;
        match self.recovery_rng.as_deref_mut() {
            Some(rng) => cfg.retry_delay(base, attempt, rng),
            None => {
                let mut scratch = SimRng::from_seed(0, 0);
                cfg.retry_delay(base, attempt, &mut scratch)
            }
        }
    }

    /// Reports that a cached copy was installed or refreshed from a
    /// delivered message (provenance lineage). Unconditional at every
    /// install site: it draws no randomness and the driver discards it
    /// unless provenance tracing is on.
    pub fn note_copy(&mut self, item: ItemId, version: Version) {
        self.out.push(CtxOut::CopyInstalled { item, version });
    }

    /// Reports that `query` entered a new causal phase (span tracing).
    pub fn phase(&mut self, query: QueryId, item: ItemId, phase: SpanPhase, attempt: u8) {
        self.out.push(CtxOut::QueryPhase {
            query,
            item,
            phase,
            attempt,
        });
    }

    /// Drains the buffered outputs (driver-side).
    pub fn take_outputs(&mut self) -> Vec<CtxOut> {
        std::mem::take(&mut self.out)
    }
}

/// A cache-consistency strategy, driven by the simulation [`crate::World`].
///
/// One instance runs per node; the same instance plays the *source host*
/// role for the node's own item and the *cache/relay peer* roles for the
/// items it caches — exactly as in the paper, where "each host serves as
/// the source host for some data item, while at the same time, caches
/// data items from other hosts" (Section 4.1).
pub trait Protocol {
    /// Called once at start-up (schedule initial timers here).
    fn on_init(&mut self, ctx: &mut Ctx<'_>);

    /// A query request arrived at this node for `item` with the given
    /// consistency requirement. Must eventually lead to
    /// [`Ctx::answer`] or [`Ctx::fail`] for `query`.
    fn on_query(
        &mut self,
        ctx: &mut Ctx<'_>,
        query: QueryId,
        item: ItemId,
        level: ConsistencyLevel,
    );

    /// The node's own master copy was just updated (version already
    /// incremented by the driver).
    fn on_source_update(&mut self, ctx: &mut Ctx<'_>);

    /// A protocol message arrived (sender and reception hops provided).
    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: ProtoMsg);

    /// A previously requested timer fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: Timer);

    /// The network layer gave up delivering `msg` to `dest` (the paper's
    /// MAC-layer disconnection discovery, Section 4.5).
    fn on_undeliverable(&mut self, ctx: &mut Ctx<'_>, dest: NodeId, msg: ProtoMsg);

    /// This node switched on (`up == true`) or off.
    fn on_status_change(&mut self, ctx: &mut Ctx<'_>, up: bool);

    /// A coefficient period φ elapsed; `moved` reports a subnet crossing
    /// since the previous tick. Baselines ignore this.
    fn on_coefficient_tick(&mut self, ctx: &mut Ctx<'_>, moved: bool);

    /// Number of items this node currently serves as relay peer for
    /// (gauge; 0 for baselines).
    fn relay_item_count(&self) -> usize {
        0
    }

    /// True if this node is currently a relay-peer candidate (gauge).
    fn is_candidate(&self) -> bool {
        false
    }

    /// High-water mark of this node's recovery retransmit queue (0 for
    /// protocols without acked delivery).
    fn retx_high_water(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp2p_cache::CacheStore;

    #[test]
    fn ctx_buffers_outputs_in_order() {
        let mut cache = CacheStore::new(4);
        let mut own = DataItem::new(ItemId::new(0), 512);
        let mut rng = SimRng::from_seed(0, 0);
        let cfg = ProtocolConfig::default();
        let mut ctx = Ctx::new(
            SimTime::ZERO,
            NodeId::new(0),
            &mut cache,
            &mut own,
            &mut rng,
            &cfg,
            1.0,
            true,
        );
        ctx.send(
            NodeId::new(1),
            ProtoMsg::GetNew {
                item: ItemId::new(1),
            },
        );
        ctx.set_timer(SimDuration::from_secs(1), Timer::Ttn);
        ctx.answer(QueryId(7), Version::new(2), ServedBy::Source);
        ctx.transition(ItemId::new(1), RelayTransitionKind::Promoted);
        let out = ctx.take_outputs();
        assert_eq!(out.len(), 4);
        assert!(matches!(out[0], CtxOut::Send { .. }));
        assert!(matches!(
            out[1],
            CtxOut::SetTimer {
                timer: Timer::Ttn,
                ..
            }
        ));
        assert!(matches!(
            out[2],
            CtxOut::Answer {
                query: QueryId(7),
                served_by: ServedBy::Source,
                ..
            }
        ));
        assert!(matches!(
            out[3],
            CtxOut::Transition {
                kind: RelayTransitionKind::Promoted,
                ..
            }
        ));
        assert!(ctx.take_outputs().is_empty(), "drain empties the buffer");
    }
}
