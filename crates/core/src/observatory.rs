//! The consistency observatory: divergence sampling and stale-serve
//! blame attribution.
//!
//! The end-of-run [`mp2p_metrics::ConsistencyAudit`] says *how many*
//! answers were stale; it cannot say *why*, nor how global divergence
//! evolved between warm-up and the final report. This module adds both,
//! strictly opt-in:
//!
//! * A **divergence sampler** ([`ObservatoryConfig::sample_period`])
//!   snapshots the global replica state on a fixed sim-time ticker —
//!   fresh-copy fraction, per-item replication, a staleness-age histogram
//!   ([`mp2p_metrics::AGE_BUCKET_EDGES`]), reachable-partition count and
//!   relay coverage — emitted as `TraceEvent::ConsistencySample` timeline
//!   records (journal schema 2).
//! * **Blame attribution** ([`ObservatoryConfig::blame`]) tracks, per
//!   cached copy, which update-propagation obstructions it suffered, so
//!   every stale serve is tagged with its proximate [`BlameCause`] in a
//!   `TraceEvent::StaleServe` record. The fallback causes
//!   ([`BlameCause::RaceInFlight`] / [`BlameCause::UpdateNeverSent`])
//!   are total, so the per-cause counts sum *exactly* to the audit's
//!   `stale_served`.
//!
//! With the observatory off (the default) the world queues no extra
//! events, draws no randomness and emits no extra trace records: journal
//! bytes and `RunReport::to_json` output are byte-identical to a build
//! without this module (pinned by `tests/consistency_observatory.rs`).

use mp2p_sim::{ItemId, NodeId, SimDuration};
use mp2p_trace::BlameCause;

/// Opt-in switches for the consistency observatory. The default is
/// everything off, which is the byte-identity-preserving configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObservatoryConfig {
    /// Divergence-sampler period (`None` — the default — disables the
    /// ticker entirely; no `Event` is ever queued for it).
    pub sample_period: Option<SimDuration>,
    /// Track per-copy propagation provenance and tag every stale serve
    /// with a [`BlameCause`].
    pub blame: bool,
}

impl ObservatoryConfig {
    /// Everything off (the default).
    pub fn off() -> Self {
        ObservatoryConfig::default()
    }

    /// Sampler and blame attribution both on.
    pub fn full(sample_period: SimDuration) -> Self {
        ObservatoryConfig {
            sample_period: Some(sample_period),
            blame: true,
        }
    }

    /// Whether any observatory feature is on.
    pub fn enabled(&self) -> bool {
        self.sample_period.is_some() || self.blame
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on a zero sample period.
    pub fn validate(&self) {
        if let Some(p) = self.sample_period {
            assert!(!p.is_zero(), "observatory sample period must be positive");
        }
    }
}

/// Version-stamped obstruction flags for one `(node, item)` copy. Each
/// field holds the highest master version whose propagation towards this
/// node is known to have met that obstruction; the flag *applies* to a
/// stale serve iff its stamp exceeds the served version (the copy missed
/// precisely the versions above what it served).
#[derive(Debug, Clone, Copy, Default)]
struct CopyFlags {
    partitioned: u64,
    invalidate_lost: u64,
    crash_wipe: u64,
    lease_orphan: u64,
}

/// Per-copy provenance tracking behind [`ObservatoryConfig::blame`].
///
/// Flags are max-merged (order-independent, so hash-order iteration at
/// the stamping sites cannot perturb determinism) and never cleared: a
/// newer stamp simply supersedes an older one, and a stamp at or below
/// the served version no longer applies.
#[derive(Debug)]
pub(crate) struct BlameTracker {
    n_items: usize,
    /// `flags[node * n_items + item]`.
    flags: Vec<CopyFlags>,
    /// Highest version of each item ever handed to the network for
    /// propagation (invalidation / update / send-new payloads).
    propagated: Vec<u64>,
    counts: [u64; BlameCause::ALL.len()],
    delta_violations: u64,
}

impl BlameTracker {
    pub(crate) fn new(n_peers: usize, n_items: usize) -> Self {
        BlameTracker {
            n_items,
            flags: vec![CopyFlags::default(); n_peers * n_items],
            propagated: vec![0; n_items],
            counts: [0; BlameCause::ALL.len()],
            delta_violations: 0,
        }
    }

    fn slot(&mut self, node: NodeId, item: ItemId) -> &mut CopyFlags {
        &mut self.flags[node.index() * self.n_items + item.index()]
    }

    /// The item's source updated while `node` was unreachable from it.
    pub(crate) fn stamp_partitioned(&mut self, node: NodeId, item: ItemId, version: u64) {
        let f = self.slot(node, item);
        f.partitioned = f.partitioned.max(version);
    }

    /// A frame carrying this propagation towards `node` was lost.
    pub(crate) fn stamp_lost(&mut self, node: NodeId, item: ItemId, version: u64) {
        let f = self.slot(node, item);
        f.invalidate_lost = f.invalidate_lost.max(version);
    }

    /// A crash wiped `node`'s copy while the master stood at `version`.
    pub(crate) fn stamp_crash(&mut self, node: NodeId, item: ItemId, version: u64) {
        let f = self.slot(node, item);
        f.crash_wipe = f.crash_wipe.max(version);
    }

    /// `node`'s relay lease for `item` expired without source contact.
    pub(crate) fn stamp_lease(&mut self, node: NodeId, item: ItemId, version: u64) {
        let f = self.slot(node, item);
        f.lease_orphan = f.lease_orphan.max(version);
    }

    /// A propagation of `version` was handed to the network.
    pub(crate) fn note_propagated(&mut self, item: ItemId, version: u64) {
        let p = &mut self.propagated[item.index()];
        *p = (*p).max(version);
    }

    /// Attributes one stale serve (`served < master` is the caller's
    /// responsibility) to its proximate cause and counts it. Specific
    /// obstruction flags win in [`BlameCause::ALL`] priority order; the
    /// fallback pair is total, so every stale serve gets exactly one
    /// cause.
    pub(crate) fn classify(&mut self, node: NodeId, item: ItemId, served: u64) -> BlameCause {
        let f = self.flags[node.index() * self.n_items + item.index()];
        let cause = if f.partitioned > served {
            BlameCause::Partitioned
        } else if f.invalidate_lost > served {
            BlameCause::InvalidateLost
        } else if f.crash_wipe > served {
            BlameCause::CrashWipe
        } else if f.lease_orphan > served {
            BlameCause::LeaseOrphan
        } else if self.propagated[item.index()] > served {
            BlameCause::RaceInFlight
        } else {
            BlameCause::UpdateNeverSent
        };
        self.counts[cause.index()] += 1;
        cause
    }

    /// Counts one Δ-consistency violation (a stale serve whose staleness
    /// exceeded the protocol's Δ).
    pub(crate) fn note_violation(&mut self) {
        self.delta_violations += 1;
    }

    pub(crate) fn counts(&self) -> [u64; BlameCause::ALL.len()] {
        self.counts
    }

    pub(crate) fn delta_violations(&self) -> u64 {
        self.delta_violations
    }
}

/// End-of-run summary of the observatory, carried on `RunReport` only
/// when the observatory was enabled (so a default run's report JSON stays
/// byte-identical to a pre-observatory build's).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConsistencyReport {
    /// Stale serves attributed per cause, indexed by
    /// [`BlameCause::index`]. All zero when blame attribution was off.
    pub blame: [u64; BlameCause::ALL.len()],
    /// Stale serves whose staleness exceeded the protocol's Δ (`ttp`).
    pub delta_violations: u64,
    /// Divergence samples taken over the run.
    pub samples: u64,
}

impl ConsistencyReport {
    /// Total stale serves attributed across all causes. Equals the
    /// audit's `stale_served` when blame attribution was on.
    pub fn blamed_total(&self) -> u64 {
        self.blame.iter().sum()
    }

    /// Serialises as one JSON object (stable keys; scripts may parse).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(256);
        let _ = write!(
            s,
            "{{\"stale_attributed\":{},\"delta_violations\":{},\"samples\":{},\"blame\":{{",
            self.blamed_total(),
            self.delta_violations,
            self.samples,
        );
        for (i, cause) in BlameCause::ALL.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{}", cause.label(), self.blame[cause.index()]);
        }
        s.push_str("}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_apply_only_above_the_served_version() {
        let mut t = BlameTracker::new(2, 2);
        let node = NodeId::new(1);
        let item = ItemId::new(0);
        t.stamp_partitioned(node, item, 3);
        // Serving v3 means the copy *has* the partition-era version:
        // the flag no longer applies, and with nothing propagated the
        // fallback is update-never-sent.
        assert_eq!(t.classify(node, item, 3), BlameCause::UpdateNeverSent);
        // Serving v2 misses v3, whose propagation the partition blocked.
        assert_eq!(t.classify(node, item, 2), BlameCause::Partitioned);
    }

    #[test]
    fn causes_resolve_in_priority_order() {
        let mut t = BlameTracker::new(1, 1);
        let node = NodeId::new(0);
        let item = ItemId::new(0);
        t.note_propagated(item, 5);
        assert_eq!(t.classify(node, item, 2), BlameCause::RaceInFlight);
        t.stamp_lease(node, item, 5);
        assert_eq!(t.classify(node, item, 2), BlameCause::LeaseOrphan);
        t.stamp_crash(node, item, 5);
        assert_eq!(t.classify(node, item, 2), BlameCause::CrashWipe);
        t.stamp_lost(node, item, 5);
        assert_eq!(t.classify(node, item, 2), BlameCause::InvalidateLost);
        t.stamp_partitioned(node, item, 5);
        assert_eq!(t.classify(node, item, 2), BlameCause::Partitioned);
    }

    #[test]
    fn stamps_max_merge_and_counts_accumulate() {
        let mut t = BlameTracker::new(1, 1);
        let node = NodeId::new(0);
        let item = ItemId::new(0);
        t.stamp_lost(node, item, 4);
        t.stamp_lost(node, item, 2); // lower stamp must not regress
        assert_eq!(t.classify(node, item, 3), BlameCause::InvalidateLost);
        assert_eq!(t.classify(node, item, 4), BlameCause::UpdateNeverSent);
        let counts = t.counts();
        assert_eq!(counts[BlameCause::InvalidateLost.index()], 1);
        assert_eq!(counts[BlameCause::UpdateNeverSent.index()], 1);
        assert_eq!(counts.iter().sum::<u64>(), 2);
    }

    #[test]
    fn report_json_lists_every_cause() {
        let report = ConsistencyReport {
            blame: [1, 2, 3, 4, 5, 6],
            delta_violations: 7,
            samples: 8,
        };
        assert_eq!(report.blamed_total(), 21);
        let json = report.to_json();
        assert!(mp2p_trace::json::is_valid(&json), "invalid JSON: {json}");
        for cause in BlameCause::ALL {
            assert!(json.contains(&format!("\"{}\":", cause.label())), "{json}");
        }
        assert!(json.contains("\"stale_attributed\":21"));
        assert!(json.contains("\"delta_violations\":7"));
        assert!(json.contains("\"samples\":8"));
    }

    #[test]
    fn config_gates_are_off_by_default() {
        let cfg = ObservatoryConfig::default();
        assert!(!cfg.enabled());
        cfg.validate();
        let full = ObservatoryConfig::full(SimDuration::from_secs(30));
        assert!(full.enabled());
        assert!(full.blame);
        full.validate();
    }
}
