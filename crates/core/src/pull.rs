//! The simple pull baseline (Lan et al. [Lan03], Section 2/5).
//!
//! "Each time when a query request comes, the cache node [has] to poll
//! the source host to [validate] the status of the data items it caches"
//! (Section 5.1). The poll is a `TTL_BR` = 8-hop flood (the baselines
//! have no relay infrastructure to narrow it); the source answers with a
//! unicast `POLL_ACK_A`/`POLL_ACK_B`. On-demand polling gives pull its
//! short latency (Fig. 8) and its dominating traffic (Fig. 7).

use std::collections::HashMap;

use mp2p_cache::Version;
use mp2p_sim::{ItemId, NodeId};
use mp2p_trace::{ServedBy, SpanPhase};

use crate::config::ProtocolConfig;
use crate::level::ConsistencyLevel;
use crate::msg::ProtoMsg;
use crate::protocol::{Ctx, Protocol, QueryId, Timer};

#[derive(Debug, Clone, Copy)]
struct PendingPoll {
    item: ItemId,
    attempt: u8,
}

/// The pull-based baseline strategy. One instance per node; see the
/// module docs for its semantics.
#[derive(Debug, Clone)]
pub struct SimplePull {
    publishes: bool,
    pending: HashMap<QueryId, PendingPoll>,
}

impl SimplePull {
    /// Creates the baseline state for one node.
    pub fn new(_cfg: &ProtocolConfig, publishes: bool) -> Self {
        SimplePull {
            publishes,
            pending: HashMap::new(),
        }
    }

    fn start_poll(&mut self, ctx: &mut Ctx<'_>, query: QueryId, item: ItemId, attempt: u8) {
        let version = ctx
            .cache
            .peek(item)
            .map(|e| e.version)
            .unwrap_or(Version::INITIAL);
        ctx.phase(query, item, SpanPhase::PollFlood, attempt);
        ctx.flood(
            ctx.cfg.broadcast_ttl,
            ProtoMsg::Poll {
                item,
                version,
                span: Some(query.0),
            },
        );
        self.pending.insert(query, PendingPoll { item, attempt });
        let delay = ctx.cfg.retry_delay(ctx.cfg.poll_timeout, attempt, ctx.rng);
        ctx.set_timer(delay, Timer::PollRetry { query, attempt });
    }

    fn answer_pending_for(&mut self, ctx: &mut Ctx<'_>, item: ItemId, version: Version) {
        let mut queries: Vec<QueryId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.item == item)
            .map(|(&q, _)| q)
            .collect();
        // HashMap iteration order is process-random: sort for determinism.
        queries.sort_unstable();
        for q in queries {
            self.pending.remove(&q);
            // Only the source host answers polls in simple pull.
            ctx.answer(q, version, ServedBy::Source);
        }
    }
}

impl Protocol for SimplePull {
    fn on_init(&mut self, _ctx: &mut Ctx<'_>) {
        // Pull is purely reactive: no periodic machinery.
    }

    fn on_query(
        &mut self,
        ctx: &mut Ctx<'_>,
        query: QueryId,
        item: ItemId,
        _level: ConsistencyLevel,
    ) {
        if item == ctx.own_item.id() {
            let version = ctx.own_item.version();
            ctx.answer(query, version, ServedBy::Source);
            return;
        }
        ctx.cache.touch(item);
        // Every query polls, whatever the level (the baseline has no
        // freshness lease to rely on).
        self.start_poll(ctx, query, item, 1);
    }

    fn on_source_update(&mut self, _ctx: &mut Ctx<'_>) {
        // The next poll will observe the new version.
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::Poll { item, version, span }
                // Only the source host answers polls in simple pull.
                if self.publishes && item == ctx.own_item.id() => {
                    let master = ctx.own_item.version();
                    if version >= master {
                        ctx.send(from, ProtoMsg::PollAckA { item, version, span });
                    } else {
                        ctx.send(
                            from,
                            ProtoMsg::PollAckB {
                                item,
                                version: master,
                                content_bytes: ctx.own_item.size_bytes(),
                                span,
                            },
                        );
                    }
                }
            ProtoMsg::PollAckA { item, version, .. } => {
                self.answer_pending_for(ctx, item, version);
            }
            ProtoMsg::PollAckB { item, version, content_bytes, .. } => {
                if !ctx.cache.refresh(item, version, ctx.now) {
                    ctx.cache.insert(item, version, content_bytes, ctx.now);
                }
                ctx.note_copy(item, version);
                self.answer_pending_for(ctx, item, version);
            }
            _ => {} // pull uses no other message types
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: Timer) {
        if let Timer::PollRetry { query, attempt } = timer {
            let Some(pending) = self.pending.get(&query).copied() else {
                return;
            };
            if attempt != pending.attempt {
                return;
            }
            if attempt >= ctx.cfg.poll_attempts {
                self.pending.remove(&query);
                ctx.fail(query);
                return;
            }
            self.start_poll(ctx, query, pending.item, attempt + 1);
        }
    }

    fn on_undeliverable(&mut self, _ctx: &mut Ctx<'_>, _dest: NodeId, _msg: ProtoMsg) {
        // Poll answers are fire-and-forget; the poller's retry recovers.
    }

    fn on_status_change(&mut self, _ctx: &mut Ctx<'_>, _up: bool) {}

    fn on_coefficient_tick(&mut self, _ctx: &mut Ctx<'_>, _moved: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtxOut;
    use mp2p_cache::{CacheStore, DataItem};
    use mp2p_sim::{SimRng, SimTime};

    struct Fixture {
        cache: CacheStore,
        own: DataItem,
        rng: SimRng,
        cfg: ProtocolConfig,
        proto: SimplePull,
        now: SimTime,
    }

    impl Fixture {
        fn new() -> Self {
            let cfg = ProtocolConfig::default();
            let mut cache = CacheStore::new(10);
            cache.insert(ItemId::new(1), Version::INITIAL, 1_024, SimTime::ZERO);
            Fixture {
                cache,
                own: DataItem::new(ItemId::new(0), 1_024),
                rng: SimRng::from_seed(5, 0),
                cfg,
                proto: SimplePull::new(&cfg, true),
                now: SimTime::ZERO,
            }
        }

        fn run<F: FnOnce(&mut SimplePull, &mut Ctx<'_>)>(&mut self, f: F) -> Vec<CtxOut> {
            let mut proto = self.proto.clone();
            let mut ctx = Ctx::new(
                self.now,
                NodeId::new(0),
                &mut self.cache,
                &mut self.own,
                &mut self.rng,
                &self.cfg,
                1.0,
                true,
            );
            f(&mut proto, &mut ctx);
            let out = ctx.take_outputs();
            self.proto = proto;
            out
        }
    }

    #[test]
    fn every_query_floods_a_poll_with_baseline_ttl() {
        let mut fx = Fixture::new();
        for level in [
            ConsistencyLevel::Weak,
            ConsistencyLevel::Delta,
            ConsistencyLevel::Strong,
        ] {
            let out = fx.run(|p, ctx| {
                p.on_query(ctx, QueryId(level.index() as u64), ItemId::new(1), level)
            });
            assert!(
                out.iter().any(|o| matches!(
                    o,
                    CtxOut::Flood {
                        ttl: 8,
                        msg: ProtoMsg::Poll { .. }
                    }
                )),
                "pull must flood-poll for {level}"
            );
            assert!(out.iter().all(|o| !matches!(o, CtxOut::Answer { .. })));
        }
    }

    #[test]
    fn source_answers_stale_poll_with_content() {
        let mut fx = Fixture::new();
        fx.own.update();
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(2),
                ProtoMsg::Poll {
                    item: ItemId::new(0),
                    version: Version::INITIAL,
                    span: None,
                },
            )
        });
        assert!(out.iter().any(|o| matches!(
            o,
            CtxOut::Send { to, msg: ProtoMsg::PollAckB { version, .. } }
                if *to == NodeId::new(2) && *version == Version::new(1)
        )));
    }

    #[test]
    fn ack_answers_the_pending_query() {
        let mut fx = Fixture::new();
        let _ =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(9), ItemId::new(1), ConsistencyLevel::Strong));
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::PollAckB {
                    item: ItemId::new(1),
                    version: Version::new(3),
                    content_bytes: 1_024,
                    span: None,
                },
            )
        });
        assert!(out
            .iter()
            .any(|o| matches!(o, CtxOut::Answer { query: QueryId(9), version, .. } if *version == Version::new(3))));
        assert_eq!(
            fx.cache.peek(ItemId::new(1)).unwrap().version,
            Version::new(3)
        );
    }

    #[test]
    fn retries_then_fails() {
        let mut fx = Fixture::new();
        let _ =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(4), ItemId::new(1), ConsistencyLevel::Strong));
        let out = fx.run(|p, ctx| {
            p.on_timer(
                ctx,
                Timer::PollRetry {
                    query: QueryId(4),
                    attempt: 1,
                },
            )
        });
        assert!(
            out.iter().any(|o| matches!(o, CtxOut::Flood { .. })),
            "retry re-polls"
        );
        let out = fx.run(|p, ctx| {
            p.on_timer(
                ctx,
                Timer::PollRetry {
                    query: QueryId(4),
                    attempt: 2,
                },
            )
        });
        assert!(out.iter().any(|o| matches!(o, CtxOut::Flood { .. })));
        let out = fx.run(|p, ctx| {
            p.on_timer(
                ctx,
                Timer::PollRetry {
                    query: QueryId(4),
                    attempt: 3,
                },
            )
        });
        assert!(out
            .iter()
            .any(|o| matches!(o, CtxOut::Fail { query: QueryId(4) })));
    }

    #[test]
    fn stale_retry_timers_are_ignored() {
        let mut fx = Fixture::new();
        let _ =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(5), ItemId::new(1), ConsistencyLevel::Strong));
        let _ = fx.run(|p, ctx| {
            p.on_timer(
                ctx,
                Timer::PollRetry {
                    query: QueryId(5),
                    attempt: 1,
                },
            )
        });
        // The attempt-1 timer firing again (duplicate) must be a no-op.
        let out = fx.run(|p, ctx| {
            p.on_timer(
                ctx,
                Timer::PollRetry {
                    query: QueryId(5),
                    attempt: 1,
                },
            )
        });
        assert!(out.is_empty());
    }

    #[test]
    fn uncached_item_poll_acquires_content() {
        let mut fx = Fixture::new();
        let out =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(6), ItemId::new(7), ConsistencyLevel::Weak));
        assert!(out.iter().any(|o| matches!(
            o,
            CtxOut::Flood { msg: ProtoMsg::Poll { version, .. }, .. } if *version == Version::INITIAL
        )));
        let _ = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(7),
                ProtoMsg::PollAckB {
                    item: ItemId::new(7),
                    version: Version::new(2),
                    content_bytes: 1_024,
                    span: None,
                },
            )
        });
        assert!(fx.cache.contains(ItemId::new(7)));
    }
}
