//! The third strategy of Lan et al. [Lan03], which the paper cites but
//! does not plot: **push with adaptive pull**.
//!
//! Sources flood invalidation reports exactly like the simple push
//! baseline. Cache peers, however, do not hold queries for the next
//! report: a peer that has *recently heard* a report for the item trusts
//! its (unmarked) copy and answers immediately; a peer whose report
//! stream has gone quiet — it drifted out of the flood's reach or was
//! disconnected — falls back to *pulling* the item from the source on
//! demand. The result is push-like traffic with pull-like latency, at
//! report-cycle consistency (the same level RPCC's relays provide, but
//! with every source flooding at full TTL instead of a relay overlay).

use std::collections::HashMap;

use mp2p_sim::{ItemId, NodeId, SimDuration, SimTime};
use mp2p_trace::{ServedBy, SpanPhase};

use crate::config::ProtocolConfig;
use crate::level::ConsistencyLevel;
use crate::msg::ProtoMsg;
use crate::protocol::{Ctx, Protocol, QueryId, Timer};

#[derive(Debug, Clone, Copy)]
struct PendingFetch {
    item: ItemId,
    attempt: u8,
}

/// The push-with-adaptive-pull baseline. One instance per node; see the
/// module docs.
#[derive(Debug, Clone)]
pub struct PushAdaptivePull {
    publishes: bool,
    /// When each item's latest invalidation report was heard.
    last_report: HashMap<ItemId, SimTime>,
    /// Queries waiting for a FETCH_REPLY.
    pending: HashMap<QueryId, PendingFetch>,
}

impl PushAdaptivePull {
    /// Creates the baseline state for one node.
    pub fn new(_cfg: &ProtocolConfig, publishes: bool) -> Self {
        PushAdaptivePull {
            publishes,
            last_report: HashMap::new(),
            pending: HashMap::new(),
        }
    }

    /// How long a heard report keeps the push stream "live" for an item:
    /// one report period plus slack for flood jitter.
    fn report_lease(cfg: &ProtocolConfig) -> SimDuration {
        cfg.ttn + SimDuration::from_secs(10)
    }

    fn start_fetch(&mut self, ctx: &mut Ctx<'_>, query: QueryId, item: ItemId, attempt: u8) {
        ctx.phase(query, item, SpanPhase::Fetch, attempt);
        ctx.send(
            item.source_host(),
            ProtoMsg::Fetch {
                item,
                span: Some(query.0),
            },
        );
        self.pending.insert(query, PendingFetch { item, attempt });
        ctx.set_timer(ctx.cfg.fetch_timeout, Timer::PollRetry { query, attempt });
    }

    fn answer_pending_for(&mut self, ctx: &mut Ctx<'_>, item: ItemId) {
        let Some(entry) = ctx.cache.peek(item).copied() else {
            return;
        };
        let mut queries: Vec<QueryId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.item == item)
            .map(|(&q, _)| q)
            .collect();
        // HashMap iteration order is process-random: sort for determinism.
        queries.sort_unstable();
        for q in queries {
            self.pending.remove(&q);
            // Fetch-blocked queries are always served fresh source content.
            ctx.answer(q, entry.version, ServedBy::Source);
        }
    }
}

impl Protocol for PushAdaptivePull {
    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        // Pre-warmed copies start with a live report lease (placement just
        // validated them).
        let items: Vec<ItemId> = ctx.cache.iter().map(|(id, _)| id).collect();
        for item in items {
            self.last_report.insert(item, ctx.now);
        }
        if self.publishes {
            let offset =
                SimDuration::from_millis(ctx.rng.uniform_u64(ctx.cfg.ttn.as_millis().max(1)));
            ctx.set_timer(offset, Timer::Ttn);
        }
    }

    fn on_query(
        &mut self,
        ctx: &mut Ctx<'_>,
        query: QueryId,
        item: ItemId,
        _level: ConsistencyLevel,
    ) {
        if item == ctx.own_item.id() {
            let version = ctx.own_item.version();
            ctx.answer(query, version, ServedBy::Source);
            return;
        }
        let Some(entry) = ctx.cache.touch(item).copied() else {
            self.start_fetch(ctx, query, item, 1);
            return;
        };
        let live = matches!(
            self.last_report.get(&item),
            Some(&heard) if ctx.now.saturating_since(heard) <= Self::report_lease(ctx.cfg)
        );
        if live && !entry.stale {
            // The push stream vouches for the copy: answer immediately.
            ctx.answer(query, entry.version, ServedBy::Cache);
        } else {
            // Marked stale, or we drifted out of the flood's reach:
            // adaptive pull from the source.
            self.start_fetch(ctx, query, item, 1);
        }
    }

    fn on_source_update(&mut self, _ctx: &mut Ctx<'_>) {
        // The next periodic report carries the new version.
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::Invalidation { item, version, .. } => {
                self.last_report.insert(item, ctx.now);
                if let Some(entry) = ctx.cache.peek(item).copied() {
                    if entry.version < version {
                        ctx.cache.mark_stale(item);
                    }
                }
            }
            ProtoMsg::Fetch { item, span } if self.publishes && item == ctx.own_item.id() => {
                ctx.send(
                    from,
                    ProtoMsg::FetchReply {
                        item,
                        version: ctx.own_item.version(),
                        content_bytes: ctx.own_item.size_bytes(),
                        span,
                    },
                );
            }
            ProtoMsg::FetchReply {
                item,
                version,
                content_bytes,
                ..
            } => {
                if !ctx.cache.refresh(item, version, ctx.now) {
                    ctx.cache.insert(item, version, content_bytes, ctx.now);
                }
                ctx.note_copy(item, version);
                // A fetched answer is as good as a report.
                self.last_report.insert(item, ctx.now);
                self.answer_pending_for(ctx, item);
            }
            _ => {} // uses no other message types
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: Timer) {
        match timer {
            Timer::Ttn => {
                if self.publishes && ctx.connected {
                    let item = ctx.own_item.id();
                    let version = ctx.own_item.version();
                    ctx.flood(
                        ctx.cfg.broadcast_ttl,
                        ProtoMsg::Invalidation {
                            item,
                            version,
                            seq: None,
                        },
                    );
                }
                ctx.set_timer(ctx.cfg.ttn, Timer::Ttn);
            }
            Timer::PollRetry { query, attempt } => {
                let Some(pending) = self.pending.get(&query).copied() else {
                    return;
                };
                if attempt != pending.attempt {
                    return;
                }
                if attempt >= ctx.cfg.poll_attempts {
                    self.pending.remove(&query);
                    ctx.fail(query);
                    return;
                }
                self.start_fetch(ctx, query, pending.item, attempt + 1);
            }
            _ => {}
        }
    }

    fn on_undeliverable(&mut self, ctx: &mut Ctx<'_>, _dest: NodeId, msg: ProtoMsg) {
        if let ProtoMsg::Fetch { item, .. } = msg {
            let mut queries: Vec<QueryId> = self
                .pending
                .iter()
                .filter(|(_, p)| p.item == item)
                .map(|(&q, _)| q)
                .collect();
            queries.sort_unstable();
            for q in queries {
                self.pending.remove(&q);
                ctx.fail(q);
            }
        }
    }

    fn on_status_change(&mut self, _ctx: &mut Ctx<'_>, _up: bool) {}

    fn on_coefficient_tick(&mut self, _ctx: &mut Ctx<'_>, _moved: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtxOut;
    use mp2p_cache::{CacheStore, DataItem, Version};
    use mp2p_sim::SimRng;

    struct Fixture {
        cache: CacheStore,
        own: DataItem,
        rng: SimRng,
        cfg: ProtocolConfig,
        proto: PushAdaptivePull,
        now: SimTime,
    }

    impl Fixture {
        fn new() -> Self {
            let cfg = ProtocolConfig::default();
            let mut cache = CacheStore::new(10);
            cache.insert(ItemId::new(1), Version::INITIAL, 1_024, SimTime::ZERO);
            Fixture {
                cache,
                own: DataItem::new(ItemId::new(0), 1_024),
                rng: SimRng::from_seed(8, 0),
                cfg,
                proto: PushAdaptivePull::new(&cfg, true),
                now: SimTime::ZERO,
            }
        }

        fn run<F: FnOnce(&mut PushAdaptivePull, &mut Ctx<'_>)>(&mut self, f: F) -> Vec<CtxOut> {
            let mut proto = self.proto.clone();
            let mut ctx = Ctx::new(
                self.now,
                NodeId::new(0),
                &mut self.cache,
                &mut self.own,
                &mut self.rng,
                &self.cfg,
                1.0,
                true,
            );
            f(&mut proto, &mut ctx);
            let out = ctx.take_outputs();
            self.proto = proto;
            out
        }
    }

    #[test]
    fn live_report_stream_answers_instantly() {
        let mut fx = Fixture::new();
        let _ = fx.run(|p, ctx| p.on_init(ctx));
        let out =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(1), ItemId::new(1), ConsistencyLevel::Strong));
        assert!(
            out.iter().any(|o| matches!(
                o,
                CtxOut::Answer {
                    query: QueryId(1),
                    ..
                }
            )),
            "a fresh report lease must answer without network traffic"
        );
    }

    #[test]
    fn quiet_stream_falls_back_to_pull() {
        let mut fx = Fixture::new();
        let _ = fx.run(|p, ctx| p.on_init(ctx));
        fx.now = SimTime::from_millis(10 * 60_000); // far past the lease
        let out =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(2), ItemId::new(1), ConsistencyLevel::Strong));
        assert!(
            out.iter().any(|o| matches!(
                o,
                CtxOut::Send { to, msg: ProtoMsg::Fetch { .. } } if *to == NodeId::new(1)
            )),
            "a silent report stream must trigger an adaptive pull"
        );
    }

    #[test]
    fn stale_mark_forces_pull_despite_live_lease() {
        let mut fx = Fixture::new();
        let _ = fx.run(|p, ctx| p.on_init(ctx));
        let _ = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::Invalidation {
                    item: ItemId::new(1),
                    version: Version::new(2),
                    seq: None,
                },
            )
        });
        let out =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(3), ItemId::new(1), ConsistencyLevel::Weak));
        assert!(out.iter().any(|o| matches!(
            o,
            CtxOut::Send {
                msg: ProtoMsg::Fetch { .. },
                ..
            }
        )));
        // Reply refreshes and answers.
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::FetchReply {
                    item: ItemId::new(1),
                    version: Version::new(2),
                    content_bytes: 1_024,
                    span: None,
                },
            )
        });
        assert!(out
            .iter()
            .any(|o| matches!(o, CtxOut::Answer { query: QueryId(3), version, .. } if *version == Version::new(2))));
    }

    #[test]
    fn source_floods_reports_like_push() {
        let mut fx = Fixture::new();
        let out = fx.run(|p, ctx| p.on_timer(ctx, Timer::Ttn));
        assert!(out.iter().any(|o| matches!(
            o,
            CtxOut::Flood {
                ttl: 8,
                msg: ProtoMsg::Invalidation { .. }
            }
        )));
    }

    #[test]
    fn fetch_retries_then_fails() {
        let mut fx = Fixture::new();
        fx.now = SimTime::from_millis(10 * 60_000);
        let _ =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(4), ItemId::new(1), ConsistencyLevel::Strong));
        for attempt in 1..=2 {
            let out = fx.run(|p, ctx| {
                p.on_timer(
                    ctx,
                    Timer::PollRetry {
                        query: QueryId(4),
                        attempt,
                    },
                )
            });
            assert!(out.iter().any(|o| matches!(
                o,
                CtxOut::Send {
                    msg: ProtoMsg::Fetch { .. },
                    ..
                }
            )));
        }
        let out = fx.run(|p, ctx| {
            p.on_timer(
                ctx,
                Timer::PollRetry {
                    query: QueryId(4),
                    attempt: 3,
                },
            )
        });
        assert!(out
            .iter()
            .any(|o| matches!(o, CtxOut::Fail { query: QueryId(4) })));
    }
}
