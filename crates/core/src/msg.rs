//! The protocol message set (Fig. 6(a)) plus the baselines' fetch pair.

use mp2p_cache::Version;
use mp2p_metrics::MessageClass;
use mp2p_sim::ItemId;

use crate::recovery::VersionDigest;

/// Fixed per-message header overhead in bytes (ids, versions, MAC/IP
/// framing).
pub(crate) const HEADER_BYTES: u32 = 40;

/// An application-layer message of the consistency protocols.
///
/// The variants mirror Fig. 6(a) of the paper; `Fetch`/`FetchReply` are
/// the cache-miss/refresh transfer used by the push and pull baselines.
/// Messages carrying item content (`Update`, `SendNew`, `PollAckB`,
/// `FetchReply`) have sizes that include `content_bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoMsg {
    /// `INVALIDATION(ID_d, OP_d, VER_d)` — periodic source flood.
    Invalidation {
        /// The advertised item.
        item: ItemId,
        /// Current master version.
        version: Version,
        /// Recovery-layer sequence number for receiver-side duplicate
        /// suppression. Rides in the fixed 40-byte header (it replaces
        /// framing slack), so it never changes [`ProtoMsg::size_bytes`];
        /// `None` when acked delivery is off.
        seq: Option<u64>,
    },
    /// `UPDATE(ID_d, OP_d, RP_d, CT_d, VER_d)` — source pushes fresh
    /// content to a relay peer.
    Update {
        /// The updated item.
        item: ItemId,
        /// New master version.
        version: Version,
        /// Content payload size.
        content_bytes: u32,
        /// Recovery-layer sequence number; the receiver ACKs it and the
        /// sender retransmits until acknowledged (see
        /// [`ProtoMsg::Invalidation::seq`] for wire-size rules).
        seq: Option<u64>,
    },
    /// `GET_NEW(ID_d, OP_d, RP_d)` — relay asks the source for content it
    /// missed while disconnected.
    GetNew {
        /// The stale item.
        item: ItemId,
    },
    /// `SEND_NEW(ID_d, RP_d, CT_d, VER_d)` — source answers `GET_NEW`.
    SendNew {
        /// The item.
        item: ItemId,
        /// Master version shipped.
        version: Version,
        /// Content payload size.
        content_bytes: u32,
    },
    /// `APPLY(ID_d, OP_d, RP_d)` — candidate applies for relay promotion.
    Apply {
        /// The item the candidate wants to relay.
        item: ItemId,
    },
    /// `APPLY_ACK(ID_d, OP_d, RP_d)` — source approves the candidacy.
    ApplyAck {
        /// The item.
        item: ItemId,
        /// Master version at approval time (lets a stale new relay
        /// resynchronise immediately).
        version: Version,
    },
    /// `CANCEL(ID_d, OP_d, RP_d)` — relay resigns.
    Cancel {
        /// The item.
        item: ItemId,
    },
    /// `POLL(ID_d, CP_d, VER_d)` — cache peer checks its copy.
    Poll {
        /// The polled item.
        item: ItemId,
        /// The poller's cached version.
        version: Version,
        /// The query span this poll serves. Diagnostic metadata only: it
        /// rides outside [`ProtoMsg::size_bytes`] and never influences
        /// protocol decisions; responders echo it into their acks so the
        /// flight recorder can attribute frames to spans.
        span: Option<u64>,
    },
    /// `POLL_ACK_A(ID_d, CP_d, VER_d)` — the poller's copy is up to date.
    PollAckA {
        /// The item.
        item: ItemId,
        /// The confirmed version.
        version: Version,
        /// Echo of the poll's span tag (see [`ProtoMsg::Poll::span`]).
        span: Option<u64>,
    },
    /// `POLL_ACK_B(ID_d, CP_d, VER_d, CT_d)` — the poller's copy was
    /// stale; fresh content attached.
    PollAckB {
        /// The item.
        item: ItemId,
        /// The fresh version.
        version: Version,
        /// Content payload size.
        content_bytes: u32,
        /// Echo of the poll's span tag (see [`ProtoMsg::Poll::span`]).
        span: Option<u64>,
    },
    /// Baseline cache-miss/refresh request to the source host.
    Fetch {
        /// The wanted item.
        item: ItemId,
        /// The query span this fetch serves (see [`ProtoMsg::Poll::span`]).
        span: Option<u64>,
    },
    /// Baseline fetch answer with content.
    FetchReply {
        /// The item.
        item: ItemId,
        /// Master version shipped.
        version: Version,
        /// Content payload size.
        content_bytes: u32,
        /// Echo of the fetch's span tag (see [`ProtoMsg::Poll::span`]).
        span: Option<u64>,
    },
    /// **Extension (future work §6 item 3):** a replica write routed to
    /// the item's source host for serialisation (primary-based
    /// replication). Handled by the simulation driver, not the
    /// consistency protocols — the applied write propagates through
    /// whatever strategy is running.
    WriteRequest {
        /// The written item.
        item: ItemId,
        /// New content payload size.
        content_bytes: u32,
    },
    /// The source's acknowledgement of an applied replica write, carrying
    /// the version the write was serialised as.
    WriteAck {
        /// The written item.
        item: ItemId,
        /// Version assigned by the source.
        version: Version,
    },
    /// **Recovery:** a rejoining node floods its `item → version`
    /// digest so neighbors can point out stale copies before the node
    /// serves them.
    ResyncDigest {
        /// The advertised cache snapshot chunk.
        digest: VersionDigest,
    },
    /// **Recovery:** unicast reply to a [`ProtoMsg::ResyncDigest`],
    /// carrying only the entries the replier knows newer versions for.
    ResyncAck {
        /// The newer-known versions.
        digest: VersionDigest,
    },
    /// **Recovery:** receiver acknowledgement of a sequence-stamped
    /// [`ProtoMsg::Update`]; settles the sender's retransmit entry.
    DeliveryAck {
        /// The acknowledged item.
        item: ItemId,
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// **Recovery:** an orphan-expiring relay grants its relay duty for
    /// `item` to an elected cached neighbor.
    Handover {
        /// The item whose relay duty is handed over.
        item: ItemId,
        /// The last version the expiring relay confirmed.
        version: Version,
    },
}

impl ProtoMsg {
    /// The item this message concerns.
    pub fn item(&self) -> ItemId {
        match *self {
            ProtoMsg::Invalidation { item, .. }
            | ProtoMsg::Update { item, .. }
            | ProtoMsg::GetNew { item }
            | ProtoMsg::SendNew { item, .. }
            | ProtoMsg::Apply { item }
            | ProtoMsg::ApplyAck { item, .. }
            | ProtoMsg::Cancel { item }
            | ProtoMsg::Poll { item, .. }
            | ProtoMsg::PollAckA { item, .. }
            | ProtoMsg::PollAckB { item, .. }
            | ProtoMsg::Fetch { item, .. }
            | ProtoMsg::FetchReply { item, .. }
            | ProtoMsg::WriteRequest { item, .. }
            | ProtoMsg::WriteAck { item, .. }
            | ProtoMsg::DeliveryAck { item, .. }
            | ProtoMsg::Handover { item, .. } => item,
            ProtoMsg::ResyncDigest { digest } | ProtoMsg::ResyncAck { digest } => {
                digest.first_item()
            }
        }
    }

    /// On-air size in bytes (header plus any attached content).
    pub fn size_bytes(&self) -> u32 {
        let content = match *self {
            ProtoMsg::Update { content_bytes, .. }
            | ProtoMsg::SendNew { content_bytes, .. }
            | ProtoMsg::PollAckB { content_bytes, .. }
            | ProtoMsg::FetchReply { content_bytes, .. }
            | ProtoMsg::WriteRequest { content_bytes, .. } => content_bytes,
            ProtoMsg::ResyncDigest { digest } | ProtoMsg::ResyncAck { digest } => {
                digest.wire_bytes()
            }
            _ => 0,
        };
        HEADER_BYTES + content
    }

    /// The query span this message serves, if it carries one (the
    /// poll/fetch request-reply traffic). Diagnostic metadata only —
    /// see [`ProtoMsg::Poll::span`].
    pub fn span(&self) -> Option<u64> {
        match *self {
            ProtoMsg::Poll { span, .. }
            | ProtoMsg::PollAckA { span, .. }
            | ProtoMsg::PollAckB { span, .. }
            | ProtoMsg::Fetch { span, .. }
            | ProtoMsg::FetchReply { span, .. } => span,
            _ => None,
        }
    }

    /// The traffic-accounting class of this message.
    pub fn class(&self) -> MessageClass {
        match self {
            ProtoMsg::Invalidation { .. } => MessageClass::Invalidation,
            ProtoMsg::Update { .. } => MessageClass::Update,
            ProtoMsg::GetNew { .. } => MessageClass::GetNew,
            ProtoMsg::SendNew { .. } => MessageClass::SendNew,
            ProtoMsg::Apply { .. } => MessageClass::Apply,
            ProtoMsg::ApplyAck { .. } => MessageClass::ApplyAck,
            ProtoMsg::Cancel { .. } => MessageClass::Cancel,
            ProtoMsg::Poll { .. } => MessageClass::Poll,
            ProtoMsg::PollAckA { .. } => MessageClass::PollAckA,
            ProtoMsg::PollAckB { .. } => MessageClass::PollAckB,
            ProtoMsg::Fetch { .. } => MessageClass::Fetch,
            ProtoMsg::FetchReply { .. } => MessageClass::FetchReply,
            ProtoMsg::WriteRequest { .. } => MessageClass::WriteRequest,
            ProtoMsg::WriteAck { .. } => MessageClass::WriteAck,
            ProtoMsg::ResyncDigest { .. } => MessageClass::ResyncDigest,
            ProtoMsg::ResyncAck { .. } => MessageClass::ResyncAck,
            ProtoMsg::DeliveryAck { .. } => MessageClass::DeliveryAck,
            ProtoMsg::Handover { .. } => MessageClass::Handover,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_messages_are_bigger() {
        let small = ProtoMsg::Poll {
            item: ItemId::new(0),
            version: Version::new(1),
            span: None,
        };
        let big = ProtoMsg::PollAckB {
            item: ItemId::new(0),
            version: Version::new(2),
            content_bytes: 1_024,
            span: None,
        };
        assert_eq!(small.size_bytes(), HEADER_BYTES);
        assert_eq!(big.size_bytes(), HEADER_BYTES + 1_024);
    }

    #[test]
    fn span_tag_never_changes_the_wire_size() {
        // The span is out-of-band diagnostic metadata; a tagged poll
        // must cost exactly the same bytes as an untagged one.
        let untagged = ProtoMsg::Poll {
            item: ItemId::new(0),
            version: Version::new(1),
            span: None,
        };
        let tagged = ProtoMsg::Poll {
            item: ItemId::new(0),
            version: Version::new(1),
            span: Some(42),
        };
        assert_eq!(untagged.size_bytes(), tagged.size_bytes());
        assert_eq!(tagged.span(), Some(42));
        assert_eq!(
            ProtoMsg::Invalidation {
                item: ItemId::new(0),
                version: Version::new(1),
                seq: None,
            }
            .span(),
            None
        );
    }

    #[test]
    fn seq_stamp_never_changes_the_wire_size() {
        // The recovery sequence number rides in the fixed header; a
        // stamped frame must cost exactly the same bytes as a bare one.
        let bare = ProtoMsg::Update {
            item: ItemId::new(0),
            version: Version::new(2),
            content_bytes: 1_024,
            seq: None,
        };
        let stamped = ProtoMsg::Update {
            item: ItemId::new(0),
            version: Version::new(2),
            content_bytes: 1_024,
            seq: Some(7),
        };
        assert_eq!(bare.size_bytes(), stamped.size_bytes());
        let inv = ProtoMsg::Invalidation {
            item: ItemId::new(0),
            version: Version::new(2),
            seq: Some(7),
        };
        assert_eq!(inv.size_bytes(), HEADER_BYTES);
    }

    #[test]
    fn recovery_messages_have_classes_items_and_sizes() {
        use crate::recovery::VersionDigest;
        let digest = VersionDigest::new(&[
            (ItemId::new(5), Version::new(3)),
            (ItemId::new(9), Version::new(1)),
        ]);
        let msgs = [
            ProtoMsg::ResyncDigest { digest },
            ProtoMsg::ResyncAck { digest },
            ProtoMsg::DeliveryAck {
                item: ItemId::new(5),
                seq: 12,
            },
            ProtoMsg::Handover {
                item: ItemId::new(5),
                version: Version::new(3),
            },
        ];
        let mut classes: Vec<_> = msgs.iter().map(|m| m.class()).collect();
        classes.dedup();
        assert_eq!(classes.len(), msgs.len());
        for m in &msgs {
            assert_eq!(m.item(), ItemId::new(5), "first digest entry stands in");
            assert_eq!(m.span(), None);
        }
        assert_eq!(
            msgs[0].size_bytes(),
            HEADER_BYTES + digest.wire_bytes(),
            "digest frames pay per entry"
        );
        assert_eq!(msgs[2].size_bytes(), HEADER_BYTES);
    }

    #[test]
    fn class_and_item_roundtrip() {
        let msgs = [
            ProtoMsg::Invalidation {
                item: ItemId::new(3),
                version: Version::new(1),
                seq: None,
            },
            ProtoMsg::GetNew {
                item: ItemId::new(3),
            },
            ProtoMsg::Apply {
                item: ItemId::new(3),
            },
            ProtoMsg::ApplyAck {
                item: ItemId::new(3),
                version: Version::new(1),
            },
            ProtoMsg::Cancel {
                item: ItemId::new(3),
            },
            ProtoMsg::Fetch {
                item: ItemId::new(3),
                span: None,
            },
        ];
        let mut classes: Vec<_> = msgs.iter().map(|m| m.class()).collect();
        classes.dedup();
        assert_eq!(
            classes.len(),
            msgs.len(),
            "each message maps to its own class"
        );
        for m in msgs {
            assert_eq!(m.item(), ItemId::new(3));
        }
    }
}
