//! Protocol timing and threshold parameters (Table 1 and Section 4).

use mp2p_sim::{SimDuration, SimRng};

use crate::recovery::RecoveryConfig;

/// All protocol-level tunables, defaulting to Table 1 of the paper.
///
/// Parameters the paper leaves open are documented as such and set to the
/// values DESIGN.md Section 5 justifies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolConfig {
    /// `TTN_OP`: the source's invalidation/notification period (2 min).
    pub ttn: SimDuration,
    /// `TTR_RP`: how long a relay copy counts as fresh after a
    /// confirmation (1.5 min).
    pub ttr: SimDuration,
    /// `TTP_CP`: how long a cache copy satisfies Δ-consistency after a
    /// validation; TTP *is* the Δ value (Section 4.4) (4 min).
    pub ttp: SimDuration,
    /// TTL of RPCC's invalidation floods (`TTL_BR` RPS row: 3 hops).
    pub invalidation_ttl: u8,
    /// TTL of the baselines' broadcasts (`TTL_BR`: 8 hops).
    pub broadcast_ttl: u8,
    /// Initial TTL of a cache peer's POLL flood (paper: "broadcast POLL",
    /// scope unspecified; DESIGN.md §5.1 — expanding ring from 2).
    pub poll_ttl: u8,
    /// Upper TTL bound the POLL ring may expand to.
    pub poll_ttl_max: u8,
    /// How long a poller waits for a POLL_ACK before retrying wider.
    pub poll_timeout: SimDuration,
    /// POLL attempts (initial + retries) before the query fails.
    pub poll_attempts: u8,
    /// After the last POLL attempt, how long the query lingers for a late
    /// answer from a relay that was holding the poll for the next
    /// INVALIDATION (Fig. 6(c) line 16) before it finally fails.
    pub poll_grace: SimDuration,
    /// Retry timeout for unicast content fetches (cache misses, push
    /// refreshes). Longer than [`Self::poll_timeout`] because a routed
    /// unicast may first need a route discovery round.
    pub fetch_timeout: SimDuration,
    /// φ: the coefficient recomputation period (paper: "every period of
    /// time φ", value unspecified; set to TTN).
    pub phi: SimDuration,
    /// ω: recency weight of the coefficient EWMAs (0.2).
    pub omega: f64,
    /// μ_CAR threshold (0.15): relay candidates need `CAR < μ_CAR`.
    pub mu_car: f64,
    /// μ_CS threshold (0.6): relay candidates need `CS > μ_CS`.
    pub mu_cs: f64,
    /// μ_CE threshold (0.6): relay candidates need `CE > μ_CE`.
    pub mu_ce: f64,
    /// Data-item content size in bytes (drives transfer costs).
    pub content_bytes: u32,
    /// How long a push-baseline query waits for the next invalidation
    /// report before falling back to a direct fetch.
    pub push_wait_timeout: SimDuration,
    /// How long a relay keeps an unanswerable POLL queued while waiting
    /// for the next INVALIDATION (Fig. 6(c) line 16).
    pub relay_poll_hold: SimDuration,
    /// Consecutive failing coefficient ticks before a relay/candidate is
    /// demoted. The paper demotes on the first failing tick, but with
    /// Table 1's thresholds the qualification test sits exactly at its
    /// expectation, so single-tick demotion makes the relay population
    /// flap on Poisson noise (DESIGN.md §5). 1 reproduces the paper's
    /// literal rule.
    pub demote_grace_ticks: u8,
    /// **Extension (paper's future work §6, item 1):** adapt the
    /// push/pull frequencies to runtime conditions. Sources track their
    /// own inter-update gaps and stretch/shrink the invalidation period;
    /// cache peers grow a per-item TTP on every confirmation
    /// (`POLL_ACK_A`) and shrink it on every change (`POLL_ACK_B`) —
    /// the classic adaptive-TTL rule. Off by default (paper behaviour).
    pub adaptive: bool,
    /// Bounds for the adaptive machinery: effective TTN/TTP stay within
    /// `[base / adaptive_span, base * adaptive_span]`.
    pub adaptive_span: f64,
    /// **Extension (paper's future work §6, item 2):** cap the number of
    /// relay peers a source approves for its item ("the number of relay
    /// peers cannot be controlled" in the base protocol). `None`
    /// reproduces the paper: every qualified applicant is approved.
    pub max_relays_per_item: Option<usize>,
    /// **Hardening:** multiplicative backoff applied to retry delays
    /// (POLL retries, and — when `> 1` — re-APPLY attempts). `1.0`
    /// reproduces the paper's fixed retry period exactly.
    pub retry_backoff: f64,
    /// **Hardening:** fraction of deterministic jitter added to each
    /// retry delay (the delay is stretched by up to this fraction, drawn
    /// from the caller's protocol RNG stream). `0.0` draws nothing from
    /// the RNG, keeping un-hardened runs bit-identical.
    pub retry_jitter: f64,
    /// **Hardening:** how long past its TTR expiry a relay copy may sit
    /// without any source contact before the peer concludes the source
    /// is unreachable and demotes itself with a best-effort CANCEL
    /// (a *relay lease*). `None` reproduces the paper: relays only
    /// demote on coefficient failure or explicit sweep.
    pub relay_orphan_grace: Option<SimDuration>,
    /// **Hardening:** when routed POLL retries are exhausted, fall back
    /// to one max-TTL flood aimed at reaching the source before the
    /// query fails (graceful degradation instead of hard failure).
    /// `false` reproduces the paper.
    pub fallback_flood: bool,
    /// **Recovery layer (self-healing):** rejoin resync, acknowledged
    /// invalidation/update delivery with bounded retransmit, and
    /// relay-lease handover. Fully off by default — recovery-off runs
    /// stay byte-identical to pre-recovery output.
    pub recovery: RecoveryConfig,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            ttn: SimDuration::from_mins(2),
            ttr: SimDuration::from_millis(90_000), // 1.5 min
            ttp: SimDuration::from_mins(4),
            invalidation_ttl: 3,
            broadcast_ttl: 8,
            poll_ttl: 2,
            poll_ttl_max: 8,
            poll_timeout: SimDuration::from_millis(500),
            poll_attempts: 3,
            poll_grace: SimDuration::from_secs(5),
            fetch_timeout: SimDuration::from_secs(4),
            phi: SimDuration::from_mins(2),
            omega: 0.2,
            mu_car: 0.15,
            mu_cs: 0.6,
            mu_ce: 0.6,
            content_bytes: 1_024,
            push_wait_timeout: SimDuration::from_mins(3),
            relay_poll_hold: SimDuration::from_mins(2),
            demote_grace_ticks: 2,
            adaptive: false,
            adaptive_span: 4.0,
            max_relays_per_item: None,
            retry_backoff: 1.0,
            retry_jitter: 0.0,
            relay_orphan_grace: None,
            fallback_flood: false,
            recovery: RecoveryConfig::off(),
        }
    }
}

impl ProtocolConfig {
    /// The TTL of the `attempt`-th POLL (1-based): an expanding ring that
    /// doubles from [`Self::poll_ttl`] up to [`Self::poll_ttl_max`].
    pub fn poll_ttl_for_attempt(&self, attempt: u8) -> u8 {
        let doublings = attempt.saturating_sub(1).min(6);
        let ttl = u32::from(self.poll_ttl) << doublings;
        ttl.min(u32::from(self.poll_ttl_max)).max(1) as u8
    }

    /// The delay before the `attempt`-th retry (1-based) of a timer
    /// whose base period is `base`: exponential backoff by
    /// [`Self::retry_backoff`] per prior attempt (exponent capped at 6),
    /// stretched by up to [`Self::retry_jitter`] of itself.
    ///
    /// With the default `retry_backoff = 1.0` / `retry_jitter = 0.0`
    /// this returns `base` unchanged and draws **nothing** from `rng`,
    /// so un-hardened runs replay bit-identically.
    pub fn retry_delay(&self, base: SimDuration, attempt: u8, rng: &mut SimRng) -> SimDuration {
        let mut delay = base;
        if self.retry_backoff > 1.0 {
            let exponent = i32::from(attempt.saturating_sub(1).min(6));
            delay = delay.mul_f64(self.retry_backoff.powi(exponent));
        }
        if self.retry_jitter > 0.0 {
            delay = delay.mul_f64(1.0 + self.retry_jitter * rng.uniform_f64());
        }
        delay
    }

    /// Switches on every hardening extension with its recommended
    /// setting: doubling backoff, 30% retry jitter, a 30-second relay
    /// orphan lease past TTR expiry, and fallback flooding. Used by the
    /// chaos harness and the `--harden` experiment flag.
    #[must_use]
    pub fn hardened(mut self) -> Self {
        self.retry_backoff = 2.0;
        self.retry_jitter = 0.3;
        self.relay_orphan_grace = Some(SimDuration::from_secs(30));
        self.fallback_flood = true;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical parameter combinations (zero periods,
    /// thresholds outside `(0, 1]`, zero TTLs).
    pub fn validate(&self) {
        assert!(!self.ttn.is_zero(), "TTN must be positive");
        assert!(!self.ttr.is_zero(), "TTR must be positive");
        assert!(!self.ttp.is_zero(), "TTP must be positive");
        assert!(!self.phi.is_zero(), "phi must be positive");
        assert!(
            self.invalidation_ttl >= 1,
            "invalidation TTL must be at least 1 hop"
        );
        assert!(
            self.broadcast_ttl >= 1,
            "broadcast TTL must be at least 1 hop"
        );
        assert!(
            self.poll_ttl >= 1 && self.poll_ttl <= self.poll_ttl_max,
            "bad poll TTL range"
        );
        assert!(self.poll_attempts >= 1, "need at least one poll attempt");
        assert!((0.0..=1.0).contains(&self.omega), "omega must be in [0,1]");
        for (name, mu) in [
            ("mu_car", self.mu_car),
            ("mu_cs", self.mu_cs),
            ("mu_ce", self.mu_ce),
        ] {
            assert!(mu > 0.0 && mu <= 1.0, "{name} must be in (0,1], got {mu}");
        }
        assert!(self.content_bytes > 0, "content size must be positive");
        assert!(
            self.demote_grace_ticks >= 1,
            "demotion needs at least one failing tick"
        );
        assert!(
            self.adaptive_span >= 1.0 && self.adaptive_span.is_finite(),
            "adaptive span must be >= 1"
        );
        if let Some(cap) = self.max_relays_per_item {
            assert!(cap >= 1, "a relay cap of zero disables the protocol");
        }
        assert!(
            self.retry_backoff >= 1.0 && self.retry_backoff.is_finite(),
            "retry backoff must be >= 1"
        );
        assert!(
            (0.0..=1.0).contains(&self.retry_jitter),
            "retry jitter must be in [0,1]"
        );
        if let Some(grace) = self.relay_orphan_grace {
            assert!(
                !grace.is_zero(),
                "an orphan grace of zero would demote relays on every sweep"
            );
        }
        self.recovery.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let c = ProtocolConfig::default();
        assert_eq!(c.ttn, SimDuration::from_mins(2));
        assert_eq!(c.ttr.as_millis(), 90_000);
        assert_eq!(c.ttp, SimDuration::from_mins(4));
        assert_eq!(c.invalidation_ttl, 3);
        assert_eq!(c.broadcast_ttl, 8);
        assert_eq!(c.omega, 0.2);
        assert_eq!(c.mu_car, 0.15);
        assert_eq!(c.mu_cs, 0.6);
        assert_eq!(c.mu_ce, 0.6);
        c.validate();
    }

    #[test]
    fn poll_ring_expands_and_caps() {
        let c = ProtocolConfig::default();
        assert_eq!(c.poll_ttl_for_attempt(1), 2);
        assert_eq!(c.poll_ttl_for_attempt(2), 4);
        assert_eq!(c.poll_ttl_for_attempt(3), 8);
        assert_eq!(c.poll_ttl_for_attempt(4), 8, "capped at poll_ttl_max");
        assert_eq!(c.poll_ttl_for_attempt(200), 8, "doubling saturates safely");
    }

    #[test]
    fn default_retry_delay_is_exact_and_draws_nothing() {
        let c = ProtocolConfig::default();
        let mut rng = SimRng::from_seed(1, 2);
        let before = rng.uniform_f64();
        let mut rng = SimRng::from_seed(1, 2);
        for attempt in 1..=5 {
            assert_eq!(
                c.retry_delay(c.poll_timeout, attempt, &mut rng),
                c.poll_timeout,
                "backoff 1.0 must not change the period"
            );
        }
        assert_eq!(
            rng.uniform_f64(),
            before,
            "default hardening must not consume RNG draws"
        );
    }

    #[test]
    fn hardened_backoff_grows_and_jitters_within_bound() {
        let c = ProtocolConfig::default().hardened();
        c.validate();
        let mut rng = SimRng::from_seed(1, 2);
        let base = c.poll_timeout;
        let mut prev = SimDuration::ZERO;
        for attempt in 1..=4u8 {
            let d = c.retry_delay(base, attempt, &mut rng);
            let nominal = base.mul_f64(2.0f64.powi(i32::from(attempt - 1)));
            assert!(d >= nominal, "jitter only stretches, never shrinks");
            assert!(d <= nominal.mul_f64(1.0 + c.retry_jitter), "jitter bounded");
            assert!(d > prev, "delays grow across attempts");
            prev = d;
        }
    }

    #[test]
    #[should_panic(expected = "TTN must be positive")]
    fn validate_rejects_zero_ttn() {
        let c = ProtocolConfig {
            ttn: SimDuration::ZERO,
            ..ProtocolConfig::default()
        };
        c.validate();
    }
}
