//! Protocol timing and threshold parameters (Table 1 and Section 4).

use mp2p_sim::SimDuration;

/// All protocol-level tunables, defaulting to Table 1 of the paper.
///
/// Parameters the paper leaves open are documented as such and set to the
/// values DESIGN.md Section 5 justifies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolConfig {
    /// `TTN_OP`: the source's invalidation/notification period (2 min).
    pub ttn: SimDuration,
    /// `TTR_RP`: how long a relay copy counts as fresh after a
    /// confirmation (1.5 min).
    pub ttr: SimDuration,
    /// `TTP_CP`: how long a cache copy satisfies Δ-consistency after a
    /// validation; TTP *is* the Δ value (Section 4.4) (4 min).
    pub ttp: SimDuration,
    /// TTL of RPCC's invalidation floods (`TTL_BR` RPS row: 3 hops).
    pub invalidation_ttl: u8,
    /// TTL of the baselines' broadcasts (`TTL_BR`: 8 hops).
    pub broadcast_ttl: u8,
    /// Initial TTL of a cache peer's POLL flood (paper: "broadcast POLL",
    /// scope unspecified; DESIGN.md §5.1 — expanding ring from 2).
    pub poll_ttl: u8,
    /// Upper TTL bound the POLL ring may expand to.
    pub poll_ttl_max: u8,
    /// How long a poller waits for a POLL_ACK before retrying wider.
    pub poll_timeout: SimDuration,
    /// POLL attempts (initial + retries) before the query fails.
    pub poll_attempts: u8,
    /// After the last POLL attempt, how long the query lingers for a late
    /// answer from a relay that was holding the poll for the next
    /// INVALIDATION (Fig. 6(c) line 16) before it finally fails.
    pub poll_grace: SimDuration,
    /// Retry timeout for unicast content fetches (cache misses, push
    /// refreshes). Longer than [`Self::poll_timeout`] because a routed
    /// unicast may first need a route discovery round.
    pub fetch_timeout: SimDuration,
    /// φ: the coefficient recomputation period (paper: "every period of
    /// time φ", value unspecified; set to TTN).
    pub phi: SimDuration,
    /// ω: recency weight of the coefficient EWMAs (0.2).
    pub omega: f64,
    /// μ_CAR threshold (0.15): relay candidates need `CAR < μ_CAR`.
    pub mu_car: f64,
    /// μ_CS threshold (0.6): relay candidates need `CS > μ_CS`.
    pub mu_cs: f64,
    /// μ_CE threshold (0.6): relay candidates need `CE > μ_CE`.
    pub mu_ce: f64,
    /// Data-item content size in bytes (drives transfer costs).
    pub content_bytes: u32,
    /// How long a push-baseline query waits for the next invalidation
    /// report before falling back to a direct fetch.
    pub push_wait_timeout: SimDuration,
    /// How long a relay keeps an unanswerable POLL queued while waiting
    /// for the next INVALIDATION (Fig. 6(c) line 16).
    pub relay_poll_hold: SimDuration,
    /// Consecutive failing coefficient ticks before a relay/candidate is
    /// demoted. The paper demotes on the first failing tick, but with
    /// Table 1's thresholds the qualification test sits exactly at its
    /// expectation, so single-tick demotion makes the relay population
    /// flap on Poisson noise (DESIGN.md §5). 1 reproduces the paper's
    /// literal rule.
    pub demote_grace_ticks: u8,
    /// **Extension (paper's future work §6, item 1):** adapt the
    /// push/pull frequencies to runtime conditions. Sources track their
    /// own inter-update gaps and stretch/shrink the invalidation period;
    /// cache peers grow a per-item TTP on every confirmation
    /// (`POLL_ACK_A`) and shrink it on every change (`POLL_ACK_B`) —
    /// the classic adaptive-TTL rule. Off by default (paper behaviour).
    pub adaptive: bool,
    /// Bounds for the adaptive machinery: effective TTN/TTP stay within
    /// `[base / adaptive_span, base * adaptive_span]`.
    pub adaptive_span: f64,
    /// **Extension (paper's future work §6, item 2):** cap the number of
    /// relay peers a source approves for its item ("the number of relay
    /// peers cannot be controlled" in the base protocol). `None`
    /// reproduces the paper: every qualified applicant is approved.
    pub max_relays_per_item: Option<usize>,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig {
            ttn: SimDuration::from_mins(2),
            ttr: SimDuration::from_millis(90_000), // 1.5 min
            ttp: SimDuration::from_mins(4),
            invalidation_ttl: 3,
            broadcast_ttl: 8,
            poll_ttl: 2,
            poll_ttl_max: 8,
            poll_timeout: SimDuration::from_millis(500),
            poll_attempts: 3,
            poll_grace: SimDuration::from_secs(5),
            fetch_timeout: SimDuration::from_secs(4),
            phi: SimDuration::from_mins(2),
            omega: 0.2,
            mu_car: 0.15,
            mu_cs: 0.6,
            mu_ce: 0.6,
            content_bytes: 1_024,
            push_wait_timeout: SimDuration::from_mins(3),
            relay_poll_hold: SimDuration::from_mins(2),
            demote_grace_ticks: 2,
            adaptive: false,
            adaptive_span: 4.0,
            max_relays_per_item: None,
        }
    }
}

impl ProtocolConfig {
    /// The TTL of the `attempt`-th POLL (1-based): an expanding ring that
    /// doubles from [`Self::poll_ttl`] up to [`Self::poll_ttl_max`].
    pub fn poll_ttl_for_attempt(&self, attempt: u8) -> u8 {
        let doublings = attempt.saturating_sub(1).min(6);
        let ttl = u32::from(self.poll_ttl) << doublings;
        ttl.min(u32::from(self.poll_ttl_max)).max(1) as u8
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical parameter combinations (zero periods,
    /// thresholds outside `(0, 1]`, zero TTLs).
    pub fn validate(&self) {
        assert!(!self.ttn.is_zero(), "TTN must be positive");
        assert!(!self.ttr.is_zero(), "TTR must be positive");
        assert!(!self.ttp.is_zero(), "TTP must be positive");
        assert!(!self.phi.is_zero(), "phi must be positive");
        assert!(
            self.invalidation_ttl >= 1,
            "invalidation TTL must be at least 1 hop"
        );
        assert!(
            self.broadcast_ttl >= 1,
            "broadcast TTL must be at least 1 hop"
        );
        assert!(
            self.poll_ttl >= 1 && self.poll_ttl <= self.poll_ttl_max,
            "bad poll TTL range"
        );
        assert!(self.poll_attempts >= 1, "need at least one poll attempt");
        assert!((0.0..=1.0).contains(&self.omega), "omega must be in [0,1]");
        for (name, mu) in [
            ("mu_car", self.mu_car),
            ("mu_cs", self.mu_cs),
            ("mu_ce", self.mu_ce),
        ] {
            assert!(mu > 0.0 && mu <= 1.0, "{name} must be in (0,1], got {mu}");
        }
        assert!(self.content_bytes > 0, "content size must be positive");
        assert!(
            self.demote_grace_ticks >= 1,
            "demotion needs at least one failing tick"
        );
        assert!(
            self.adaptive_span >= 1.0 && self.adaptive_span.is_finite(),
            "adaptive span must be >= 1"
        );
        if let Some(cap) = self.max_relays_per_item {
            assert!(cap >= 1, "a relay cap of zero disables the protocol");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_1() {
        let c = ProtocolConfig::default();
        assert_eq!(c.ttn, SimDuration::from_mins(2));
        assert_eq!(c.ttr.as_millis(), 90_000);
        assert_eq!(c.ttp, SimDuration::from_mins(4));
        assert_eq!(c.invalidation_ttl, 3);
        assert_eq!(c.broadcast_ttl, 8);
        assert_eq!(c.omega, 0.2);
        assert_eq!(c.mu_car, 0.15);
        assert_eq!(c.mu_cs, 0.6);
        assert_eq!(c.mu_ce, 0.6);
        c.validate();
    }

    #[test]
    fn poll_ring_expands_and_caps() {
        let c = ProtocolConfig::default();
        assert_eq!(c.poll_ttl_for_attempt(1), 2);
        assert_eq!(c.poll_ttl_for_attempt(2), 4);
        assert_eq!(c.poll_ttl_for_attempt(3), 8);
        assert_eq!(c.poll_ttl_for_attempt(4), 8, "capped at poll_ttl_max");
        assert_eq!(c.poll_ttl_for_attempt(200), 8, "doubling saturates safely");
    }

    #[test]
    #[should_panic(expected = "TTN must be positive")]
    fn validate_rejects_zero_ttn() {
        let c = ProtocolConfig {
            ttn: SimDuration::ZERO,
            ..ProtocolConfig::default()
        };
        c.validate();
    }
}
