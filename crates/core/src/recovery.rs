//! Self-healing recovery layer: rejoin resync digests, acknowledged
//! invalidation/update delivery with a bounded retransmit queue, and
//! relay-lease handover.
//!
//! The paper's schemes assume invalidations eventually arrive; the PR 6
//! blame tracker showed that under chaos they often don't
//! (`lost_invalidation`, `crash_wipe`, `lease_orphan` dominate stale
//! serves). This module adds the *recovery* half: CUP-style rejoin
//! resynchronisation (Roussopoulos & Baker, PAPERS.md) and acknowledged,
//! retried dissemination (Tabassum et al., PAPERS.md).
//!
//! Everything here is pure protocol state — no clock, RNG, or network
//! access — so the same machinery runs unchanged under the DES driver
//! and any future async runtime (ROADMAP item 1). All of it is gated
//! behind [`RecoveryConfig`], default **off**: recovery-off runs stay
//! byte-identical to pre-recovery output (golden-fixture pinned).

use mp2p_cache::Version;
use mp2p_sim::{ItemId, NodeId, SimDuration, SimTime};
use std::collections::HashMap;

/// Gates and tunables of the recovery layer. Carried inside
/// [`crate::ProtocolConfig`]; the default is fully off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Rejoin resync: on switch-on/crash-recovery, flood a compact
    /// version digest of the local cache and drop-or-refresh stale
    /// copies from the replies before serving.
    pub resync: bool,
    /// Flood scope of the rejoin digest, in hops.
    pub resync_ttl: u8,
    /// Acknowledged delivery: sequence-stamp INVALIDATION/UPDATE frames,
    /// ACK unicast updates, retransmit unacknowledged ones.
    pub acked_delivery: bool,
    /// Upper bound on in-flight retransmit entries per sender; the
    /// oldest entry is evicted when a new one would exceed it.
    pub retx_cap: usize,
    /// Base delay before a pending update is retransmitted (backed off
    /// and jittered per attempt via [`crate::ProtocolConfig::retry_delay`]).
    pub retx_timeout: SimDuration,
    /// Retransmissions attempted per entry before giving up.
    pub retx_attempts: u8,
    /// Relay-lease handover: an orphan-expiring relay hands its duty to
    /// a reachable cached neighbor (deterministic lowest-id election)
    /// instead of self-CANCELing.
    pub handover: bool,
}

impl RecoveryConfig {
    /// Everything off: the pre-recovery protocol, byte-identical.
    pub fn off() -> Self {
        RecoveryConfig {
            resync: false,
            resync_ttl: 2,
            acked_delivery: false,
            retx_cap: 32,
            retx_timeout: SimDuration::from_secs(2),
            retx_attempts: 3,
            handover: false,
        }
    }

    /// Every recovery mechanism on with its recommended setting.
    #[must_use]
    pub fn on() -> Self {
        RecoveryConfig {
            resync: true,
            acked_delivery: true,
            handover: true,
            ..RecoveryConfig::off()
        }
    }

    /// True if any recovery mechanism is switched on.
    pub fn enabled(&self) -> bool {
        self.resync || self.acked_delivery || self.handover
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical parameter combinations (zero retransmit
    /// budget or period, zero digest scope).
    pub fn validate(&self) {
        if self.resync {
            assert!(self.resync_ttl >= 1, "resync digest needs at least 1 hop");
        }
        if self.acked_delivery {
            assert!(self.retx_cap >= 1, "retransmit queue needs capacity");
            assert!(
                !self.retx_timeout.is_zero(),
                "retransmit timeout must be positive"
            );
            assert!(
                self.retx_attempts >= 1,
                "acked delivery needs at least one retransmission"
            );
        }
    }
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig::off()
    }
}

/// Entries one [`VersionDigest`] frame can carry. Digests above this
/// size are chunked into several frames.
pub const DIGEST_CAP: usize = 4;

/// Wire bytes per digest entry (item id + version).
const DIGEST_ENTRY_BYTES: u32 = 12;

/// A compact `item id → version` map exchanged during rejoin resync.
///
/// Fixed-capacity so [`crate::ProtoMsg`] stays `Copy`; a full cache
/// digest is chunked into several frames via [`VersionDigest::chunk`].
/// Entries are kept in ascending item-id order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionDigest {
    len: u8,
    slots: [(ItemId, Version); DIGEST_CAP],
}

impl VersionDigest {
    /// Builds a digest from up to [`DIGEST_CAP`] entries.
    ///
    /// # Panics
    ///
    /// Panics on an empty or over-capacity entry list (digests are
    /// never sent empty).
    pub fn new(entries: &[(ItemId, Version)]) -> Self {
        assert!(!entries.is_empty(), "digests are never empty");
        assert!(entries.len() <= DIGEST_CAP, "digest overflow");
        let mut slots = [(ItemId::new(0), Version::new(0)); DIGEST_CAP];
        slots[..entries.len()].copy_from_slice(entries);
        VersionDigest {
            len: entries.len() as u8,
            slots,
        }
    }

    /// Splits a sorted `(item, version)` list into minimal digest
    /// frames. The caller sorts by item id first — cache-store
    /// iteration order is process-random and must never reach the wire.
    pub fn chunk(sorted: &[(ItemId, Version)]) -> Vec<VersionDigest> {
        debug_assert!(
            sorted.windows(2).all(|w| w[0].0 < w[1].0),
            "digest entries must be sorted and unique"
        );
        sorted.chunks(DIGEST_CAP).map(VersionDigest::new).collect()
    }

    /// The carried entries, in ascending item-id order.
    pub fn entries(&self) -> &[(ItemId, Version)] {
        &self.slots[..usize::from(self.len)]
    }

    /// Number of entries carried.
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Digests are never empty (construction enforces it).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The first carried item (stands in as "the" item for single-item
    /// accounting interfaces).
    pub fn first_item(&self) -> ItemId {
        self.slots[0].0
    }

    /// On-air payload cost of the carried entries.
    pub fn wire_bytes(&self) -> u32 {
        u32::from(self.len) * DIGEST_ENTRY_BYTES
    }
}

/// One pending (unacknowledged) update retransmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetxEntry {
    /// The relay peer the update was sent to.
    pub dest: NodeId,
    /// The updated item.
    pub item: ItemId,
    /// The version shipped.
    pub version: Version,
    /// The sequence number stamped on the frame.
    pub seq: u64,
    /// Retransmissions already performed (0 = only the original send).
    pub attempt: u8,
    /// When the next retransmission is due.
    pub due: SimTime,
}

/// A bounded sender-side retransmit queue with a monotone sequence
/// counter.
///
/// Invariants (property-tested):
/// * never holds more than `cap` entries — the oldest is evicted first;
/// * at most one entry per `(dest, item)` — a newer update supersedes
///   the older one (versions are monotone, so only the latest matters);
/// * [`RetransmitQueue::ack`] is idempotent — duplicated ACK frames
///   remove nothing twice.
#[derive(Debug, Clone)]
pub struct RetransmitQueue {
    cap: usize,
    next_seq: u64,
    entries: Vec<RetxEntry>,
    high_water: usize,
}

impl RetransmitQueue {
    /// An empty queue bounded at `cap` entries.
    ///
    /// # Panics
    ///
    /// Panics on a zero capacity.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "retransmit queue needs capacity");
        RetransmitQueue {
            cap,
            next_seq: 0,
            entries: Vec::new(),
            high_water: 0,
        }
    }

    /// Allocates the next sequence number without queueing anything
    /// (used to stamp flooded INVALIDATIONs, which are deduplicated by
    /// receivers but never acknowledged).
    pub fn alloc_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Queues an update for retransmission tracking and returns the
    /// sequence number to stamp on the frame. Supersedes any pending
    /// entry for the same `(dest, item)`; evicts the oldest entry when
    /// the bound would be exceeded.
    pub fn enqueue(&mut self, dest: NodeId, item: ItemId, version: Version, due: SimTime) -> u64 {
        let seq = self.alloc_seq();
        self.entries.retain(|e| !(e.dest == dest && e.item == item));
        if self.entries.len() == self.cap {
            self.entries.remove(0);
        }
        self.entries.push(RetxEntry {
            dest,
            item,
            version,
            seq,
            attempt: 0,
            due,
        });
        self.high_water = self.high_water.max(self.entries.len());
        seq
    }

    /// Processes an ACK from `dest` for `seq`: removes and returns the
    /// matching entry, or `None` if it was already acknowledged (or
    /// never queued) — duplicated ACK frames are no-ops.
    pub fn ack(&mut self, dest: NodeId, seq: u64) -> Option<RetxEntry> {
        let idx = self
            .entries
            .iter()
            .position(|e| e.dest == dest && e.seq == seq)?;
        Some(self.entries.remove(idx))
    }

    /// The entries whose retransmission is due, oldest first.
    pub fn due_entries(&self, now: SimTime) -> Vec<RetxEntry> {
        self.entries
            .iter()
            .filter(|e| e.due <= now)
            .copied()
            .collect()
    }

    /// Records one more retransmission attempt for `seq` and schedules
    /// the next one at `due`.
    pub fn bump(&mut self, seq: u64, due: SimTime) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.seq == seq) {
            e.attempt += 1;
            e.due = due;
        }
    }

    /// Drops the entry with the given sequence number (retransmission
    /// budget exhausted). Returns true if something was dropped.
    pub fn drop_seq(&mut self, seq: u64) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.seq != seq);
        self.entries.len() != before
    }

    /// Drops every pending entry for `dest` (the MAC layer reported the
    /// peer unreachable; the relay table drops it too). Returns how
    /// many entries were dropped.
    pub fn drop_dest(&mut self, dest: NodeId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.dest != dest);
        before - self.entries.len()
    }

    /// Currently pending entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The most entries ever pending at once (bounded by `cap`).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// The configured bound.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

/// Receiver-side duplicate suppression for sequence-stamped frames.
///
/// Senders allocate sequence numbers from one monotone counter, so per
/// `(peer, item)` a frame is new exactly when its sequence number
/// exceeds the highest one seen — duplicated or re-flooded frames
/// become idempotent no-ops.
#[derive(Debug, Clone, Default)]
pub struct SeqTracker {
    highest: HashMap<(NodeId, ItemId), u64>,
}

impl SeqTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        SeqTracker::default()
    }

    /// Records `seq` from `peer` for `item`; returns true when this is
    /// the first sighting (i.e. the frame is not a duplicate).
    pub fn is_new(&mut self, peer: NodeId, item: ItemId, seq: u64) -> bool {
        let highest = self.highest.entry((peer, item)).or_insert(0);
        if seq > *highest {
            *highest = seq;
            true
        } else {
            false
        }
    }
}

/// A recovery-layer decision a protocol reports to the driver (for
/// fault counters, trace events, and — for handover — the neighbor
/// election only the driver's shared topology view can run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// A rejoining node flooded its version digest.
    ResyncStart {
        /// Entries advertised across all digest frames.
        items: u32,
    },
    /// A rejoining node finished processing one resync reply.
    ResyncDone {
        /// Stale copies dropped or queued for refresh.
        stale: u32,
    },
    /// A pending update was retransmitted.
    Retransmit {
        /// The relay peer being retried.
        dest: NodeId,
        /// The updated item.
        item: ItemId,
        /// The frame's sequence number.
        seq: u64,
        /// 1-based retransmission attempt.
        attempt: u8,
    },
    /// A delivery ACK settled a pending retransmission.
    AckReceived {
        /// The acknowledging relay peer.
        peer: NodeId,
        /// The acknowledged item.
        item: ItemId,
        /// The acknowledged sequence number.
        seq: u64,
    },
    /// An orphan-expiring relay asks the driver to elect a reachable
    /// neighbor and hand it the relay duty for `item`.
    HandoverRequest {
        /// The item whose relay duty is being handed over.
        item: ItemId,
        /// The last version the expiring relay confirmed.
        version: Version,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn default_config_is_off_and_valid() {
        let cfg = RecoveryConfig::default();
        assert!(!cfg.enabled());
        cfg.validate();
        let on = RecoveryConfig::on();
        assert!(on.enabled() && on.resync && on.acked_delivery && on.handover);
        on.validate();
    }

    #[test]
    #[should_panic(expected = "retransmit queue needs capacity")]
    fn validate_rejects_zero_retx_cap() {
        let cfg = RecoveryConfig {
            retx_cap: 0,
            ..RecoveryConfig::on()
        };
        cfg.validate();
    }

    #[test]
    fn digest_chunks_preserve_order_and_cost() {
        let entries: Vec<(ItemId, Version)> = (0..10)
            .map(|i| (ItemId::new(i), Version::new(i as u64 + 1)))
            .collect();
        let frames = VersionDigest::chunk(&entries);
        assert_eq!(frames.len(), 3, "10 entries at cap 4 need 3 frames");
        let rejoined: Vec<_> = frames.iter().flat_map(|f| f.entries().to_vec()).collect();
        assert_eq!(rejoined, entries, "chunking is order-preserving");
        assert_eq!(frames[0].wire_bytes(), 4 * 12);
        assert_eq!(frames[2].wire_bytes(), 2 * 12);
        assert_eq!(frames[2].first_item(), ItemId::new(8));
        assert!(!frames[0].is_empty());
    }

    #[test]
    #[should_panic(expected = "digests are never empty")]
    fn empty_digest_is_rejected() {
        let _ = VersionDigest::new(&[]);
    }

    #[test]
    fn retx_queue_bounds_supersedes_and_acks_idempotently() {
        let mut q = RetransmitQueue::new(3);
        let a = NodeId::new(1);
        let s1 = q.enqueue(a, ItemId::new(7), Version::new(1), t(10));
        let s2 = q.enqueue(a, ItemId::new(7), Version::new(2), t(20));
        assert!(s2 > s1, "sequence numbers are monotone");
        assert_eq!(q.len(), 1, "newer update supersedes the pending one");
        q.enqueue(a, ItemId::new(8), Version::new(1), t(20));
        q.enqueue(a, ItemId::new(9), Version::new(1), t(20));
        q.enqueue(a, ItemId::new(10), Version::new(1), t(20));
        assert_eq!(q.len(), 3, "bound holds; oldest evicted");
        assert!(q.ack(a, s2).is_none(), "evicted entries cannot be acked");
        let s_last = q.due_entries(t(20)).last().unwrap().seq;
        assert!(q.ack(a, s_last).is_some());
        assert!(q.ack(a, s_last).is_none(), "duplicate ACK is a no-op");
        assert_eq!(q.high_water(), 3);
    }

    #[test]
    fn retx_due_bump_and_drop() {
        let mut q = RetransmitQueue::new(8);
        let a = NodeId::new(1);
        let b = NodeId::new(2);
        let s1 = q.enqueue(a, ItemId::new(1), Version::new(1), t(10));
        let s2 = q.enqueue(b, ItemId::new(1), Version::new(1), t(30));
        assert_eq!(
            q.due_entries(t(15))
                .iter()
                .map(|e| e.seq)
                .collect::<Vec<_>>(),
            vec![s1]
        );
        q.bump(s1, t(50));
        assert!(
            q.due_entries(t(15)).is_empty(),
            "bumped entry is rescheduled"
        );
        assert_eq!(q.due_entries(t(60)).len(), 2);
        assert_eq!(q.due_entries(t(60))[0].attempt, 1);
        assert_eq!(q.drop_dest(b), 1);
        assert!(q.drop_seq(s1));
        assert!(!q.drop_seq(s1), "already dropped");
        assert!(q.is_empty());
        assert_eq!(q.ack(b, s2), None);
    }

    #[test]
    fn seq_tracker_suppresses_duplicates_per_peer_item() {
        let mut t = SeqTracker::new();
        let p = NodeId::new(3);
        assert!(t.is_new(p, ItemId::new(1), 5));
        assert!(!t.is_new(p, ItemId::new(1), 5), "duplicate frame");
        assert!(!t.is_new(p, ItemId::new(1), 4), "stale retransmit");
        assert!(t.is_new(p, ItemId::new(2), 4), "other item is independent");
        assert!(
            t.is_new(NodeId::new(4), ItemId::new(1), 5),
            "other peer too"
        );
        assert!(t.is_new(p, ItemId::new(1), 6));
    }
}
