//! RPCC — Relay Peer-based Cache Consistency — and its baselines.
//!
//! This crate is the reproduction of the paper's contribution
//! ("Consistency of Cooperative Caching in Mobile Peer-to-Peer Systems
//! over MANET", Cao, Zhang, Xie & Cao, ICDCS 2005):
//!
//! * [`Rpcc`] — the relay-peer protocol of Section 4: relay selection by
//!   the CAR/CS/CE coefficients (Eq. 4.2.1–4.2.8, [`Coefficients`]), the
//!   state machine of Fig. 5, the message set of Fig. 6(a)
//!   ([`ProtoMsg`]), and the source/relay/cache-peer algorithms of
//!   Fig. 6(b)–(d). Push between source and relays, pull between cache
//!   peers and relays, three consistency levels served adaptively
//!   (Section 4.4).
//! * [`SimplePush`] / [`SimplePull`] — the baselines of the evaluation
//!   (after Lan et al. \[Lan03\]): TTL-8 invalidation floods with
//!   wait-for-report queries, and flood-poll-per-query respectively.
//! * [`World`] — the simulation driver binding the substrates together:
//!   mobility → topology snapshots → per-node [`mp2p_net::NetStack`]s →
//!   protocol state machines → metrics.
//!
//! # Quick start
//!
//! ```
//! use mp2p_rpcc::{Strategy, World, WorldConfig};
//! use mp2p_sim::SimDuration;
//!
//! let mut config = WorldConfig::small_test(42);
//! config.strategy = Strategy::Rpcc;
//! config.sim_time = SimDuration::from_mins(10);
//! let report = World::new(config).run();
//! assert!(report.queries_served() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod coefficients;
mod config;
mod level;
mod msg;
mod observatory;
mod protocol;
mod provenance;
mod pull;
mod push;
mod push_adaptive;
mod recovery;
mod rpcc;
mod world;

pub use adaptive::AdaptiveTuner;
pub use coefficients::Coefficients;
pub use config::ProtocolConfig;
pub use level::{ConsistencyLevel, LevelMix};
pub use msg::ProtoMsg;
pub use observatory::{ConsistencyReport, ObservatoryConfig};
pub use protocol::{Ctx, CtxOut, DegradationKind, Protocol, QueryId, Timer};
pub use provenance::ProvenanceConfig;
pub use pull::SimplePull;
pub use push::SimplePush;
pub use push_adaptive::PushAdaptivePull;
pub use recovery::{
    RecoveryAction, RecoveryConfig, RetransmitQueue, RetxEntry, SeqTracker, VersionDigest,
    DIGEST_CAP,
};
pub use rpcc::{RelayRole, Rpcc};
pub use world::{
    FaultStats, MobilityKind, RoutingMode, RunReport, Strategy, WorkloadMode, World, WorldConfig,
};
