//! The simulation world: mobility, radio, network stacks, protocols and
//! metrics wired into one deterministic event loop.
//!
//! This is the reproduction's equivalent of the paper's GloMoSim
//! scenario: Table 1's parameters are [`WorldConfig::paper_default`], the
//! Fig. 9 single-item scenario is [`WorkloadMode::SingleItem`].

use mp2p_cache::{CacheStore, DataItem, Version};
use mp2p_metrics::{
    age_bucket, ConsistencyAudit, EnergyModel, Gauge, LatencyStats, MessageClass, PeerEnergy,
    ServedQuery, TrafficStats, VersionHistory, AGE_BUCKETS,
};
use mp2p_mobility::{
    AnyMobility, ManhattanGrid, MobilityModel, Point, RandomWalk, RandomWaypoint, Stationary,
    SubnetGrid, Terrain,
};
use mp2p_net::{
    Axis, FaultPlan, Frame, GilbertElliott, LinkModel, NetAction, NetConfig, NetEvent, NetStack,
    NetTimer, RouteControl, Topology, TopologyBuilder, TopologyScratch,
};
use mp2p_sim::{EventQueue, ItemId, NodeId, PerfReport, Profiler, SimDuration, SimRng, SimTime};
use mp2p_trace::{BlameCause, FrameFateKind, LevelTag, NullSink, ServedBy, TraceEvent, TraceSink};

use crate::config::ProtocolConfig;
use crate::level::{ConsistencyLevel, LevelMix};
use crate::msg::ProtoMsg;
use crate::observatory::{BlameTracker, ConsistencyReport, ObservatoryConfig};
use crate::protocol::{Ctx, CtxOut, DegradationKind, Protocol, QueryId, Timer};
use crate::provenance::ProvenanceConfig;
use crate::pull::SimplePull;
use crate::push::SimplePush;
use crate::push_adaptive::PushAdaptivePull;
use crate::recovery::RecoveryAction;
use crate::rpcc::Rpcc;

/// Which consistency strategy a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The paper's relay-peer protocol.
    Rpcc,
    /// The simple push baseline.
    Push,
    /// The simple pull baseline.
    Pull,
    /// Lan et al.'s third strategy, cited by the paper's related work:
    /// push invalidation reports with adaptive pull fallback.
    PushAdaptivePull,
}

impl Strategy {
    /// Label for tables ("RPCC"/"Push"/"Pull").
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Rpcc => "RPCC",
            Strategy::Push => "Push",
            Strategy::Pull => "Pull",
            Strategy::PushAdaptivePull => "Push+AP",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Which mobility model every node follows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilityKind {
    /// The paper's random waypoint (speeds in m/s, max pause).
    Waypoint {
        /// Minimum leg speed (m/s).
        speed_min: f64,
        /// Maximum leg speed (m/s).
        speed_max: f64,
        /// Maximum pause at each waypoint.
        max_pause: SimDuration,
    },
    /// Random walk with reflection.
    Walk {
        /// Minimum epoch speed (m/s).
        speed_min: f64,
        /// Maximum epoch speed (m/s).
        speed_max: f64,
        /// Heading-change period.
        epoch: SimDuration,
    },
    /// Street-grid movement.
    Manhattan {
        /// Street-block edge length (m).
        block: f64,
        /// Constant speed (m/s).
        speed: f64,
    },
    /// No movement (static topologies for tests).
    Stationary,
}

/// How unicast messages find their way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// The real stack: AODV-style on-demand discovery with RREQ/RREP/RERR
    /// control traffic (the paper's setting — GloMoSim ran DSR).
    #[default]
    OnDemand,
    /// An omniscient router: every unicast follows the current BFS
    /// shortest path, hop-by-hop, with zero control traffic. Not
    /// physically realisable — used by the routing-overhead ablation and
    /// by tests that need connectivity-exact delivery semantics.
    Oracle,
}

/// What the query streams target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadMode {
    /// Every node queries uniformly over the items it caches (the paper's
    /// main scenarios; caches are pre-warmed with `C_Num` random foreign
    /// items).
    CachedUniform,
    /// The Fig. 9 scenario: one randomly selected source; "its data item
    /// is cached by all other peers" and is the only query target and the
    /// only published item.
    SingleItem,
}

/// Full scenario configuration. Defaults mirror Table 1 of the paper.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// `N_Peers`: number of mobile hosts (50).
    pub n_peers: usize,
    /// `T_Area`: the flatland (1.5 km × 1.5 km).
    pub terrain: Terrain,
    /// `C_Num`: cache slots per host (10).
    pub c_num: usize,
    /// `C_Range`: radio range in metres (250).
    pub range: f64,
    /// `T_Sim`: simulated duration (5 h).
    pub sim_time: SimDuration,
    /// Metrics ignore everything before this offset (steady state).
    pub warmup: SimDuration,
    /// `I_Update`: mean update interval (2 min).
    pub i_update: SimDuration,
    /// `I_Query`: mean query interval (20 s).
    pub i_query: SimDuration,
    /// **Extension (future work §6 item 3):** mean interval between
    /// replica writes issued by each node against items it caches; writes
    /// serialise through the item's source host. `None` (default)
    /// reproduces the paper: only sources modify their own items.
    pub i_write: Option<SimDuration>,
    /// `I_Switch`: mean interval between disconnections (5 min); `None`
    /// disables churn.
    pub i_switch: Option<SimDuration>,
    /// Mean length of each disconnection (the off period that follows a
    /// switch; exponential). Table 1 gives only the switching interval;
    /// DESIGN.md §5 documents this choice.
    pub switch_off_mean: SimDuration,
    /// MAC/PHY model.
    pub link: LinkModel,
    /// Network-layer tunables.
    pub net: NetConfig,
    /// Protocol tunables (Table 1 rows TTL_BR…ω).
    pub proto: ProtocolConfig,
    /// Strategy under test.
    pub strategy: Strategy,
    /// Consistency-level mix of the query load.
    pub level_mix: LevelMix,
    /// Query-target mode.
    pub workload: WorkloadMode,
    /// Unicast routing substrate (ablation knob; default on-demand).
    pub routing: RoutingMode,
    /// Mobility model.
    pub mobility: MobilityKind,
    /// Battery capacity per node, millijoules (`E_MAX`).
    pub battery_mj: f64,
    /// Radio energy model.
    pub energy: EnergyModel,
    /// Maximum age of a topology snapshot before rebuild.
    pub topology_refresh: SimDuration,
    /// Gauge-sampling / idle-drain period.
    pub sample_period: SimDuration,
    /// Subnet grid (columns, rows) for the PMR coefficient.
    pub subnet_grid: (u32, u32),
    /// Scheduled fault-injection plan (chaos harness). [`FaultPlan::none`]
    /// — the default — keeps every hot path and random stream untouched:
    /// a fault-free run is bit-identical to one built before the fault
    /// subsystem existed.
    pub faults: FaultPlan,
    /// Consistency-observatory switches (divergence sampler + stale-serve
    /// blame attribution). [`ObservatoryConfig::off`] — the default —
    /// queues no events, draws no randomness and emits no trace records:
    /// a default run is bit-identical to one from a pre-observatory
    /// build.
    pub observatory: ObservatoryConfig,
    /// Frame-level provenance switches (causal lineage tracing).
    /// [`ProvenanceConfig::off`] — the default — emits no schema-4
    /// records and draws no randomness: a default run is bit-identical
    /// to one from a pre-provenance build.
    pub provenance: ProvenanceConfig,
    /// Master random seed.
    pub seed: u64,
}

impl WorldConfig {
    /// The paper's Table 1 scenario: 50 peers, 1.5 km², C_Num 10, 250 m
    /// range, 5 h, I_Update 2 min, I_Query 20 s, I_Switch 5 min, random
    /// waypoint.
    pub fn paper_default(seed: u64) -> Self {
        WorldConfig {
            n_peers: 50,
            terrain: Terrain::paper_default(),
            c_num: 10,
            range: 250.0,
            sim_time: SimDuration::from_hours(5),
            warmup: SimDuration::from_mins(10),
            i_update: SimDuration::from_mins(2),
            i_query: SimDuration::from_secs(20),
            i_write: None,
            i_switch: Some(SimDuration::from_mins(5)),
            switch_off_mean: SimDuration::from_secs(30),
            link: LinkModel::default(),
            net: NetConfig::default(),
            proto: ProtocolConfig::default(),
            strategy: Strategy::Rpcc,
            level_mix: LevelMix::strong_only(),
            workload: WorkloadMode::CachedUniform,
            routing: RoutingMode::OnDemand,
            // Pedestrian speeds: the paper's motivating scenarios are
            // soldiers and mobile booths; speed is not given in Table 1
            // (DESIGN.md §5).
            mobility: MobilityKind::Waypoint {
                speed_min: 0.5,
                speed_max: 2.5,
                max_pause: SimDuration::from_secs(30),
            },
            battery_mj: 100_000.0,
            energy: EnergyModel::default(),
            topology_refresh: SimDuration::from_millis(200),
            sample_period: SimDuration::from_secs(30),
            subnet_grid: (3, 3),
            faults: FaultPlan::none(),
            observatory: ObservatoryConfig::off(),
            provenance: ProvenanceConfig::off(),
            seed,
        }
    }

    /// A scaled-down scenario for tests and doc examples: 20 peers on
    /// 900 m², 10 simulated minutes, otherwise Table 1 semantics.
    pub fn small_test(seed: u64) -> Self {
        let mut cfg = WorldConfig::paper_default(seed);
        cfg.n_peers = 20;
        cfg.terrain = Terrain::new(900.0, 900.0);
        cfg.sim_time = SimDuration::from_mins(10);
        cfg.warmup = SimDuration::from_mins(2);
        cfg.c_num = 5;
        cfg
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics on impossible scenarios (no peers, cache larger than the
    /// foreign catalogue, warmup past the run, …).
    pub fn validate(&self) {
        assert!(self.n_peers >= 2, "need at least two peers");
        assert!(self.c_num >= 1, "need at least one cache slot");
        assert!(
            self.c_num < self.n_peers,
            "C_Num ({}) must be below the number of foreign items ({})",
            self.c_num,
            self.n_peers - 1
        );
        assert!(
            self.warmup < self.sim_time,
            "warmup must end before the run does"
        );
        assert!(
            self.range > 0.0 && self.range.is_finite(),
            "radio range must be positive"
        );
        assert!(self.battery_mj > 0.0, "battery capacity must be positive");
        assert!(
            !self.sample_period.is_zero(),
            "sample period must be positive"
        );
        assert!(
            !self.topology_refresh.is_zero(),
            "topology refresh must be positive"
        );
        self.proto.validate();
        self.faults.validate(self.n_peers);
        self.observatory.validate();
        self.provenance.validate();
    }
}

/// Strategy dispatch without trait objects (keeps the world `Clone`-free
/// and the dispatch static).
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)] // one instance per node, sized by Rpcc
enum AnyProtocol {
    Rpcc(Rpcc),
    Push(SimplePush),
    Pull(SimplePull),
    PushAdaptive(PushAdaptivePull),
}

macro_rules! dispatch {
    ($self:expr, $p:pat => $body:expr) => {
        match $self {
            AnyProtocol::Rpcc($p) => $body,
            AnyProtocol::Push($p) => $body,
            AnyProtocol::Pull($p) => $body,
            AnyProtocol::PushAdaptive($p) => $body,
        }
    };
}

impl AnyProtocol {
    /// Builds a fresh (empty-state) protocol instance for one node. Used
    /// at construction and again when a crash fault wipes a node.
    fn fresh(strategy: Strategy, cfg: &ProtocolConfig, publishes: bool) -> Self {
        match strategy {
            Strategy::Rpcc => AnyProtocol::Rpcc(Rpcc::new(cfg, publishes)),
            Strategy::Push => AnyProtocol::Push(SimplePush::new(cfg, publishes)),
            Strategy::Pull => AnyProtocol::Pull(SimplePull::new(cfg, publishes)),
            Strategy::PushAdaptivePull => {
                AnyProtocol::PushAdaptive(PushAdaptivePull::new(cfg, publishes))
            }
        }
    }

    fn relay_item_count(&self) -> usize {
        dispatch!(self, p => p.relay_item_count())
    }

    fn is_candidate(&self) -> bool {
        dispatch!(self, p => p.is_candidate())
    }

    fn retx_high_water(&self) -> usize {
        dispatch!(self, p => p.retx_high_water())
    }
}

#[derive(Debug)]
struct NodeState {
    mobility: AnyMobility,
    up: bool,
    stack: NetStack<ProtoMsg>,
    proto: AnyProtocol,
    cache: CacheStore,
    own_item: DataItem,
    /// Whether this node's own item participates as source data.
    publishes: bool,
    battery: PeerEnergy,
    rng: SimRng,
    /// Dedicated recovery-layer randomness (stream `0xA00 + i`): seeded
    /// unconditionally so turning recovery on or off never shifts any
    /// other stream's draw sequence.
    recovery_rng: SimRng,
    last_cell: (u32, u32),
}

#[derive(Debug)]
enum Event {
    Query(NodeId),
    Update(NodeId),
    Switch(NodeId),
    /// A replica-write arrival at `NodeId` (extension workload).
    Write(NodeId),
    /// Retry timer for an outstanding replica write.
    WriteRetry {
        at: NodeId,
        write: QueryId,
    },
    Rx {
        at: NodeId,
        from: NodeId,
        frame: Frame<ProtoMsg>,
    },
    NetTimer {
        at: NodeId,
        timer: NetTimer,
    },
    ProtoTimer {
        at: NodeId,
        timer: Timer,
    },
    /// Oracle-routed unicast arriving at its destination (no stack).
    OracleDeliver {
        at: NodeId,
        from: NodeId,
        msg: ProtoMsg,
    },
    CoeffTick,
    Sample,
    /// The consistency observatory's divergence-sampler tick. Queued only
    /// when [`ObservatoryConfig::sample_period`] is set, so a default run
    /// never sees this variant.
    ConsistencyTick,
    /// A scheduled fault-plan action fires.
    Fault(FaultAction),
}

/// One scheduled action of the active [`FaultPlan`], with indices into
/// the plan's window lists.
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    PartitionStart(usize),
    PartitionHeal(usize),
    Crash(usize),
    Recover(usize),
}

#[derive(Debug, Clone, Copy)]
struct OpenWrite {
    writer: NodeId,
    item: ItemId,
    issued: SimTime,
    attempt: u8,
    measured: bool,
}

#[derive(Debug, Clone, Copy)]
struct OpenQuery {
    /// The node the query was issued at (a crash fault fails its open
    /// queries — the pending state dies with the node).
    node: NodeId,
    item: ItemId,
    level: ConsistencyLevel,
    issued: SimTime,
    /// Whether this query counts towards the metrics (issued after the
    /// warm-up period), decided once at issue time so served/failed/issued
    /// counters partition exactly.
    measured: bool,
}

/// Counters for injected faults and the hardening decisions they
/// provoked. All-zero — and absent from [`RunReport::to_json`] — for a
/// fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Hard node crashes injected (volatile state wiped).
    pub crashes: u64,
    /// Crash recoveries completed.
    pub recoveries: u64,
    /// Partition windows opened.
    pub partitions_started: u64,
    /// Partition windows healed.
    pub partitions_healed: u64,
    /// Frames duplicated in flight.
    pub frames_duplicated: u64,
    /// Frames dropped by the Gilbert–Elliott chain's bad (burst) state.
    pub burst_drops: u64,
    /// Relay leases expired without source contact (self-CANCEL).
    pub lease_expiries: u64,
    /// Fallback floods issued after routed POLL retries were exhausted.
    pub fallback_floods: u64,
    /// Rejoin resyncs started (recovery layer).
    pub resyncs: u64,
    /// UPDATE retransmissions issued by the acked-delivery sweep.
    pub retransmits: u64,
    /// DELIVERY_ACKs that cleared a pending retransmit entry.
    pub delivery_acks: u64,
    /// Relay-lease handovers completed (a successor was elected).
    pub handovers: u64,
    /// High-water mark of any node's retransmit queue over the run.
    pub retx_queue_peak: u64,
}

/// Aggregated results of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Strategy that produced this report.
    pub strategy: Strategy,
    /// Level mix of the query load.
    pub level_mix: LevelMix,
    /// MAC-level traffic (post-warmup).
    pub traffic: TrafficStats,
    /// Query latency over served queries (post-warmup).
    pub latency: LatencyStats,
    /// Latency split per requested level.
    pub latency_by_level: [LatencyStats; 3],
    /// Ground-truth staleness audit of served answers.
    pub audit: ConsistencyAudit,
    /// Audit split per requested level.
    pub audit_by_level: [ConsistencyAudit; 3],
    /// Queries issued post-warmup.
    pub queries_issued: u64,
    /// Queries abandoned (network gave up) post-warmup.
    pub queries_failed: u64,
    /// Replica-write latency over acknowledged writes (extension
    /// workload; empty when `i_write` is off).
    pub write_latency: LatencyStats,
    /// Replica writes issued post-warmup.
    pub writes_issued: u64,
    /// Replica writes abandoned after retries.
    pub writes_failed: u64,
    /// Served queries by answer provenance, indexed by
    /// [`ServedBy::index`] (source, relay, cache). Post-warmup; the three
    /// cells sum to [`RunReport::queries_served`].
    pub served_by: [u64; 3],
    /// Relay-peer items held across all nodes, sampled.
    pub relay_gauge: Gauge,
    /// Candidate nodes, sampled.
    pub candidate_gauge: Gauge,
    /// Live route-table entries across all nodes, sampled.
    pub route_gauge: Gauge,
    /// Mean battery fraction, sampled.
    pub battery_gauge: Gauge,
    /// Total energy drained across all nodes (mJ, whole run).
    pub energy_used_mj: f64,
    /// Label of the active fault plan (`None` for a fault-free run).
    pub fault_plan: Option<&'static str>,
    /// Injected-fault and degradation counters.
    pub faults: FaultStats,
    /// Whether any recovery-layer feature was on. Gates the recovery
    /// keys in [`RunReport::to_json`], so a recovery-off report stays
    /// byte-identical to one from a pre-recovery build.
    pub recovery_enabled: bool,
    /// Wall-clock profile of the run (`None` unless profiling was
    /// enabled via [`World::enable_profiling`]). Strictly observational:
    /// its presence never changes any other field.
    pub perf: Option<PerfReport>,
    /// Consistency-observatory summary (`None` unless the observatory
    /// was enabled via [`WorldConfig::observatory`]): blame counts per
    /// cause, Δ-violation count, divergence samples taken.
    pub consistency: Option<ConsistencyReport>,
    /// The measured window (sim_time − warmup).
    pub measured: SimDuration,
}

impl RunReport {
    /// Queries served (answered) post-warmup.
    pub fn queries_served(&self) -> u64 {
        self.audit.served()
    }

    /// Transmissions per simulated minute — the Fig. 7/9(a) y-axis.
    pub fn traffic_per_minute(&self) -> f64 {
        let mins = self.measured.as_secs_f64() / 60.0;
        if mins == 0.0 {
            0.0
        } else {
            self.traffic.transmissions() as f64 / mins
        }
    }

    /// Mean query latency in seconds — the Fig. 8/9(b) y-axis.
    pub fn mean_latency_secs(&self) -> f64 {
        self.latency.mean_secs()
    }

    /// Replica writes acknowledged post-warmup.
    pub fn writes_completed(&self) -> u64 {
        self.write_latency.count()
    }

    /// Fraction of issued queries that failed.
    pub fn failure_rate(&self) -> f64 {
        if self.queries_issued == 0 {
            0.0
        } else {
            self.queries_failed as f64 / self.queries_issued as f64
        }
    }

    /// Fraction of served queries answered from a cached copy — the
    /// poller's own cache or a relay peer — rather than the source host.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total: u64 = self.served_by.iter().sum();
        if total == 0 {
            0.0
        } else {
            let hits =
                self.served_by[ServedBy::Relay.index()] + self.served_by[ServedBy::Cache.index()];
            hits as f64 / total as f64
        }
    }

    /// Serialises the headline results as one JSON object (hand-rolled;
    /// the workspace is dependency-free). Keys are stable: scripts may
    /// parse them.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(1024);
        s.push('{');
        // json::escape returns the quoted literal, quotes included.
        let _ = write!(
            s,
            "\"strategy\":{},\"level_mix\":{},",
            mp2p_trace::json::escape(self.strategy.label()),
            mp2p_trace::json::escape(self.level_mix.label()),
        );
        let _ = write!(
            s,
            "\"measured_secs\":{},\"transmissions\":{},\"app_transmissions\":{},\"bytes\":{},",
            self.measured.as_secs_f64(),
            self.traffic.transmissions(),
            self.traffic.app_transmissions(),
            self.traffic.bytes(),
        );
        s.push_str("\"traffic_by_class\":{");
        let mut first = true;
        for class in MessageClass::ALL {
            let n = self.traffic.by_class(class);
            if n == 0 {
                continue; // keep the object small; absent means zero
            }
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "{}:{}", mp2p_trace::json::escape(class.label()), n);
        }
        s.push_str("},");
        let _ = write!(
            s,
            "\"traffic_per_minute\":{},\"queries_issued\":{},\"queries_served\":{},\"queries_failed\":{},",
            self.traffic_per_minute(),
            self.queries_issued,
            self.queries_served(),
            self.queries_failed,
        );
        let _ = write!(
            s,
            "\"mean_latency_secs\":{},\"max_latency_secs\":{},",
            self.mean_latency_secs(),
            self.latency.max().as_secs_f64(),
        );
        let _ = write!(
            s,
            "\"stale_served\":{},\"fresh_fraction\":{},\"max_staleness_secs\":{},",
            self.audit.stale_served(),
            self.audit.fresh_fraction(),
            self.audit.max_staleness().as_secs_f64(),
        );
        let _ = write!(
            s,
            "\"writes_issued\":{},\"writes_completed\":{},\"writes_failed\":{},",
            self.writes_issued,
            self.writes_completed(),
            self.writes_failed,
        );
        let _ = write!(
            s,
            "\"relay_items_mean\":{},\"candidates_mean\":{},\"routes_mean\":{},\"battery_mean\":{},\"energy_used_mj\":{}",
            self.relay_gauge.mean(),
            self.candidate_gauge.mean(),
            self.route_gauge.mean(),
            self.battery_gauge.mean(),
            self.energy_used_mj,
        );
        let _ = write!(
            s,
            ",\"served_by\":{{\"source\":{},\"relay\":{},\"cache\":{}}},\"cache_hit_ratio\":{}",
            self.served_by[ServedBy::Source.index()],
            self.served_by[ServedBy::Relay.index()],
            self.served_by[ServedBy::Cache.index()],
            self.cache_hit_ratio(),
        );
        // Fault keys appear only when a plan was active, so a fault-free
        // report stays byte-identical to one from a pre-chaos build.
        if let Some(plan) = self.fault_plan {
            let _ = write!(
                s,
                ",\"fault_plan\":{},\"crashes\":{},\"recoveries\":{},\"partitions_started\":{},\"partitions_healed\":{},\"frames_duplicated\":{},\"burst_drops\":{},\"lease_expiries\":{},\"fallback_floods\":{}",
                mp2p_trace::json::escape(plan),
                self.faults.crashes,
                self.faults.recoveries,
                self.faults.partitions_started,
                self.faults.partitions_healed,
                self.faults.frames_duplicated,
                self.faults.burst_drops,
                self.faults.lease_expiries,
                self.faults.fallback_floods,
            );
        }
        // Recovery keys appear only when the layer was on, so a
        // recovery-off report stays byte-identical to a pre-recovery
        // build's.
        if self.recovery_enabled {
            let _ = write!(
                s,
                ",\"resyncs\":{},\"retransmits\":{},\"delivery_acks\":{},\"handovers\":{},\"retx_queue_peak\":{}",
                self.faults.resyncs,
                self.faults.retransmits,
                self.faults.delivery_acks,
                self.faults.handovers,
                self.faults.retx_queue_peak,
            );
        }
        // Likewise the perf section exists only for profiled runs, so an
        // unprofiled report is byte-identical to a pre-profiler build's.
        if let Some(perf) = &self.perf {
            let _ = write!(s, ",\"perf\":{}", perf.to_json());
        }
        // And the consistency section only for observatory runs.
        if let Some(consistency) = &self.consistency {
            let _ = write!(s, ",\"consistency\":{}", consistency.to_json());
        }
        s.push('}');
        s
    }
}

/// Live state of the fault injector. Present only when the configured
/// plan is non-empty, so the fault-free hot path carries nothing beyond
/// one `Option` discriminant check.
#[derive(Debug)]
struct FaultRuntime {
    /// Dedicated randomness (stream [`FAULT_STREAM`]): an active plan
    /// never perturbs the workload or link streams, so the *pattern* of
    /// faults stays fixed across plans and strategies for one seed.
    rng: SimRng,
    /// The burst-loss chain, replacing the memoryless link model.
    ge: Option<GilbertElliott>,
    /// Per-transmission duplication probability.
    duplicate_prob: f64,
    /// Which partition windows are currently open (plan order).
    partition_active: Vec<bool>,
    /// Crash victims, one per [`mp2p_net::CrashWindow`], resolved from
    /// the fault stream at construction when the plan leaves them open.
    crash_victims: Vec<NodeId>,
}

/// The simulation world. Construct with a [`WorldConfig`], call
/// [`World::run`].
///
/// See the crate-level example.
pub struct World {
    cfg: WorldConfig,
    queue: EventQueue<Event>,
    now: SimTime,
    nodes: Vec<NodeState>,
    /// Interarrival randomness, one stream per node per purpose.
    query_rngs: Vec<SimRng>,
    update_rngs: Vec<SimRng>,
    switch_rngs: Vec<SimRng>,
    link_rng: SimRng,
    topo: Option<(SimTime, Topology)>,
    /// Snapshot-build scratch: spatial-hash bins plus — by recycling the
    /// retired snapshot's CSR arrays — allocation-free steady-state
    /// rebuilds.
    topo_builder: TopologyBuilder,
    /// BFS bookkeeping reused by every topology query.
    topo_scratch: TopologyScratch,
    /// Position/up staging buffers reused across topology rebuilds.
    topo_positions: Vec<Point>,
    topo_up: Vec<bool>,
    /// Oracle-mode shortest-path buffer, reused across sends.
    path_buf: Vec<NodeId>,
    grid: SubnetGrid,
    /// Fig. 9 single-item source (when applicable).
    single_source: Option<NodeId>,
    next_query_id: u64,
    open: std::collections::HashMap<QueryId, OpenQuery>,
    open_writes: std::collections::HashMap<QueryId, OpenWrite>,
    write_rngs: Vec<SimRng>,
    histories: Vec<VersionHistory>,
    // metrics
    traffic: TrafficStats,
    latency: LatencyStats,
    latency_by_level: [LatencyStats; 3],
    audit: ConsistencyAudit,
    audit_by_level: [ConsistencyAudit; 3],
    queries_issued: u64,
    queries_failed: u64,
    served_by: [u64; 3],
    write_latency: LatencyStats,
    writes_issued: u64,
    writes_failed: u64,
    relay_gauge: Gauge,
    candidate_gauge: Gauge,
    route_gauge: Gauge,
    battery_gauge: Gauge,
    /// Fault injector (None unless the plan is non-empty).
    faults: Option<FaultRuntime>,
    fault_stats: FaultStats,
    /// Stale-serve blame tracker (None unless
    /// [`ObservatoryConfig::blame`] is on, so the default hot path pays
    /// one `Option` discriminant check per hook).
    blame: Option<BlameTracker>,
    /// Divergence samples taken by the observatory ticker.
    samples_taken: u64,
    /// Flight recorder. [`NullSink`] by default, so the hot path stays
    /// allocation-free unless a run opts in via [`World::set_tracer`].
    tracer: Box<dyn TraceSink>,
    /// Wall-clock profiler (host-side, strictly observational; disabled
    /// by default so the event loop pays one branch per scope).
    profiler: Profiler,
    /// MAC-level frames transmitted (plus oracle-mode per-hop sends)
    /// over the whole run, warm-up included. A plain counter — always
    /// maintained, reported only through the perf section.
    frames_sent: u64,
    /// Delivery context for provenance lineage: the carrying frame's
    /// `(origin, seq, hops)` while a just-delivered message is being
    /// dispatched to a protocol handler; `None` outside delivery (timer
    /// handlers, loopback and oracle deliveries install copies without a
    /// carrying frame).
    rx_frame: Option<(NodeId, u64, u8)>,
}

impl World {
    /// Builds the world: places nodes, pre-warms caches, seeds streams.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`WorldConfig::validate`].
    pub fn new(cfg: WorldConfig) -> Self {
        cfg.validate();
        let master = cfg.seed;
        let n = cfg.n_peers;
        let grid = SubnetGrid::new(cfg.terrain, cfg.subnet_grid.0, cfg.subnet_grid.1);

        let mut world_rng = SimRng::from_seed(master, WORLD_STREAM);
        let single_source = match cfg.workload {
            WorkloadMode::SingleItem => Some(NodeId::new(world_rng.uniform_u64(n as u64) as u32)),
            WorkloadMode::CachedUniform => None,
        };

        let mut nodes = Vec::with_capacity(n);
        for id in NodeId::all(n) {
            let i = id.index() as u64;
            let mobility = build_mobility(&cfg, SimRng::from_seed(master, 0x100 + i));
            let publishes = match single_source {
                Some(src) => id == src,
                None => true,
            };
            let proto = AnyProtocol::fresh(cfg.strategy, &cfg.proto, publishes);
            nodes.push(NodeState {
                mobility,
                up: true,
                stack: NetStack::new(id, cfg.net),
                proto,
                cache: CacheStore::new(cfg.c_num.max(1)),
                own_item: DataItem::new(id.owned_item(), cfg.proto.content_bytes),
                publishes,
                battery: PeerEnergy::new(cfg.battery_mj),
                rng: SimRng::from_seed(master, 0x200 + i),
                recovery_rng: SimRng::from_seed(master, 0xA00 + i),
                last_cell: (0, 0),
            });
        }

        // Pre-warm caches (the paper's assumed placement mechanism).
        match single_source {
            Some(src) => {
                let item = src.owned_item();
                for node in nodes.iter_mut() {
                    if node.own_item.id() != item {
                        node.cache.insert(
                            item,
                            Version::INITIAL,
                            cfg.proto.content_bytes,
                            SimTime::ZERO,
                        );
                    }
                }
            }
            None => {
                for id in NodeId::all(n) {
                    let mut catalogue: Vec<ItemId> =
                        ItemId::all(n).filter(|it| it.source_host() != id).collect();
                    let mut warm_rng = SimRng::from_seed(master, 0x300 + id.index() as u64);
                    warm_rng.shuffle(&mut catalogue);
                    let node = &mut nodes[id.index()];
                    for &item in catalogue.iter().take(cfg.c_num) {
                        node.cache.insert(
                            item,
                            Version::INITIAL,
                            cfg.proto.content_bytes,
                            SimTime::ZERO,
                        );
                    }
                }
            }
        }

        let histories = (0..n).map(|_| VersionHistory::new()).collect();
        let query_rngs = (0..n)
            .map(|i| SimRng::from_seed(master, 0x400 + i as u64))
            .collect();
        let update_rngs = (0..n)
            .map(|i| SimRng::from_seed(master, 0x500 + i as u64))
            .collect();
        let switch_rngs = (0..n)
            .map(|i| SimRng::from_seed(master, 0x600 + i as u64))
            .collect();
        let write_rngs = (0..n)
            .map(|i| SimRng::from_seed(master, 0x800 + i as u64))
            .collect();

        let faults = if cfg.faults.enabled() {
            let mut rng = SimRng::from_seed(master, FAULT_STREAM);
            let crash_victims = cfg
                .faults
                .crashes
                .iter()
                .map(|w| match w.node {
                    Some(node) => NodeId::new(node),
                    None => NodeId::new(rng.uniform_u64(n as u64) as u32),
                })
                .collect();
            Some(FaultRuntime {
                ge: cfg.faults.ge.map(GilbertElliott::new),
                duplicate_prob: cfg.faults.duplicate_prob,
                partition_active: vec![false; cfg.faults.partitions.len()],
                crash_victims,
                rng,
            })
        } else {
            None
        };

        let mut world = World {
            cfg,
            queue: EventQueue::with_capacity(1024),
            now: SimTime::ZERO,
            nodes,
            query_rngs,
            update_rngs,
            switch_rngs,
            link_rng: SimRng::from_seed(master, 0x700),
            topo: None,
            topo_builder: TopologyBuilder::new(),
            topo_scratch: TopologyScratch::new(),
            topo_positions: Vec::with_capacity(n),
            topo_up: Vec::with_capacity(n),
            path_buf: Vec::new(),
            grid,
            single_source,
            next_query_id: 0,
            open: std::collections::HashMap::new(),
            open_writes: std::collections::HashMap::new(),
            write_rngs,
            histories,
            traffic: TrafficStats::default(),
            latency: LatencyStats::default(),
            latency_by_level: Default::default(),
            audit: ConsistencyAudit::default(),
            audit_by_level: Default::default(),
            queries_issued: 0,
            queries_failed: 0,
            served_by: [0; 3],
            write_latency: LatencyStats::default(),
            writes_issued: 0,
            writes_failed: 0,
            relay_gauge: Gauge::default(),
            candidate_gauge: Gauge::default(),
            route_gauge: Gauge::default(),
            battery_gauge: Gauge::default(),
            faults,
            fault_stats: FaultStats::default(),
            blame: None,
            samples_taken: 0,
            tracer: Box::new(NullSink),
            profiler: Profiler::disabled(),
            frames_sent: 0,
            rx_frame: None,
        };
        if world.cfg.observatory.blame {
            // One item per peer (each node owns exactly one).
            world.blame = Some(BlameTracker::new(n, n));
        }
        world.bootstrap();
        world
    }

    /// Installs a flight-recorder sink for this run and switches the
    /// network stacks' event buffering on (or off for a [`NullSink`]).
    /// Call before [`World::run_traced`]; events from the bootstrap phase
    /// (already past) are not replayed.
    pub fn set_tracer(&mut self, tracer: Box<dyn TraceSink>) {
        let on = tracer.enabled();
        self.tracer = tracer;
        for node in self.nodes.iter_mut() {
            node.stack.set_tracing(on);
        }
    }

    /// Switches wall-clock profiling on for this run: the report gains a
    /// [`RunReport::perf`] section. Profiling only *reads* the host
    /// clock — it never feeds back into simulation state — so a seeded
    /// run produces bit-identical protocol results and trace journals
    /// with or without it (asserted by `profiler_determinism` tests).
    pub fn enable_profiling(&mut self) {
        self.profiler = Profiler::enabled();
    }

    /// Records one event at the current sim time, if tracing is on.
    fn trace(&mut self, event: TraceEvent) {
        if self.tracer.enabled() {
            self.tracer.record(self.now, &event);
        }
    }

    /// Converts the network stack's buffered diagnostics into trace
    /// events. Called on entry to [`World::apply_net_actions`], which is
    /// the single funnel every stack invocation drains through.
    fn drain_net_events(&mut self, node: NodeId) {
        if !self.tracer.enabled() {
            return;
        }
        for ev in self.nodes[node.index()].stack.take_events() {
            // The stack's dup/hop-budget/no-route diagnostics are frame
            // deaths; with provenance on each also closes its frame's
            // life cycle as a schema-4 fate record.
            let fate = match ev {
                NetEvent::FloodDupDrop { origin, seq } => {
                    Some((origin, seq, FrameFateKind::DupDrop))
                }
                NetEvent::HopBudgetDrop { origin, seq, .. } => {
                    Some((origin, seq, FrameFateKind::HopBudgetDrop))
                }
                NetEvent::NoRouteDrop { origin, seq, .. } => {
                    Some((origin, seq, FrameFateKind::NoRouteDrop))
                }
                _ => None,
            };
            let event = match ev {
                NetEvent::FloodDupDrop { origin, .. } => TraceEvent::FloodDupDrop { node, origin },
                NetEvent::FloodTtlExhausted { origin } => {
                    TraceEvent::FloodTtlExhausted { node, origin }
                }
                NetEvent::RreqDupDrop { origin } => TraceEvent::RreqDupDrop { node, origin },
                NetEvent::HopBudgetDrop { origin, dest, .. } => {
                    TraceEvent::HopBudgetDrop { node, origin, dest }
                }
                NetEvent::NoRouteDrop { origin, dest, .. } => {
                    TraceEvent::NoRouteDrop { node, origin, dest }
                }
                NetEvent::DiscoveryStart { dest, attempt } => TraceEvent::DiscoveryStart {
                    node,
                    dest,
                    attempt,
                },
                NetEvent::DiscoveryFailed { dest, dropped } => TraceEvent::DiscoveryFailed {
                    node,
                    dest,
                    dropped,
                },
            };
            self.tracer.record(self.now, &event);
            if self.cfg.provenance.frames {
                if let Some((origin, seq, kind)) = fate {
                    self.note_frame_fate(node, origin, seq, kind);
                }
            }
        }
    }

    /// Journals one frame's terminal fate at `node` (provenance only).
    fn note_frame_fate(&mut self, node: NodeId, origin: NodeId, seq: u64, fate: FrameFateKind) {
        if self.cfg.provenance.frames {
            self.trace(TraceEvent::FrameFate {
                node,
                origin,
                frame: seq,
                fate,
            });
        }
    }

    fn bootstrap(&mut self) {
        // Initial subnet cells.
        for i in 0..self.nodes.len() {
            let pos = self.nodes[i].mobility.position_at(SimTime::ZERO);
            self.nodes[i].last_cell = self.grid.cell_of(pos);
        }
        // Protocol initialisation.
        for id in NodeId::all(self.nodes.len()) {
            self.with_proto(id, |proto, ctx| dispatch!(proto, p => p.on_init(ctx)));
        }
        // Workload streams.
        for id in NodeId::all(self.nodes.len()) {
            if self.queries_enabled(id) {
                self.schedule_next_query(id);
            }
            if self.nodes[id.index()].publishes {
                self.schedule_next_update(id);
            }
            if self.cfg.i_switch.is_some() {
                self.schedule_next_switch(id);
            }
            if self.cfg.i_write.is_some() && self.queries_enabled(id) {
                self.schedule_next_write(id);
            }
        }
        self.queue
            .push(self.now + self.cfg.proto.phi, Event::CoeffTick);
        self.queue
            .push(self.now + self.cfg.sample_period, Event::Sample);
        if let Some(period) = self.cfg.observatory.sample_period {
            self.queue.push(self.now + period, Event::ConsistencyTick);
        }
        // The fault schedule is fixed at bootstrap: every window of the
        // plan becomes a pair of queued actions.
        if self.faults.is_some() {
            for (i, w) in self.cfg.faults.partitions.iter().enumerate() {
                self.queue
                    .push(w.start, Event::Fault(FaultAction::PartitionStart(i)));
                self.queue
                    .push(w.heal, Event::Fault(FaultAction::PartitionHeal(i)));
            }
            for (i, w) in self.cfg.faults.crashes.iter().enumerate() {
                self.queue.push(w.at, Event::Fault(FaultAction::Crash(i)));
                self.queue
                    .push(w.recover, Event::Fault(FaultAction::Recover(i)));
            }
        }
    }

    fn queries_enabled(&self, id: NodeId) -> bool {
        match self.single_source {
            Some(src) => id != src,
            None => true,
        }
    }

    fn schedule_next_query(&mut self, id: NodeId) {
        let gap = self.query_rngs[id.index()].exponential(self.cfg.i_query.as_secs_f64());
        let when = self.now + SimDuration::from_secs_f64(gap).max(SimDuration::from_millis(1));
        self.queue.push(when, Event::Query(id));
    }

    fn schedule_next_update(&mut self, id: NodeId) {
        let gap = self.update_rngs[id.index()].exponential(self.cfg.i_update.as_secs_f64());
        let when = self.now + SimDuration::from_secs_f64(gap).max(SimDuration::from_millis(1));
        self.queue.push(when, Event::Update(id));
    }

    fn schedule_next_write(&mut self, id: NodeId) {
        let Some(i_write) = self.cfg.i_write else {
            return;
        };
        let gap = self.write_rngs[id.index()].exponential(i_write.as_secs_f64());
        let when = self.now + SimDuration::from_secs_f64(gap).max(SimDuration::from_millis(1));
        self.queue.push(when, Event::Write(id));
    }

    fn schedule_next_switch(&mut self, id: NodeId) {
        let Some(i_switch) = self.cfg.i_switch else {
            return;
        };
        // An up node stays up for ~I_Switch, then disconnects for a short
        // off period (~switch_off_mean) before reconnecting.
        let mean = if self.nodes[id.index()].up {
            i_switch
        } else {
            self.cfg.switch_off_mean
        };
        let gap = self.switch_rngs[id.index()].exponential(mean.as_secs_f64());
        let when = self.now + SimDuration::from_secs_f64(gap).max(SimDuration::from_millis(1));
        self.queue.push(when, Event::Switch(id));
    }

    /// Runs to completion and returns the report.
    pub fn run(self) -> RunReport {
        self.run_traced().0
    }

    /// Runs to completion and hands back both the report and the
    /// flight-recorder sink installed via [`World::set_tracer`] (a
    /// [`NullSink`] when none was), flushed and ready for inspection.
    pub fn run_traced(mut self) -> (RunReport, Box<dyn TraceSink>) {
        let end = SimTime::ZERO + self.cfg.sim_time;
        self.profiler.begin();
        while let Some((t, event)) = self.queue.pop() {
            if t > end {
                break;
            }
            debug_assert!(t >= self.now, "event time went backwards");
            self.now = t;
            // Name the bucket before the event is consumed; the scope
            // covers everything the event triggers (message dispatch is
            // additionally sub-attributed to `msg:*` buckets, which
            // therefore nest inside — not add to — the event buckets).
            let bucket = event_bucket(&event);
            let scope = self.profiler.start();
            self.handle(event);
            self.profiler.stop(bucket, scope);
        }
        // Queries still legitimately in flight when the run ends are
        // censored observations, not failures: remove them from the
        // issued count so served + failed == issued stays exact.
        for (_, open) in self.open.drain() {
            if open.measured {
                self.queries_issued -= 1;
            }
        }
        for (_, open) in self.open_writes.drain() {
            if open.measured {
                self.writes_issued -= 1;
            }
        }
        let energy_used_mj = self.nodes.iter().map(|n| n.battery.used_mj()).sum();
        // The queue high-water survives in the live protocol state (it
        // never resets), so sampling once at the end is exact — except
        // across crash wipes, where the pre-crash peak is lost with the
        // rest of the volatile state; the reported peak is then the max
        // over the surviving instances.
        let retx_peak = self
            .nodes
            .iter()
            .map(|n| n.proto.retx_high_water() as u64)
            .max()
            .unwrap_or(0);
        self.fault_stats.retx_queue_peak = self.fault_stats.retx_queue_peak.max(retx_peak);
        let mut tracer = std::mem::replace(&mut self.tracer, Box::new(NullSink));
        tracer.flush();
        let perf = self
            .profiler
            .finish(self.cfg.sim_time.as_millis())
            .map(|mut p| {
                p.queue = self.queue.stats();
                p.frames_sent = self.frames_sent;
                p.journal_bytes = tracer.bytes_written();
                p
            });
        let consistency = self.cfg.observatory.enabled().then(|| ConsistencyReport {
            blame: self
                .blame
                .as_ref()
                .map_or([0; BlameCause::ALL.len()], |b| b.counts()),
            delta_violations: self.blame.as_ref().map_or(0, |b| b.delta_violations()),
            samples: self.samples_taken,
        });
        let report = RunReport {
            strategy: self.cfg.strategy,
            level_mix: self.cfg.level_mix,
            traffic: self.traffic,
            latency: self.latency,
            latency_by_level: self.latency_by_level,
            audit: self.audit,
            audit_by_level: self.audit_by_level,
            queries_issued: self.queries_issued,
            queries_failed: self.queries_failed,
            served_by: self.served_by,
            write_latency: self.write_latency,
            writes_issued: self.writes_issued,
            writes_failed: self.writes_failed,
            relay_gauge: self.relay_gauge,
            candidate_gauge: self.candidate_gauge,
            route_gauge: self.route_gauge,
            battery_gauge: self.battery_gauge,
            energy_used_mj,
            fault_plan: self.faults.is_some().then_some(self.cfg.faults.label),
            faults: self.fault_stats,
            recovery_enabled: self.cfg.proto.recovery.enabled(),
            perf,
            consistency,
            measured: self.cfg.sim_time - self.cfg.warmup,
        };
        (report, tracer)
    }

    fn measuring(&self) -> bool {
        self.now.saturating_since(SimTime::ZERO) >= self.cfg.warmup
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Query(id) => {
                self.handle_query_arrival(id);
                self.schedule_next_query(id);
            }
            Event::Update(id) => {
                let version = self.nodes[id.index()].own_item.update();
                self.histories[id.index()].record_update(self.now);
                self.trace(TraceEvent::SourceUpdate {
                    node: id,
                    item: id.owned_item(),
                    version: version.get(),
                });
                self.stamp_partition_victims(id, id.owned_item());
                self.with_proto(
                    id,
                    |proto, ctx| dispatch!(proto, p => p.on_source_update(ctx)),
                );
                self.schedule_next_update(id);
            }
            Event::Write(id) => {
                self.handle_write_arrival(id);
                self.schedule_next_write(id);
            }
            Event::WriteRetry { at, write } => {
                let Some(open) = self.open_writes.get(&write).copied() else {
                    return; // already acknowledged
                };
                if open.attempt >= 3 {
                    self.close_write_failed(write);
                } else {
                    self.open_writes.get_mut(&write).expect("checked").attempt += 1;
                    self.send_write(at, write, open.item);
                }
            }
            Event::Switch(id) => {
                let up = !self.nodes[id.index()].up;
                self.nodes[id.index()].up = up;
                self.topo = None; // connectivity changed
                self.trace(if up {
                    TraceEvent::NodeUp { node: id }
                } else {
                    TraceEvent::NodeDown { node: id }
                });
                self.with_proto(
                    id,
                    |proto, ctx| dispatch!(proto, p => p.on_status_change(ctx, up)),
                );
                self.schedule_next_switch(id);
            }
            Event::Rx { at, from, frame } => self.handle_rx(at, from, frame),
            Event::NetTimer { at, timer } => {
                let actions = self.nodes[at.index()].stack.on_timer(self.now, timer);
                self.apply_net_actions(at, actions);
            }
            Event::ProtoTimer { at, timer } => {
                self.with_proto(
                    at,
                    |proto, ctx| dispatch!(proto, p => p.on_timer(ctx, timer)),
                );
            }
            Event::OracleDeliver { at, from, msg } => {
                if self.nodes[at.index()].up {
                    self.trace(TraceEvent::MsgDeliver {
                        node: at,
                        origin: from,
                        class: msg.class(),
                        hops: 0, // the oracle bypasses hop accounting
                        via_flood: false,
                        span: msg.span(),
                    });
                    let bucket = msg_bucket(msg.class());
                    let scope = self.profiler.start();
                    self.with_proto(
                        at,
                        |proto, ctx| dispatch!(proto, p => p.on_message(ctx, from, msg)),
                    );
                    self.profiler.stop(bucket, scope);
                }
            }
            Event::CoeffTick => {
                for id in NodeId::all(self.nodes.len()) {
                    let pos = self.nodes[id.index()].mobility.position_at(self.now);
                    let cell = self.grid.cell_of(pos);
                    let moved = cell != self.nodes[id.index()].last_cell;
                    self.nodes[id.index()].last_cell = cell;
                    self.with_proto(
                        id,
                        |proto, ctx| dispatch!(proto, p => p.on_coefficient_tick(ctx, moved)),
                    );
                }
                self.queue
                    .push(self.now + self.cfg.proto.phi, Event::CoeffTick);
            }
            Event::Sample => {
                self.take_samples();
                self.queue
                    .push(self.now + self.cfg.sample_period, Event::Sample);
            }
            Event::ConsistencyTick => {
                self.sample_consistency();
                if let Some(period) = self.cfg.observatory.sample_period {
                    self.queue.push(self.now + period, Event::ConsistencyTick);
                }
            }
            Event::Fault(action) => self.handle_fault(action),
        }
    }

    /// Applies one scheduled action of the active fault plan.
    fn handle_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::PartitionStart(idx) => {
                let axis = self.cfg.faults.partitions[idx].axis;
                if let Some(fr) = self.faults.as_mut() {
                    fr.partition_active[idx] = true;
                }
                self.topo = None; // connectivity changed
                self.fault_stats.partitions_started += 1;
                self.trace(TraceEvent::PartitionStart { axis: axis.tag() });
            }
            FaultAction::PartitionHeal(idx) => {
                let axis = self.cfg.faults.partitions[idx].axis;
                if let Some(fr) = self.faults.as_mut() {
                    fr.partition_active[idx] = false;
                }
                self.topo = None;
                self.fault_stats.partitions_healed += 1;
                self.trace(TraceEvent::PartitionHeal { axis: axis.tag() });
            }
            FaultAction::Crash(idx) => self.crash_node(idx),
            FaultAction::Recover(idx) => self.recover_node(idx),
        }
    }

    /// A hard crash: volatile state — cache contents, relay duties,
    /// pending polls, route tables — is wiped and rebuilt empty, and
    /// queries pending at the node die with it. Only the durable master
    /// copy of the node's own item survives. Contrast with
    /// [`Event::Switch`], which merely silences a node while all its
    /// state persists.
    fn crash_node(&mut self, idx: usize) {
        let id = match self.faults.as_ref() {
            Some(fr) => fr.crash_victims[idx],
            None => return,
        };
        let mut orphans: Vec<QueryId> = self
            .open
            .iter()
            .filter(|(_, q)| q.node == id)
            .map(|(&q, _)| q)
            .collect();
        orphans.sort_unstable(); // hash order is process-random
        for query in orphans {
            self.close_failed(id, query);
        }
        let mut dead_writes: Vec<QueryId> = self
            .open_writes
            .iter()
            .filter(|(_, w)| w.writer == id)
            .map(|(&q, _)| q)
            .collect();
        dead_writes.sort_unstable();
        for write in dead_writes {
            self.close_write_failed(write);
        }
        if let Some(blame) = self.blame.as_mut() {
            // The crash is about to destroy every cached copy; whatever
            // stale answer the node later gives for these items traces
            // back to this wipe (unless a sharper cause supersedes it).
            for (item, _) in self.nodes[id.index()].cache.iter() {
                let version = self.histories[item.index()].current().get();
                blame.stamp_crash(id, item, version);
            }
        }
        let tracing = self.tracer.enabled();
        // The wipe below discards the retransmit queue with the rest of
        // the volatile state, so fold its high-water mark into the run
        // peak before it is lost.
        let retx_peak = self.nodes[id.index()].proto.retx_high_water() as u64;
        self.fault_stats.retx_queue_peak = self.fault_stats.retx_queue_peak.max(retx_peak);
        let node = &mut self.nodes[id.index()];
        node.up = false;
        node.cache = CacheStore::new(self.cfg.c_num.max(1));
        node.stack = NetStack::new(id, self.cfg.net);
        node.stack.set_tracing(tracing);
        node.proto = AnyProtocol::fresh(self.cfg.strategy, &self.cfg.proto, node.publishes);
        self.topo = None;
        self.fault_stats.crashes += 1;
        self.trace(TraceEvent::NodeCrash { node: id });
    }

    /// Recovery from a crash: the node rejoins with its volatile state
    /// still empty. `on_init` is deliberately NOT re-run — the perpetual
    /// timer chains scheduled before the crash (TTN, relay-hold sweeps)
    /// are still queued and resume against the fresh instance, exactly
    /// as a rebooted host rejoining mid-protocol would.
    fn recover_node(&mut self, idx: usize) {
        let id = match self.faults.as_ref() {
            Some(fr) => fr.crash_victims[idx],
            None => return,
        };
        self.nodes[id.index()].up = true;
        self.topo = None;
        self.fault_stats.recoveries += 1;
        self.trace(TraceEvent::NodeRecover { node: id });
        self.with_proto(
            id,
            |proto, ctx| dispatch!(proto, p => p.on_status_change(ctx, true)),
        );
    }

    fn take_samples(&mut self) {
        let idle = self.cfg.energy.idle_cost(self.cfg.sample_period);
        let mut relays = 0usize;
        let mut candidates = 0usize;
        let mut routes = 0usize;
        let mut battery_total = 0.0;
        for node in self.nodes.iter_mut() {
            node.battery.drain(idle);
            relays += node.proto.relay_item_count();
            candidates += usize::from(node.proto.is_candidate());
            routes += node.stack.route_count(self.now);
            battery_total += node.battery.fraction_remaining();
        }
        if self.measuring() {
            self.relay_gauge.sample(relays as f64);
            self.candidate_gauge.sample(candidates as f64);
            self.route_gauge.sample(routes as f64);
            self.battery_gauge
                .sample(battery_total / self.nodes.len() as f64);
        }
    }

    /// One tick of the observatory's divergence sampler: snapshot the
    /// global replica state and emit a `ConsistencySample` timeline
    /// record. Aggregation is order-independent, so the cache stores'
    /// hash-order iteration cannot perturb the result.
    fn sample_consistency(&mut self) {
        self.samples_taken += 1;
        let mut fresh: u32 = 0;
        let mut total: u32 = 0;
        let mut ages = [0u32; AGE_BUCKETS];
        let mut replicas = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            for (item, entry) in node.cache.iter() {
                total += 1;
                replicas[item.index()] += 1;
                let hist = &self.histories[item.index()];
                if entry.version >= hist.current() {
                    fresh += 1;
                } else {
                    ages[age_bucket(hist.staleness(entry.version, self.now))] += 1;
                }
            }
        }
        let items_replicated = replicas.iter().filter(|&&n| n > 0).count() as u32;
        let max_replicas = replicas.iter().copied().max().unwrap_or(0);
        let relay_nodes = self
            .nodes
            .iter()
            .filter(|n| n.proto.relay_item_count() > 0)
            .count() as u32;
        self.ensure_topology();
        let (_, topo) = self.topo.as_ref().expect("just refreshed");
        let partitions = topo.components_with(&mut self.topo_scratch).len() as u32;
        self.trace(TraceEvent::ConsistencySample {
            fresh_copies: fresh,
            total_copies: total,
            items_replicated,
            max_replicas,
            partitions,
            relay_nodes,
            ages,
        });
    }

    /// Blame hook at a source update: stamp every cached copy whose
    /// holder cannot currently be reached from the source — it is in a
    /// different connectivity component, or down — as obstructed by
    /// partition at the new version.
    fn stamp_partition_victims(&mut self, source: NodeId, item: ItemId) {
        if self.blame.is_none() {
            return;
        }
        let version = self.histories[item.index()].current().get();
        self.ensure_topology();
        let (_, topo) = self.topo.as_ref().expect("just refreshed");
        let components = topo.components_with(&mut self.topo_scratch);
        let reachable: Vec<bool> = {
            let mut reach = vec![false; self.nodes.len()];
            if let Some(comp) = components.iter().find(|c| c.contains(&source)) {
                for &n in comp {
                    reach[n.index()] = true;
                }
            }
            reach
        };
        let blame = self.blame.as_mut().expect("checked above");
        for (i, node) in self.nodes.iter().enumerate() {
            if !reachable[i] && node.cache.contains(item) {
                blame.stamp_partitioned(NodeId::new(i as u32), item, version);
            }
        }
    }

    /// Blame hook for a lost frame: if it carried an update propagation
    /// (invalidation / update / send-new), stamp the deprived copy. For a
    /// unicast the victim is the frame's final destination; for a flood,
    /// the receiver that failed to hear it.
    fn note_frame_lost(&mut self, at: NodeId, frame: &Frame<ProtoMsg>) {
        let Some(blame) = self.blame.as_mut() else {
            return;
        };
        let Some((item, version)) = frame.app_payload().and_then(propagation_of) else {
            return;
        };
        let victim = match frame {
            Frame::Unicast { dest, .. } => *dest,
            Frame::Flood { .. } => at,
        };
        blame.stamp_lost(victim, item, version);
    }

    /// Blame hook for an outgoing protocol message: remember the highest
    /// version ever handed to the network per item, so a stale serve with
    /// no specific obstruction flag can be split into race-in-flight
    /// (propagation was sent but had not landed) versus update-never-sent
    /// (the strategy simply had not pushed the version at all).
    fn note_propagation(&mut self, msg: &ProtoMsg) {
        if let Some(blame) = self.blame.as_mut() {
            if let Some((item, version)) = propagation_of(msg) {
                blame.note_propagated(item, version);
            }
        }
    }

    fn handle_query_arrival(&mut self, id: NodeId) {
        let item = match self.single_source {
            Some(src) => src.owned_item(),
            None => {
                let mut cached: Vec<ItemId> = self.nodes[id.index()]
                    .cache
                    .iter()
                    .map(|(it, _)| it)
                    .collect();
                // The store iterates in process-random hash order; sort so
                // the uniform choice below is deterministic per seed.
                cached.sort_unstable();
                match self.nodes[id.index()].rng.choose(&cached) {
                    Some(&item) => item,
                    None => return, // empty cache: nothing to query
                }
            }
        };
        let level = self.cfg.level_mix.sample(&mut self.nodes[id.index()].rng);
        let query = QueryId(self.next_query_id);
        self.next_query_id += 1;
        let measured = self.measuring();
        self.open.insert(
            query,
            OpenQuery {
                node: id,
                item,
                level,
                issued: self.now,
                measured,
            },
        );
        if measured {
            self.queries_issued += 1;
        }
        self.trace(TraceEvent::QueryIssued {
            node: id,
            query: query.0,
            item,
            level: level_tag(level),
        });
        self.with_proto(
            id,
            |proto, ctx| dispatch!(proto, p => p.on_query(ctx, query, item, level)),
        );
    }

    fn handle_rx(&mut self, at: NodeId, from: NodeId, frame: Frame<ProtoMsg>) {
        if !self.nodes[at.index()].up {
            let (origin, seq) = frame.provenance();
            self.note_frame_fate(at, origin, seq, FrameFateKind::DownDrop);
            return; // switched-off nodes hear nothing
        }
        // Channel loss. A Gilbert–Elliott chain (when the fault plan
        // installs one) replaces the memoryless link model entirely;
        // drops rolled in its bad state are counted as burst losses.
        let dropped_in_burst = if let Some(fr) = self.faults.as_mut() {
            if let Some(ge) = fr.ge.as_mut() {
                let was_bad = ge.is_bad();
                if ge.delivered(&mut fr.rng) {
                    None
                } else {
                    Some(was_bad)
                }
            } else if self.cfg.link.delivered(&mut self.link_rng) {
                None
            } else {
                Some(false)
            }
        } else if self.cfg.link.delivered(&mut self.link_rng) {
            None
        } else {
            Some(false)
        };
        match dropped_in_burst {
            None => {}
            Some(false) => {
                // Channel loss.
                self.note_frame_lost(at, &frame);
                let (origin, seq) = frame.provenance();
                self.note_frame_fate(at, origin, seq, FrameFateKind::ChannelDrop);
                return;
            }
            Some(true) => {
                self.fault_stats.burst_drops += 1;
                self.trace(TraceEvent::BurstDrop { node: at });
                self.note_frame_lost(at, &frame);
                let (origin, seq) = frame.provenance();
                self.note_frame_fate(at, origin, seq, FrameFateKind::BurstDrop);
                return;
            }
        }
        let rx_cost = self.cfg.energy.rx_cost(frame.size());
        self.nodes[at.index()].battery.drain(rx_cost);
        let actions = self.nodes[at.index()].stack.on_frame(self.now, from, frame);
        self.apply_net_actions(at, actions);
    }

    /// Current topology snapshot, rebuilt when stale.
    fn topology(&mut self) -> &Topology {
        self.ensure_topology();
        &self.topo.as_ref().expect("just built").1
    }

    /// Rebuilds the topology snapshot if stale. Steady-state rebuilds
    /// recycle the staging buffers, the builder's spatial-hash bins and
    /// the retired snapshot's CSR arrays, so a refresh allocates nothing
    /// once the run is warm.
    fn ensure_topology(&mut self) {
        let stale = match &self.topo {
            Some((built, _)) => self.now.saturating_since(*built) > self.cfg.topology_refresh,
            None => true,
        };
        if !stale {
            return;
        }
        let now = self.now;
        let mut positions = std::mem::take(&mut self.topo_positions);
        positions.clear();
        positions.extend(self.nodes.iter_mut().map(|n| n.mobility.position_at(now)));
        let mut up = std::mem::take(&mut self.topo_up);
        up.clear();
        up.extend(self.nodes.iter().map(|n| n.up));
        let axes = self.active_partition_axes();
        let recycle = self.topo.take().map(|(_, t)| t);
        let topo = if axes.is_empty() {
            self.topo_builder
                .rebuild(recycle, &positions, &up, self.cfg.range, |_, _| true)
        } else {
            // A bisection partition severs every link crossing the
            // terrain midline of each open window's axis; nodes keep
            // moving and hearing their own side.
            let mid_x = self.cfg.terrain.width() / 2.0;
            let mid_y = self.cfg.terrain.height() / 2.0;
            let pos = &positions;
            self.topo_builder
                .rebuild(recycle, pos, &up, self.cfg.range, |a, b| {
                    axes.iter().all(|axis| match axis {
                        Axis::Vertical => (pos[a].x < mid_x) == (pos[b].x < mid_x),
                        Axis::Horizontal => (pos[a].y < mid_y) == (pos[b].y < mid_y),
                    })
                })
        };
        self.topo_positions = positions;
        self.topo_up = up;
        self.topo = Some((now, topo));
    }

    /// Axes of the currently open partition windows (deduplicated, plan
    /// order). Empty — without allocating — for a fault-free run.
    fn active_partition_axes(&self) -> Vec<Axis> {
        let Some(fr) = self.faults.as_ref() else {
            return Vec::new();
        };
        let mut axes: Vec<Axis> = self
            .cfg
            .faults
            .partitions
            .iter()
            .zip(&fr.partition_active)
            .filter(|(_, &active)| active)
            .map(|(w, _)| w.axis)
            .collect();
        axes.dedup();
        axes
    }

    /// Rolls the fault plan's duplication dice for one transmission and
    /// returns the duplicate copy's extra delay beyond the original's.
    fn duplicate_delay(&mut self, frame_bytes: u32) -> Option<SimDuration> {
        let fr = self.faults.as_mut()?;
        if fr.duplicate_prob <= 0.0 || !fr.rng.bernoulli(fr.duplicate_prob) {
            return None;
        }
        Some(self.cfg.link.hop_delay(frame_bytes, &mut fr.rng))
    }

    /// Counts one MAC transmission towards the traffic metric (when past
    /// warm-up) and the flight recorder (always; the summary sink applies
    /// its own warm-up filter so the two stay byte-identical).
    fn record_transmission(&mut self, node: NodeId, frame: &Frame<ProtoMsg>, dest: Option<NodeId>) {
        let class = frame_class(frame);
        let bytes = frame.size();
        self.frames_sent += 1;
        if self.measuring() {
            self.traffic.record(class, bytes);
        }
        self.trace(TraceEvent::MsgSend {
            node,
            class,
            bytes,
            dest,
            span: frame_span(frame),
        });
        if self.cfg.provenance.frames {
            let (origin, seq) = frame.provenance();
            if frame.hops() == 0 {
                // The origin's own transmission: the frame is born here.
                let (item, version) = frame
                    .app_payload()
                    .and_then(propagation_of)
                    .map_or((None, 0), |(item, version)| (Some(item), version));
                let final_dest = match frame {
                    Frame::Unicast { dest, .. } => Some(*dest),
                    Frame::Flood { .. } => None,
                };
                self.trace(TraceEvent::FrameBorn {
                    node,
                    frame: seq,
                    class,
                    dest: final_dest,
                    item,
                    version,
                });
            } else {
                self.trace(TraceEvent::FrameHop {
                    node,
                    origin,
                    frame: seq,
                    hops: frame.hops(),
                });
            }
        }
    }

    fn apply_net_actions(&mut self, node: NodeId, actions: Vec<NetAction<ProtoMsg>>) {
        self.drain_net_events(node);
        for action in actions {
            match action {
                NetAction::Broadcast(frame) => {
                    if !self.nodes[node.index()].up {
                        continue; // a down node cannot transmit
                    }
                    self.record_transmission(node, &frame, None);
                    let tx_cost = self.cfg.energy.tx_cost(frame.size());
                    self.nodes[node.index()].battery.drain(tx_cost);
                    let delay = self.cfg.link.hop_delay(frame.size(), &mut self.link_rng);
                    // In-flight duplication (fault plan): the whole
                    // broadcast is heard a second time after an extra,
                    // independently drawn hop delay. The dice roll and
                    // trace record are hoisted above the enqueue loops
                    // (which draw no randomness and emit no trace events,
                    // so observable order is unchanged) to let the
                    // neighbour slice borrow the snapshot directly
                    // instead of being cloned per broadcast.
                    let extra = self.duplicate_delay(frame.size());
                    if extra.is_some() {
                        self.fault_stats.frames_duplicated += 1;
                        self.trace(TraceEvent::FrameDup {
                            node,
                            class: frame_class(&frame),
                        });
                    }
                    self.ensure_topology();
                    let topo = &self.topo.as_ref().expect("just refreshed").1;
                    for &nb in topo.neighbors(node) {
                        self.queue.push(
                            self.now + delay,
                            Event::Rx {
                                at: nb,
                                from: node,
                                frame: frame.clone(),
                            },
                        );
                    }
                    if let Some(extra) = extra {
                        for &nb in topo.neighbors(node) {
                            self.queue.push(
                                self.now + delay + extra,
                                Event::Rx {
                                    at: nb,
                                    from: node,
                                    frame: frame.clone(),
                                },
                            );
                        }
                    }
                }
                NetAction::Send { next_hop, frame } => {
                    if !self.nodes[node.index()].up {
                        continue;
                    }
                    self.record_transmission(node, &frame, Some(next_hop));
                    let tx_cost = self.cfg.energy.tx_cost(frame.size());
                    self.nodes[node.index()].battery.drain(tx_cost);
                    let reachable = self.topology().are_neighbors(node, next_hop)
                        && self.nodes[next_hop.index()].up;
                    if reachable {
                        let delay = self.cfg.link.hop_delay(frame.size(), &mut self.link_rng);
                        if let Some(extra) = self.duplicate_delay(frame.size()) {
                            self.fault_stats.frames_duplicated += 1;
                            self.trace(TraceEvent::FrameDup {
                                node,
                                class: frame_class(&frame),
                            });
                            self.queue.push(
                                self.now + delay + extra,
                                Event::Rx {
                                    at: next_hop,
                                    from: node,
                                    frame: frame.clone(),
                                },
                            );
                        }
                        self.queue.push(
                            self.now + delay,
                            Event::Rx {
                                at: next_hop,
                                from: node,
                                frame,
                            },
                        );
                    } else {
                        self.trace(TraceEvent::MacDrop {
                            node,
                            next_hop,
                            class: frame_class(&frame),
                        });
                        self.note_frame_lost(next_hop, &frame);
                        let (origin, seq) = frame.provenance();
                        self.note_frame_fate(next_hop, origin, seq, FrameFateKind::MacDrop);
                        // MAC-level delivery failure feedback (Section 4.5).
                        let follow_up = self.nodes[node.index()]
                            .stack
                            .on_send_failed(self.now, next_hop, frame);
                        self.apply_net_actions(node, follow_up);
                    }
                }
                NetAction::Deliver { payload, meta } => {
                    if let Some(seq) = meta.frame {
                        self.note_frame_fate(node, meta.origin, seq, FrameFateKind::Delivered);
                    }
                    self.trace(TraceEvent::MsgDeliver {
                        node,
                        origin: meta.origin,
                        class: payload.class(),
                        hops: meta.hops,
                        via_flood: meta.via_flood,
                        span: payload.span(),
                    });
                    let bucket = msg_bucket(payload.class());
                    let scope = self.profiler.start();
                    // Expose the carrying frame to the handler's outputs so
                    // a copy install inside can be paired with its lineage.
                    self.rx_frame = meta.frame.map(|seq| (meta.origin, seq, meta.hops));
                    match payload {
                        // Replica writes are driver-level machinery: apply at
                        // the source, acknowledge to the writer; the running
                        // consistency strategy propagates the change.
                        ProtoMsg::WriteRequest { item, .. } => {
                            self.handle_write_request(node, meta.origin, item);
                        }
                        ProtoMsg::WriteAck { item, version } => {
                            self.handle_write_ack(node, item, version);
                        }
                        _ => {
                            self.with_proto(node, |proto, ctx| {
                            dispatch!(proto, p => p.on_message(ctx, meta.origin, payload))
                        });
                        }
                    }
                    self.rx_frame = None;
                    self.profiler.stop(bucket, scope);
                }
                NetAction::SetTimer { after, timer } => {
                    self.queue
                        .push(self.now + after, Event::NetTimer { at: node, timer });
                }
                NetAction::Undeliverable { dest, payload } => {
                    self.trace(TraceEvent::Undeliverable {
                        node,
                        dest,
                        class: payload.class(),
                    });
                    if let Some(blame) = self.blame.as_mut() {
                        if let Some((item, version)) = propagation_of(&payload) {
                            blame.stamp_lost(dest, item, version);
                        }
                    }
                    match payload {
                        ProtoMsg::WriteRequest { item, .. } => {
                            // The writer's own retry timer decides when to
                            // give up; discovery failure just means wait
                            // for it.
                            let _ = (dest, item);
                        }
                        _ => {
                            self.with_proto(node, |proto, ctx| {
                                dispatch!(proto, p => p.on_undeliverable(ctx, dest, payload))
                            });
                        }
                    }
                }
            }
        }
    }

    /// Runs `f` against node `id`'s protocol with a fresh context, then
    /// applies the buffered outputs.
    fn with_proto<F: FnOnce(&mut AnyProtocol, &mut Ctx<'_>)>(&mut self, id: NodeId, f: F) {
        let outputs = {
            let node = &mut self.nodes[id.index()];
            let energy = node.battery.fraction_remaining();
            let mut ctx = Ctx::new(
                self.now,
                id,
                &mut node.cache,
                &mut node.own_item,
                &mut node.rng,
                &self.cfg.proto,
                energy,
                node.up,
            );
            ctx.recovery_rng = Some(&mut node.recovery_rng);
            f(&mut node.proto, &mut ctx);
            ctx.take_outputs()
        };
        // Snapshot the delivery context: nested dispatches (loopback
        // sends recurse through apply_net_actions) reset `self.rx_frame`,
        // but every output of *this* handler belongs to this delivery.
        let rx_frame = self.rx_frame;
        for out in outputs {
            match out {
                CtxOut::Send { to, msg } => {
                    self.note_propagation(&msg);
                    match self.cfg.routing {
                        RoutingMode::OnDemand => {
                            let size = msg.size_bytes();
                            let actions = self.nodes[id.index()]
                                .stack
                                .send_app(self.now, to, msg, size);
                            self.apply_net_actions(id, actions);
                        }
                        RoutingMode::Oracle => self.oracle_send(id, to, msg),
                    }
                }
                CtxOut::Flood { ttl, msg } => {
                    self.note_propagation(&msg);
                    let size = msg.size_bytes();
                    let actions = self.nodes[id.index()]
                        .stack
                        .flood_app(self.now, ttl, msg, size);
                    self.apply_net_actions(id, actions);
                }
                CtxOut::SetTimer { after, timer } => {
                    self.queue
                        .push(self.now + after, Event::ProtoTimer { at: id, timer });
                }
                CtxOut::Answer {
                    query,
                    version,
                    served_by,
                } => self.close_answered(id, query, version, served_by),
                CtxOut::Fail { query } => self.close_failed(id, query),
                CtxOut::Transition { item, kind } => {
                    self.trace(TraceEvent::RelayTransition {
                        node: id,
                        item,
                        kind,
                    });
                }
                CtxOut::QueryPhase {
                    query,
                    item,
                    phase,
                    attempt,
                } => {
                    self.trace(TraceEvent::QueryPhase {
                        node: id,
                        query: query.0,
                        item,
                        phase,
                        attempt,
                    });
                }
                CtxOut::CopyInstalled { item, version } => {
                    // Lineage exists only for copies that arrived on a
                    // frame; timer-driven or loopback installs have none.
                    if self.cfg.provenance.lineage {
                        if let Some((origin, seq, hops)) = rx_frame {
                            self.trace(TraceEvent::CopyLineage {
                                node: id,
                                item,
                                version: version.get(),
                                origin,
                                frame: seq,
                                hops,
                            });
                        }
                    }
                }
                CtxOut::Degraded { item, query, kind } => match kind {
                    DegradationKind::RelayLeaseExpired => {
                        self.fault_stats.lease_expiries += 1;
                        if let Some(blame) = self.blame.as_mut() {
                            let version = self.histories[item.index()].current().get();
                            blame.stamp_lease(id, item, version);
                        }
                        self.trace(TraceEvent::RelayLeaseExpired { node: id, item });
                    }
                    DegradationKind::FallbackFlood => {
                        self.fault_stats.fallback_floods += 1;
                        self.trace(TraceEvent::FallbackFlood {
                            node: id,
                            query: query.map_or(0, |q| q.0),
                            item,
                        });
                    }
                },
                CtxOut::Recovery { action } => match action {
                    RecoveryAction::ResyncStart { items } => {
                        self.fault_stats.resyncs += 1;
                        self.trace(TraceEvent::ResyncStart { node: id, items });
                    }
                    RecoveryAction::ResyncDone { stale } => {
                        self.trace(TraceEvent::ResyncDone { node: id, stale });
                    }
                    RecoveryAction::Retransmit {
                        dest,
                        item,
                        seq,
                        attempt,
                    } => {
                        self.fault_stats.retransmits += 1;
                        self.trace(TraceEvent::RecoveryRetransmit {
                            node: id,
                            dest,
                            item,
                            seq,
                            attempt,
                        });
                    }
                    RecoveryAction::AckReceived { peer, item, seq } => {
                        self.fault_stats.delivery_acks += 1;
                        self.trace(TraceEvent::RecoveryAck {
                            node: id,
                            peer,
                            item,
                            seq,
                        });
                    }
                    RecoveryAction::HandoverRequest { item, version } => {
                        self.handle_handover_request(id, item, version);
                    }
                },
            }
        }
    }

    /// Resolves a relay-lease handover request: elect the lowest-id up
    /// neighbour that caches the item (and is not its source host) and
    /// hand it the expiring role; with no eligible successor the expiry
    /// degrades exactly as it would with handover off.
    fn handle_handover_request(&mut self, from: NodeId, item: ItemId, version: Version) {
        self.ensure_topology();
        let winner = {
            let topo = &self.topo.as_ref().expect("just refreshed").1;
            // CSR neighbour lists are ascending, so the first hit is the
            // deterministic lowest-id successor.
            topo.neighbors(from).iter().copied().find(|&n| {
                let node = &self.nodes[n.index()];
                node.up && item.source_host() != n && node.cache.contains(item)
            })
        };
        match winner {
            Some(to) => {
                self.fault_stats.handovers += 1;
                self.trace(TraceEvent::RelayHandover { from, to, item });
                let msg = ProtoMsg::Handover { item, version };
                match self.cfg.routing {
                    RoutingMode::OnDemand => {
                        let size = msg.size_bytes();
                        let actions = self.nodes[from.index()]
                            .stack
                            .send_app(self.now, to, msg, size);
                        self.apply_net_actions(from, actions);
                    }
                    RoutingMode::Oracle => self.oracle_send(from, to, msg),
                }
            }
            None => {
                self.fault_stats.lease_expiries += 1;
                if let Some(blame) = self.blame.as_mut() {
                    let v = self.histories[item.index()].current().get();
                    blame.stamp_lease(from, item, v);
                }
                self.trace(TraceEvent::RelayLeaseExpired { node: from, item });
            }
        }
    }

    /// Oracle-mode unicast: the message follows the current BFS shortest
    /// path with per-hop costs but zero routing control.
    fn oracle_send(&mut self, from: NodeId, to: NodeId, msg: ProtoMsg) {
        if to == from {
            self.with_proto(
                from,
                |proto, ctx| dispatch!(proto, p => p.on_message(ctx, from, msg)),
            );
            return;
        }
        if !self.nodes[from.index()].up {
            return; // a down node cannot transmit
        }
        // Take the reusable path buffer out of `self` so per-hop costing
        // below can borrow the world mutably; no allocation either way.
        let mut path = std::mem::take(&mut self.path_buf);
        self.ensure_topology();
        let topo = &self.topo.as_ref().expect("just refreshed").1;
        let found = topo.shortest_path_with(&mut self.topo_scratch, from, to, &mut path);
        if found {
            let size = msg.size_bytes();
            let mut arrival = self.now;
            for pair in path.windows(2) {
                self.frames_sent += 1;
                if self.measuring() {
                    self.traffic.record(msg.class(), size);
                }
                self.trace(TraceEvent::MsgSend {
                    node: pair[0],
                    class: msg.class(),
                    bytes: size,
                    dest: Some(pair[1]),
                    span: msg.span(),
                });
                let tx_cost = self.cfg.energy.tx_cost(size);
                self.nodes[pair[0].index()].battery.drain(tx_cost);
                let rx_cost = self.cfg.energy.rx_cost(size);
                self.nodes[pair[1].index()].battery.drain(rx_cost);
                arrival += self.cfg.link.hop_delay(size, &mut self.link_rng);
            }
            self.queue
                .push(arrival, Event::OracleDeliver { at: to, from, msg });
        } else {
            // No path: surface as the MAC-level failure the protocols
            // already handle.
            self.with_proto(
                from,
                |proto, ctx| dispatch!(proto, p => p.on_undeliverable(ctx, to, msg)),
            );
        }
        self.path_buf = path;
    }

    /// A node decides to write one of its cached items (extension).
    fn handle_write_arrival(&mut self, id: NodeId) {
        let item = match self.single_source {
            Some(src) => src.owned_item(),
            None => {
                let mut cached: Vec<ItemId> = self.nodes[id.index()]
                    .cache
                    .iter()
                    .map(|(it, _)| it)
                    .collect();
                cached.sort_unstable();
                match self.nodes[id.index()].rng.choose(&cached) {
                    Some(&item) => item,
                    None => return,
                }
            }
        };
        let write = QueryId(self.next_query_id);
        self.next_query_id += 1;
        let measured = self.measuring();
        self.open_writes.insert(
            write,
            OpenWrite {
                writer: id,
                item,
                issued: self.now,
                attempt: 1,
                measured,
            },
        );
        if measured {
            self.writes_issued += 1;
        }
        self.send_write(id, write, item);
    }

    fn send_write(&mut self, id: NodeId, write: QueryId, item: ItemId) {
        let msg = ProtoMsg::WriteRequest {
            item,
            content_bytes: self.cfg.proto.content_bytes,
        };
        match self.cfg.routing {
            RoutingMode::OnDemand => {
                let size = msg.size_bytes();
                let actions =
                    self.nodes[id.index()]
                        .stack
                        .send_app(self.now, item.source_host(), msg, size);
                self.apply_net_actions(id, actions);
            }
            RoutingMode::Oracle => self.oracle_send(id, item.source_host(), msg),
        }
        self.queue.push(
            self.now + self.cfg.proto.fetch_timeout,
            Event::WriteRetry { at: id, write },
        );
    }

    /// The source host serialises an incoming replica write.
    fn handle_write_request(&mut self, node: NodeId, writer: NodeId, item: ItemId) {
        if item.source_host() != node || !self.nodes[node.index()].publishes {
            return; // misrouted or unpublished item
        }
        let version = self.nodes[node.index()].own_item.update();
        self.histories[item.index()].record_update(self.now);
        self.trace(TraceEvent::SourceUpdate {
            node,
            item,
            version: version.get(),
        });
        self.stamp_partition_victims(node, item);
        self.with_proto(
            node,
            |proto, ctx| dispatch!(proto, p => p.on_source_update(ctx)),
        );
        let ack = ProtoMsg::WriteAck { item, version };
        match self.cfg.routing {
            RoutingMode::OnDemand => {
                let size = ack.size_bytes();
                let actions = self.nodes[node.index()]
                    .stack
                    .send_app(self.now, writer, ack, size);
                self.apply_net_actions(node, actions);
            }
            RoutingMode::Oracle => self.oracle_send(node, writer, ack),
        }
    }

    /// The writer's acknowledgement arrived: the write is durable.
    fn handle_write_ack(&mut self, node: NodeId, item: ItemId, version: Version) {
        // Writes are acknowledged once; duplicates from retries are benign.
        let Some((&write, _)) = self
            .open_writes
            .iter()
            .filter(|(_, w)| w.item == item && w.writer == node)
            .min_by_key(|(&q, _)| q)
        else {
            return;
        };
        let open = self.open_writes.remove(&write).expect("just found");
        // Read-your-writes: the writer's own copy advances to at least the
        // acknowledged version.
        let entry_version = self.nodes[node.index()].cache.peek(item).map(|e| e.version);
        if entry_version.is_some_and(|v| v < version) {
            self.nodes[node.index()]
                .cache
                .refresh(item, version, self.now);
        }
        if open.measured {
            self.write_latency
                .record(self.now.saturating_since(open.issued));
        }
    }

    fn close_write_failed(&mut self, write: QueryId) {
        if self.open_writes.remove(&write).is_some_and(|w| w.measured) {
            self.writes_failed += 1;
        }
    }

    fn close_answered(
        &mut self,
        node: NodeId,
        query: QueryId,
        version: Version,
        served_by: ServedBy,
    ) {
        let Some(open) = self.open.remove(&query) else {
            return; // duplicate answer (e.g. two poll acks): first one won
        };
        // Traced even before warm-up: the summary sink re-derives the
        // measured set from `issued`, so the filters agree by construction.
        self.trace(TraceEvent::QueryServed {
            node,
            query: query.0,
            level: level_tag(open.level),
            served_by,
            issued: open.issued,
        });
        if !open.measured {
            return;
        }
        self.served_by[served_by.index()] += 1;
        let latency = self.now.saturating_since(open.issued);
        self.latency.record(latency);
        self.latency_by_level[open.level.index()].record(latency);
        let history = &self.histories[open.item.index()];
        let served = ServedQuery {
            served: version,
            master: history.current(),
            staleness: history.staleness(version, self.now),
        };
        self.audit.record(served);
        self.audit_by_level[open.level.index()].record(served);
        // Blame attribution: every measured stale serve — the exact set
        // the audit counts — gets exactly one cause, so the per-cause
        // counts sum to `stale_served` by construction.
        if self.blame.is_some() && served.served < served.master {
            let cause = self.blame.as_mut().expect("checked above").classify(
                open.node,
                open.item,
                version.get(),
            );
            // Δ-consistency (Eq. 3.2.2) with Δ = TTP: a served value may
            // be at most that long behind the master.
            let violation = served.staleness > self.cfg.proto.ttp;
            if violation {
                self.blame.as_mut().expect("checked above").note_violation();
            }
            self.trace(TraceEvent::StaleServe {
                node: open.node,
                query: query.0,
                item: open.item,
                cause,
                staleness_ms: served.staleness.as_millis(),
                lag: served.master.get() - served.served.get(),
                violation,
            });
        }
    }

    fn close_failed(&mut self, node: NodeId, query: QueryId) {
        let Some(open) = self.open.remove(&query) else {
            return;
        };
        self.trace(TraceEvent::QueryFailed {
            node,
            query: query.0,
            level: level_tag(open.level),
        });
        if open.measured {
            self.queries_failed += 1;
        }
    }
}

/// MAC-level class of one frame (application payloads keep their message
/// class; all routing control collapses into [`MessageClass::RouteControl`]).
fn frame_class(frame: &Frame<ProtoMsg>) -> MessageClass {
    match frame {
        Frame::Flood { payload, .. } | Frame::Unicast { payload, .. } => match payload {
            mp2p_net::NetPayload::App(m) => m.class(),
            mp2p_net::NetPayload::Control(
                RouteControl::Rreq { .. } | RouteControl::Rrep { .. } | RouteControl::Rerr { .. },
            ) => MessageClass::RouteControl,
        },
    }
}

/// The item and version an update-propagation message carries, if the
/// message is one. These three classes are the only ways a strategy
/// moves version knowledge outward from a source or relay; everything
/// else (polls, fetches, acks) is demand-driven and not "propagation"
/// for blame purposes.
fn propagation_of(msg: &ProtoMsg) -> Option<(ItemId, u64)> {
    match *msg {
        ProtoMsg::Invalidation { item, version, .. }
        | ProtoMsg::Update { item, version, .. }
        | ProtoMsg::SendNew { item, version, .. } => Some((item, version.get())),
        _ => None,
    }
}

/// Span tag riding on one frame, if its payload is a tagged application
/// message. Routing control never belongs to a query span.
fn frame_span(frame: &Frame<ProtoMsg>) -> Option<u64> {
    match frame {
        Frame::Flood { payload, .. } | Frame::Unicast { payload, .. } => match payload {
            mp2p_net::NetPayload::App(m) => m.span(),
            mp2p_net::NetPayload::Control(_) => None,
        },
    }
}

/// Profiler bucket label of one world event. Static strings from a
/// closed vocabulary, so [`PerfReport::to_json`] needs no escaping and
/// `PerfReport::events` can recognise the family by its `event:` prefix.
fn event_bucket(event: &Event) -> &'static str {
    match event {
        Event::Query(_) => "event:query",
        Event::Update(_) => "event:update",
        Event::Switch(_) => "event:switch",
        Event::Write(_) => "event:write",
        Event::WriteRetry { .. } => "event:write_retry",
        Event::Rx { .. } => "event:rx",
        Event::NetTimer { .. } => "event:net_timer",
        Event::ProtoTimer { .. } => "event:proto_timer",
        Event::OracleDeliver { .. } => "event:oracle_deliver",
        Event::CoeffTick => "event:coeff_tick",
        Event::Sample => "event:sample",
        Event::ConsistencyTick => "event:consistency",
        Event::Fault(_) => "event:fault",
    }
}

/// Profiler bucket label of one delivered protocol message, by class.
fn msg_bucket(class: MessageClass) -> &'static str {
    match class {
        MessageClass::Invalidation => "msg:INVALIDATION",
        MessageClass::Update => "msg:UPDATE",
        MessageClass::Poll => "msg:POLL",
        MessageClass::PollAckA => "msg:POLL_ACK_A",
        MessageClass::PollAckB => "msg:POLL_ACK_B",
        MessageClass::Apply => "msg:APPLY",
        MessageClass::ApplyAck => "msg:APPLY_ACK",
        MessageClass::Cancel => "msg:CANCEL",
        MessageClass::GetNew => "msg:GET_NEW",
        MessageClass::SendNew => "msg:SEND_NEW",
        MessageClass::Fetch => "msg:FETCH",
        MessageClass::FetchReply => "msg:FETCH_REPLY",
        MessageClass::WriteRequest => "msg:WRITE_REQ",
        MessageClass::WriteAck => "msg:WRITE_ACK",
        MessageClass::RouteControl => "msg:ROUTE_CTRL",
        MessageClass::ResyncDigest => "msg:RESYNC_DIGEST",
        MessageClass::ResyncAck => "msg:RESYNC_ACK",
        MessageClass::DeliveryAck => "msg:DELIVERY_ACK",
        MessageClass::Handover => "msg:HANDOVER",
    }
}

/// Maps a protocol-level consistency requirement to its trace tag.
fn level_tag(level: ConsistencyLevel) -> LevelTag {
    match level {
        ConsistencyLevel::Weak => LevelTag::Weak,
        ConsistencyLevel::Delta => LevelTag::Delta,
        ConsistencyLevel::Strong => LevelTag::Strong,
    }
}

/// Stream id of the world-level RNG ("WORLD" in ASCII).
const WORLD_STREAM: u64 = 0x57_4F_52_4C_44;

/// Stream id of the fault injector's RNG. Distinct from every per-node
/// stream family (0x100..0x8ff) and from [`WORLD_STREAM`], so enabling a
/// plan cannot shift any pre-existing random sequence.
const FAULT_STREAM: u64 = 0x900;

fn build_mobility(cfg: &WorldConfig, rng: SimRng) -> AnyMobility {
    match cfg.mobility {
        MobilityKind::Waypoint {
            speed_min,
            speed_max,
            max_pause,
        } => RandomWaypoint::new(cfg.terrain, speed_min, speed_max, max_pause, rng).into(),
        MobilityKind::Walk {
            speed_min,
            speed_max,
            epoch,
        } => RandomWalk::new(cfg.terrain, speed_min, speed_max, epoch, rng).into(),
        MobilityKind::Manhattan { block, speed } => {
            ManhattanGrid::new(cfg.terrain, block, speed, rng).into()
        }
        MobilityKind::Stationary => {
            let mut seed_rng = rng;
            Stationary::new(cfg.terrain.random_point(&mut seed_rng)).into()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(strategy: Strategy, seed: u64) -> WorldConfig {
        let mut cfg = WorldConfig::small_test(seed);
        cfg.n_peers = 8;
        cfg.c_num = 3;
        cfg.terrain = Terrain::new(500.0, 500.0);
        cfg.sim_time = SimDuration::from_mins(5);
        cfg.warmup = SimDuration::from_mins(1);
        cfg.strategy = strategy;
        cfg
    }

    #[test]
    fn every_strategy_constructs_and_runs() {
        for strategy in [
            Strategy::Rpcc,
            Strategy::Push,
            Strategy::Pull,
            Strategy::PushAdaptivePull,
        ] {
            let report = World::new(tiny(strategy, 1)).run();
            assert_eq!(report.strategy, strategy);
            assert!(report.queries_issued > 0, "{strategy} generated no queries");
        }
    }

    #[test]
    fn strategy_labels_are_unique() {
        let labels = [
            Strategy::Rpcc.label(),
            Strategy::Push.label(),
            Strategy::Pull.label(),
            Strategy::PushAdaptivePull.label(),
        ];
        let mut sorted = labels.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), labels.len());
    }

    #[test]
    fn oracle_routing_carries_zero_control_traffic() {
        let mut cfg = tiny(Strategy::Pull, 2);
        cfg.routing = RoutingMode::Oracle;
        let report = World::new(cfg).run();
        assert_eq!(report.traffic.by_class(MessageClass::RouteControl), 0);
        assert!(report.queries_served() > 0);
    }

    #[test]
    fn oracle_routing_is_cheaper_than_on_demand() {
        let run = |routing| {
            let mut cfg = tiny(Strategy::Push, 3);
            cfg.routing = routing;
            World::new(cfg).run()
        };
        let oracle = run(RoutingMode::Oracle);
        let on_demand = run(RoutingMode::OnDemand);
        assert!(oracle.traffic.transmissions() <= on_demand.traffic.transmissions());
    }

    #[test]
    fn single_item_mode_publishes_exactly_one_source() {
        let mut cfg = tiny(Strategy::Rpcc, 4);
        cfg.workload = WorkloadMode::SingleItem;
        let world = World::new(cfg);
        let publishers = world.nodes.iter().filter(|n| n.publishes).count();
        assert_eq!(publishers, 1);
        assert!(world.single_source.is_some());
        // Every non-source node pre-warmed with the single item.
        let src = world.single_source.unwrap();
        for (i, node) in world.nodes.iter().enumerate() {
            if i != src.index() {
                assert!(node.cache.contains(src.owned_item()));
            }
        }
    }

    #[test]
    fn cached_uniform_prewarms_full_caches() {
        let cfg = tiny(Strategy::Rpcc, 5);
        let c_num = cfg.c_num;
        let world = World::new(cfg);
        for node in &world.nodes {
            assert_eq!(node.cache.len(), c_num, "placement fills every slot");
            assert!(
                !node.cache.contains(node.own_item.id()),
                "no node caches its own item"
            );
        }
    }

    #[test]
    fn validate_rejects_oversized_cache() {
        let mut cfg = tiny(Strategy::Rpcc, 6);
        cfg.c_num = cfg.n_peers; // no room for the foreign catalogue
        let result = std::panic::catch_unwind(move || World::new(cfg));
        assert!(result.is_err());
    }

    #[test]
    fn report_to_json_is_valid_json() {
        let report = World::new(tiny(Strategy::Rpcc, 9)).run();
        let json = report.to_json();
        assert!(
            mp2p_trace::json::is_valid(&json),
            "to_json produced invalid JSON: {json}"
        );
        assert!(json.contains("\"strategy\":\"RPCC\""));
        assert!(json.contains("\"queries_issued\":"));
    }

    #[test]
    fn report_helpers_are_consistent() {
        let report = World::new(tiny(Strategy::Pull, 7)).run();
        assert!(report.traffic_per_minute() > 0.0);
        assert_eq!(report.measured, SimDuration::from_mins(4));
        let per_min = report.traffic.transmissions() as f64 / 4.0;
        assert!((report.traffic_per_minute() - per_min).abs() < 1e-9);
    }

    #[test]
    fn fault_free_report_json_carries_no_fault_keys() {
        let report = World::new(tiny(Strategy::Rpcc, 9)).run();
        assert!(report.fault_plan.is_none());
        assert_eq!(report.faults, FaultStats::default());
        assert!(!report.to_json().contains("fault_plan"));
    }

    #[test]
    fn hostile_plan_keeps_accounting_exact_and_deterministic() {
        let make = || {
            let mut cfg = tiny(Strategy::Rpcc, 11);
            cfg.proto = cfg.proto.hardened();
            cfg.faults = FaultPlan::hostile(cfg.sim_time);
            cfg
        };
        let a = World::new(make()).run();
        let b = World::new(make()).run();
        assert_eq!(a.to_json(), b.to_json(), "same seed, same bytes");
        assert_eq!(
            a.queries_issued,
            a.queries_served() + a.queries_failed,
            "accounting must stay exact under faults"
        );
        assert_eq!(a.fault_plan, Some("hostile"));
        assert!(a.faults.crashes >= 1, "hostile plan crashes nodes");
        assert!(a.faults.recoveries >= 1);
        assert_eq!(a.faults.partitions_started, 1);
        assert_eq!(a.faults.partitions_healed, 1);
        assert!(mp2p_trace::json::is_valid(&a.to_json()));
    }

    #[test]
    fn bursty_preset_records_burst_drops_and_duplicates() {
        let mut cfg = tiny(Strategy::Pull, 14);
        cfg.faults = FaultPlan::bursty(cfg.sim_time);
        let report = World::new(cfg).run();
        assert_eq!(report.fault_plan, Some("bursty"));
        assert!(report.faults.burst_drops > 0, "GE bad state never dropped");
        assert!(report.faults.frames_duplicated > 0, "no frame duplicated");
        assert_eq!(
            report.queries_issued,
            report.queries_served() + report.queries_failed
        );
    }

    #[test]
    fn partition_preset_opens_and_heals_exactly_once() {
        let mut cfg = tiny(Strategy::Pull, 13);
        cfg.faults = FaultPlan::partition(cfg.sim_time);
        let report = World::new(cfg).run();
        assert_eq!(report.faults.partitions_started, 1);
        assert_eq!(report.faults.partitions_healed, 1);
        assert_eq!(
            report.queries_issued,
            report.queries_served() + report.queries_failed
        );
    }

    #[test]
    fn crash_wipes_volatile_state_but_keeps_the_master_copy() {
        use mp2p_net::CrashWindow;
        let mut cfg = tiny(Strategy::Rpcc, 12);
        cfg.faults = FaultPlan {
            label: "one-crash",
            crashes: vec![CrashWindow {
                at: SimTime::ZERO + SimDuration::from_secs(10),
                recover: SimTime::ZERO + SimDuration::from_secs(20),
                node: Some(3),
            }],
            ..FaultPlan::none()
        };
        let mut world = World::new(cfg);
        let version_before = world.nodes[3].own_item.version();
        assert!(!world.nodes[3].cache.is_empty(), "cache pre-warmed");
        world.crash_node(0);
        assert!(!world.nodes[3].up, "crashed node is down");
        assert_eq!(world.nodes[3].cache.len(), 0, "cache wiped");
        assert_eq!(
            world.nodes[3].own_item.version(),
            version_before,
            "durable master copy survives the crash"
        );
        assert_eq!(world.fault_stats.crashes, 1);
        world.recover_node(0);
        assert!(world.nodes[3].up, "recovered node is back up");
        assert_eq!(world.fault_stats.recoveries, 1);
    }

    #[test]
    fn crash_fails_the_victims_open_queries() {
        use mp2p_net::CrashWindow;
        let mut cfg = tiny(Strategy::Rpcc, 15);
        cfg.warmup = SimDuration::from_millis(1); // measure from the start
        cfg.faults = FaultPlan {
            label: "one-crash",
            crashes: vec![CrashWindow {
                at: SimTime::ZERO + SimDuration::from_secs(10),
                recover: SimTime::ZERO + SimDuration::from_secs(20),
                node: Some(2),
            }],
            ..FaultPlan::none()
        };
        let mut world = World::new(cfg);
        world.now = SimTime::ZERO + SimDuration::from_secs(5);
        world.handle_query_arrival(NodeId::new(2));
        let pending_at_victim = world
            .open
            .values()
            .filter(|q| q.node == NodeId::new(2))
            .count();
        assert!(pending_at_victim > 0, "fixture produced no open query");
        let failed_before = world.queries_failed;
        world.crash_node(0);
        assert_eq!(
            world
                .open
                .values()
                .filter(|q| q.node == NodeId::new(2))
                .count(),
            0,
            "crash closes the victim's open queries"
        );
        assert_eq!(
            world.queries_failed,
            failed_before + pending_at_victim as u64,
            "closed queries are counted as failed, keeping accounting exact"
        );
    }
}
