//! The simple push baseline (Lan et al. [Lan03], Section 2/5).
//!
//! Every source floods an `INVALIDATION` with the *baseline* TTL
//! (`TTL_BR` = 8 hops, Table 1) every `TTN`. Queries wait for the next
//! invalidation report covering their item before answering — the classic
//! IR discipline ([Bar94]) that gives push its strong consistency and its
//! multi-ten-second latency ("the average query latency is longer than
//! half of the invalidation interval", Section 5.2). A report that
//! reveals the copy stale while queries wait on it triggers a content
//! fetch from the source. Larger caches mean each item is queried (and
//! so validated) less often, raising the per-query staleness probability
//! — the reason push traffic grows with the cache size in Fig. 7(c).

use std::collections::HashMap;

use mp2p_cache::Version;
use mp2p_sim::{ItemId, NodeId, SimDuration};
use mp2p_trace::{ServedBy, SpanPhase};

use crate::config::ProtocolConfig;
use crate::level::ConsistencyLevel;
use crate::msg::ProtoMsg;
use crate::protocol::{Ctx, Protocol, QueryId, Timer};
use crate::recovery::{RecoveryAction, VersionDigest};

#[derive(Debug, Clone, Copy)]
struct PendingFetch {
    item: ItemId,
    attempt: u8,
}

/// The push-based baseline strategy. One instance per node; see the
/// module docs for its semantics.
#[derive(Debug, Clone)]
pub struct SimplePush {
    publishes: bool,
    /// Queries waiting for the next invalidation report, per item.
    waiting: HashMap<ItemId, Vec<QueryId>>,
    /// Queries waiting for a FETCH_REPLY.
    pending_fetch: HashMap<QueryId, PendingFetch>,
    /// True while a refresh fetch for the item is already in flight
    /// (avoids duplicate fetches when reports repeat).
    fetch_in_flight: HashMap<ItemId, bool>,
}

impl SimplePush {
    /// Creates the baseline state for one node.
    pub fn new(_cfg: &ProtocolConfig, publishes: bool) -> Self {
        SimplePush {
            publishes,
            waiting: HashMap::new(),
            pending_fetch: HashMap::new(),
            fetch_in_flight: HashMap::new(),
        }
    }

    fn start_fetch(
        &mut self,
        ctx: &mut Ctx<'_>,
        query: Option<QueryId>,
        item: ItemId,
        attempt: u8,
    ) {
        let in_flight = self.fetch_in_flight.entry(item).or_insert(false);
        if !*in_flight {
            *in_flight = true;
            ctx.send(
                item.source_host(),
                ProtoMsg::Fetch {
                    item,
                    span: query.map(|q| q.0),
                },
            );
        }
        if let Some(q) = query {
            ctx.phase(q, item, SpanPhase::Fetch, attempt);
            self.pending_fetch.insert(q, PendingFetch { item, attempt });
            ctx.set_timer(
                ctx.cfg.fetch_timeout,
                Timer::PollRetry { query: q, attempt },
            );
        }
    }

    /// Releases queries on `item`; `vouched_by` attributes the *waiting*
    /// queries (their cached copy was validated by a report, or refreshed
    /// by a fetch). Fetch-blocked queries are always served fresh source
    /// content.
    fn answer_all_for(&mut self, ctx: &mut Ctx<'_>, item: ItemId, vouched_by: ServedBy) {
        let Some(entry) = ctx.cache.peek(item).copied() else {
            return;
        };
        if let Some(waiting) = self.waiting.remove(&item) {
            for q in waiting {
                ctx.answer(q, entry.version, vouched_by);
            }
        }
        let mut fetched: Vec<QueryId> = self
            .pending_fetch
            .iter()
            .filter(|(_, p)| p.item == item)
            .map(|(&q, _)| q)
            .collect();
        // HashMap iteration order is process-random: sort for determinism.
        fetched.sort_unstable();
        for q in fetched {
            self.pending_fetch.remove(&q);
            ctx.answer(q, entry.version, ServedBy::Source);
        }
    }

    /// Rejoin resync (recovery layer): same digest exchange as RPCC —
    /// flood what we hold, drop whatever neighbours prove stale.
    fn start_resync(&mut self, ctx: &mut Ctx<'_>) {
        let mut entries: Vec<(ItemId, Version)> =
            ctx.cache.iter().map(|(id, e)| (id, e.version)).collect();
        if self.publishes {
            entries.push((ctx.own_item.id(), ctx.own_item.version()));
        }
        if entries.is_empty() {
            return;
        }
        // HashMap iteration order is process-random: sort for determinism.
        entries.sort_unstable_by_key(|&(id, _)| id);
        let items = entries.len() as u32;
        for digest in VersionDigest::chunk(&entries) {
            ctx.flood(
                ctx.cfg.recovery.resync_ttl,
                ProtoMsg::ResyncDigest { digest },
            );
        }
        ctx.recovery(RecoveryAction::ResyncStart { items });
    }
}

impl Protocol for SimplePush {
    fn on_init(&mut self, ctx: &mut Ctx<'_>) {
        if self.publishes {
            let offset =
                SimDuration::from_millis(ctx.rng.uniform_u64(ctx.cfg.ttn.as_millis().max(1)));
            ctx.set_timer(offset, Timer::Ttn);
        }
    }

    fn on_query(
        &mut self,
        ctx: &mut Ctx<'_>,
        query: QueryId,
        item: ItemId,
        _level: ConsistencyLevel,
    ) {
        if item == ctx.own_item.id() {
            let version = ctx.own_item.version();
            ctx.answer(query, version, ServedBy::Source);
            return;
        }
        if ctx.cache.touch(item).is_none() {
            self.start_fetch(ctx, Some(query), item, 1);
            return;
        }
        // IR discipline: hold the query until the next invalidation report
        // (or the fallback timeout) regardless of the requested level.
        ctx.phase(query, item, SpanPhase::PushWait, 0);
        self.waiting.entry(item).or_default().push(query);
        ctx.set_timer(ctx.cfg.push_wait_timeout, Timer::PushWait { query });
    }

    fn on_source_update(&mut self, _ctx: &mut Ctx<'_>) {
        // Nothing to do: the periodic report carries the latest version.
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, from: NodeId, msg: ProtoMsg) {
        match msg {
            ProtoMsg::Invalidation { item, version, .. } => {
                let Some(entry) = ctx.cache.peek(item).copied() else {
                    return;
                };
                if entry.version >= version {
                    // Report confirms freshness: release waiting queries.
                    self.answer_all_for(ctx, item, ServedBy::Cache);
                } else {
                    ctx.cache.mark_stale(item);
                    // Fetch on demand: only queries actually waiting on
                    // this item pull the new content (the report itself is
                    // the push; content moves when someone needs it).
                    if self.waiting.get(&item).is_some_and(|qs| !qs.is_empty()) {
                        self.start_fetch(ctx, None, item, 1);
                    }
                }
            }
            ProtoMsg::Fetch { item, span } if self.publishes && item == ctx.own_item.id() => {
                ctx.send(
                    from,
                    ProtoMsg::FetchReply {
                        item,
                        version: ctx.own_item.version(),
                        content_bytes: ctx.own_item.size_bytes(),
                        span,
                    },
                );
            }
            ProtoMsg::FetchReply {
                item,
                version,
                content_bytes,
                ..
            } => {
                if !ctx.cache.refresh(item, version, ctx.now) {
                    ctx.cache.insert(item, version, content_bytes, ctx.now);
                }
                ctx.note_copy(item, version);
                self.fetch_in_flight.insert(item, false);
                self.answer_all_for(ctx, item, ServedBy::Source);
            }
            ProtoMsg::ResyncDigest { digest } if ctx.cfg.recovery.resync => {
                // Answer with the subset we know a strictly newer
                // version of (own master or cached copy).
                let mut newer: Vec<(ItemId, Version)> = Vec::new();
                for &(item, version) in digest.entries() {
                    let mut known = if self.publishes && item == ctx.own_item.id() {
                        ctx.own_item.version()
                    } else {
                        Version::INITIAL
                    };
                    if let Some(e) = ctx.cache.peek(item) {
                        if e.version > known {
                            known = e.version;
                        }
                    }
                    if known > version {
                        newer.push((item, known));
                    }
                }
                for chunk in VersionDigest::chunk(&newer) {
                    ctx.send(from, ProtoMsg::ResyncAck { digest: chunk });
                }
            }
            ProtoMsg::ResyncAck { digest } if ctx.cfg.recovery.resync => {
                let mut stale = 0u32;
                for &(item, version) in digest.entries() {
                    if item == ctx.own_item.id() {
                        continue; // nothing outranks the master copy
                    }
                    let Some(e) = ctx.cache.peek(item) else {
                        continue;
                    };
                    if e.version < version {
                        stale += 1;
                        // Drop the stale copy; waiting queries recover
                        // through the PushWait fallback fetch.
                        ctx.cache.remove(item);
                        self.fetch_in_flight.insert(item, false);
                    }
                }
                ctx.recovery(RecoveryAction::ResyncDone { stale });
            }
            _ => {} // push uses no other message types
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: Timer) {
        match timer {
            Timer::Ttn => {
                if self.publishes && ctx.connected {
                    let item = ctx.own_item.id();
                    let version = ctx.own_item.version();
                    ctx.flood(
                        ctx.cfg.broadcast_ttl,
                        ProtoMsg::Invalidation {
                            item,
                            version,
                            seq: None,
                        },
                    );
                }
                ctx.set_timer(ctx.cfg.ttn, Timer::Ttn);
            }
            Timer::PushWait { query } => {
                // The report never came (partition / out of flood range):
                // fall back to a direct fetch.
                let item = self.waiting.iter_mut().find_map(|(&item, qs)| {
                    let before = qs.len();
                    qs.retain(|&q| q != query);
                    (qs.len() != before).then_some(item)
                });
                if let Some(item) = item {
                    // Force a fresh fetch even if one already completed.
                    self.fetch_in_flight.insert(item, false);
                    self.start_fetch(ctx, Some(query), item, 1);
                }
            }
            Timer::PollRetry { query, attempt } => {
                let Some(pending) = self.pending_fetch.get(&query).copied() else {
                    return;
                };
                if attempt != pending.attempt {
                    return;
                }
                if attempt >= ctx.cfg.poll_attempts {
                    self.pending_fetch.remove(&query);
                    ctx.fail(query);
                    return;
                }
                self.fetch_in_flight.insert(pending.item, false);
                self.start_fetch(ctx, Some(query), pending.item, attempt + 1);
            }
            Timer::RelayHoldSweep | Timer::PollGrace { .. } | Timer::RetxSweep => {}
        }
    }

    fn on_undeliverable(&mut self, ctx: &mut Ctx<'_>, _dest: NodeId, msg: ProtoMsg) {
        if let ProtoMsg::Fetch { item, .. } = msg {
            self.fetch_in_flight.insert(item, false);
            let mut queries: Vec<QueryId> = self
                .pending_fetch
                .iter()
                .filter(|(_, p)| p.item == item)
                .map(|(&q, _)| q)
                .collect();
            // HashMap iteration order is process-random: sort for determinism.
            queries.sort_unstable();
            for q in queries {
                self.pending_fetch.remove(&q);
                ctx.fail(q);
            }
        }
    }

    fn on_status_change(&mut self, ctx: &mut Ctx<'_>, up: bool) {
        if up && ctx.cfg.recovery.resync && ctx.connected {
            self.start_resync(ctx);
        }
    }

    fn on_coefficient_tick(&mut self, _ctx: &mut Ctx<'_>, _moved: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CtxOut;
    use mp2p_cache::{CacheStore, DataItem, Version};
    use mp2p_sim::{SimRng, SimTime};

    struct Fixture {
        cache: CacheStore,
        own: DataItem,
        rng: SimRng,
        cfg: ProtocolConfig,
        proto: SimplePush,
        now: SimTime,
    }

    impl Fixture {
        fn new() -> Self {
            let cfg = ProtocolConfig::default();
            let mut cache = CacheStore::new(10);
            cache.insert(ItemId::new(1), Version::INITIAL, 1_024, SimTime::ZERO);
            Fixture {
                cache,
                own: DataItem::new(ItemId::new(0), 1_024),
                rng: SimRng::from_seed(3, 0),
                cfg,
                proto: SimplePush::new(&cfg, true),
                now: SimTime::ZERO,
            }
        }

        fn run<F: FnOnce(&mut SimplePush, &mut Ctx<'_>)>(&mut self, f: F) -> Vec<CtxOut> {
            let mut proto = self.proto.clone();
            let mut ctx = Ctx::new(
                self.now,
                NodeId::new(0),
                &mut self.cache,
                &mut self.own,
                &mut self.rng,
                &self.cfg,
                1.0,
                true,
            );
            f(&mut proto, &mut ctx);
            let out = ctx.take_outputs();
            self.proto = proto;
            out
        }
    }

    #[test]
    fn queries_wait_for_invalidation_report() {
        let mut fx = Fixture::new();
        let out =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(1), ItemId::new(1), ConsistencyLevel::Strong));
        assert!(
            out.iter().all(|o| !matches!(o, CtxOut::Answer { .. })),
            "push must not answer before the report"
        );
        // Fresh report releases the query.
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::Invalidation {
                    item: ItemId::new(1),
                    version: Version::INITIAL,
                    seq: None,
                },
            )
        });
        assert!(out.iter().any(|o| matches!(
            o,
            CtxOut::Answer {
                query: QueryId(1),
                ..
            }
        )));
    }

    #[test]
    fn stale_report_triggers_fetch_then_answer() {
        let mut fx = Fixture::new();
        let _ =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(2), ItemId::new(1), ConsistencyLevel::Strong));
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::Invalidation {
                    item: ItemId::new(1),
                    version: Version::new(2),
                    seq: None,
                },
            )
        });
        assert!(out.iter().any(|o| matches!(
            o,
            CtxOut::Send { to, msg: ProtoMsg::Fetch { .. } } if *to == NodeId::new(1)
        )));
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::FetchReply {
                    item: ItemId::new(1),
                    version: Version::new(2),
                    content_bytes: 1_024,
                    span: None,
                },
            )
        });
        assert!(out
            .iter()
            .any(|o| matches!(o, CtxOut::Answer { query: QueryId(2), version, .. } if *version == Version::new(2))));
        assert_eq!(
            fx.cache.peek(ItemId::new(1)).unwrap().version,
            Version::new(2)
        );
    }

    #[test]
    fn source_floods_with_baseline_ttl() {
        let mut fx = Fixture::new();
        let out = fx.run(|p, ctx| p.on_timer(ctx, Timer::Ttn));
        assert!(out.iter().any(|o| matches!(
            o,
            CtxOut::Flood {
                ttl: 8,
                msg: ProtoMsg::Invalidation { .. }
            }
        )));
        assert!(out.iter().any(|o| matches!(
            o,
            CtxOut::SetTimer {
                timer: Timer::Ttn,
                ..
            }
        )));
    }

    #[test]
    fn push_wait_timeout_falls_back_to_fetch() {
        let mut fx = Fixture::new();
        let _ =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(3), ItemId::new(1), ConsistencyLevel::Strong));
        let out = fx.run(|p, ctx| p.on_timer(ctx, Timer::PushWait { query: QueryId(3) }));
        assert!(out.iter().any(|o| matches!(
            o,
            CtxOut::Send {
                msg: ProtoMsg::Fetch { .. },
                ..
            }
        )));
    }

    #[test]
    fn unreachable_source_fails_fetch_queries() {
        let mut fx = Fixture::new();
        let _ =
            fx.run(|p, ctx| p.on_query(ctx, QueryId(4), ItemId::new(5), ConsistencyLevel::Weak));
        let out = fx.run(|p, ctx| {
            p.on_undeliverable(
                ctx,
                NodeId::new(5),
                ProtoMsg::Fetch {
                    item: ItemId::new(5),
                    span: None,
                },
            )
        });
        assert!(out
            .iter()
            .any(|o| matches!(o, CtxOut::Fail { query: QueryId(4) })));
    }

    #[test]
    fn stale_report_without_waiters_marks_but_does_not_fetch() {
        let mut fx = Fixture::new();
        let out = fx.run(|p, ctx| {
            p.on_message(
                ctx,
                NodeId::new(1),
                ProtoMsg::Invalidation {
                    item: ItemId::new(1),
                    version: Version::new(1),
                    seq: None,
                },
            )
        });
        assert!(
            out.iter().all(|o| !matches!(
                o,
                CtxOut::Send {
                    msg: ProtoMsg::Fetch { .. },
                    ..
                }
            )),
            "content moves on demand, not per report"
        );
        assert!(fx.cache.peek(ItemId::new(1)).unwrap().stale);
    }

    #[test]
    fn rejoin_resync_floods_digest_and_drops_stale_copies() {
        let mut fx = Fixture::new();
        fx.cfg.recovery = crate::RecoveryConfig::on();
        fx.proto = SimplePush::new(&fx.cfg, true);
        let out = fx.run(|p, ctx| p.on_status_change(ctx, true));
        assert!(out.iter().any(|o| matches!(
            o,
            CtxOut::Flood {
                msg: ProtoMsg::ResyncDigest { .. },
                ..
            }
        )));
        // A neighbour proves the cached D1 stale: the copy is dropped.
        let digest = VersionDigest::new(&[(ItemId::new(1), Version::new(4))]);
        let out =
            fx.run(|p, ctx| p.on_message(ctx, NodeId::new(7), ProtoMsg::ResyncAck { digest }));
        assert!(!fx.cache.contains(ItemId::new(1)));
        assert!(out.iter().any(|o| matches!(
            o,
            CtxOut::Recovery {
                action: RecoveryAction::ResyncDone { stale: 1 }
            }
        )));
    }
}
