//! The causal provenance engine's opt-in switches.
//!
//! PR 6's observatory can say *why class* a stale serve happened (a
//! [`mp2p_trace::BlameCause`]); it cannot reconstruct the concrete chain
//! of frames behind one incident. Provenance tracing adds the missing
//! layer: every transmitted frame already carries a deterministic
//! identity `(origin, seq)` — floods and unicasts draw from the same
//! per-node monotonic counter — and with provenance on the world journals
//! that identity's full life cycle as schema-4 records:
//!
//! * [`mp2p_trace::TraceEvent::FrameBorn`] — a frame's first transmission
//!   (hop count 0), with its message class, unicast destination and the
//!   propagated `(item, version)` when it carries an update,
//!   invalidation or send-new payload.
//! * [`mp2p_trace::TraceEvent::FrameHop`] — each relay retransmission.
//! * [`mp2p_trace::TraceEvent::FrameFate`] — where the frame's life
//!   ended at a node: delivered, suppressed as a duplicate, or dropped
//!   with the injecting fault's cause
//!   ([`mp2p_trace::FrameFateKind`]).
//! * [`mp2p_trace::TraceEvent::CopyLineage`] — a cached copy's lineage:
//!   which frame carried the installed version here and over how many
//!   hops.
//!
//! With provenance off (the default) the world emits none of these,
//! draws no randomness and queues no events: journal bytes are
//! byte-identical to a build without this module (pinned by
//! `tests/provenance_engine.rs`). Frame sequence numbers exist either
//! way — they are plain counters the flood-dedup machinery already
//! maintained — so switching provenance on changes *observations only*,
//! never protocol behaviour.

/// Opt-in switches for frame-level provenance tracing. The default is
/// everything off, which is the byte-identity-preserving configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProvenanceConfig {
    /// Journal every frame's birth, relay hops and terminal fate
    /// (`FrameBorn` / `FrameHop` / `FrameFate`, journal schema ≥ 4).
    pub frames: bool,
    /// Journal a `CopyLineage` record for every cached copy installed or
    /// refreshed from a delivered message. Requires [`frames`]: a lineage
    /// record names a carrying frame that must itself be journalled.
    ///
    /// [`frames`]: ProvenanceConfig::frames
    pub lineage: bool,
}

impl ProvenanceConfig {
    /// Everything off (the default).
    pub fn off() -> Self {
        ProvenanceConfig::default()
    }

    /// Frame life cycles and copy lineage both on.
    pub fn full() -> Self {
        ProvenanceConfig {
            frames: true,
            lineage: true,
        }
    }

    /// Whether any provenance feature is on.
    pub fn enabled(&self) -> bool {
        self.frames || self.lineage
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics when lineage is requested without frame tracing (the
    /// lineage records would dangle: they reference frames the journal
    /// never introduces).
    pub fn validate(&self) {
        assert!(
            self.frames || !self.lineage,
            "provenance lineage requires frame tracing (lineage records reference frames)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_and_valid() {
        let cfg = ProvenanceConfig::off();
        assert!(!cfg.enabled());
        cfg.validate();
        assert!(ProvenanceConfig::full().enabled());
        ProvenanceConfig::full().validate();
    }

    #[test]
    #[should_panic(expected = "lineage requires frame tracing")]
    fn lineage_without_frames_is_rejected() {
        ProvenanceConfig {
            frames: false,
            lineage: true,
        }
        .validate();
    }
}
