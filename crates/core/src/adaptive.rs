//! **Extension — the paper's future work, Section 6 item 1:**
//! "investigate how to change the push/pull frequency adaptively
//! according to the runtime system conditions".
//!
//! Two independent rules, both bounded to
//! `[base / span, base × span]`:
//!
//! * **Push side (TTN):** a source tracks an EWMA of its own inter-update
//!   gaps and floods invalidations on that timescale — a rarely-updated
//!   item stops paying for 2-minute reports; a hot item reports faster,
//!   shrinking relay staleness.
//! * **Pull side (TTP):** a cache peer grows an item's Δ-lease
//!   multiplicatively on every *confirmed* validation (`POLL_ACK_A`) and
//!   collapses it on every *changed* answer (`POLL_ACK_B`) — the
//!   adaptive-TTL rule of classic web caching (Gwertzman & Seltzer
//!   [Gwe96], cited by the paper).

use std::collections::HashMap;

use mp2p_sim::{ItemId, SimDuration, SimTime};

/// Per-node adaptive frequency state. See the module docs.
#[derive(Debug, Clone)]
pub struct AdaptiveTuner {
    span: f64,
    /// EWMA weight for new inter-update gaps.
    alpha: f64,
    last_update_at: Option<SimTime>,
    /// EWMA of the source's inter-update gap, in milliseconds.
    mean_gap_ms: Option<f64>,
    /// Per-item TTP multiplier, in `[1/span, span]`.
    ttp_scale: HashMap<ItemId, f64>,
}

impl AdaptiveTuner {
    /// Creates a tuner bounding every adapted period to
    /// `[base / span, base × span]`.
    ///
    /// # Panics
    ///
    /// Panics if `span < 1` or is not finite.
    pub fn new(span: f64) -> Self {
        assert!(
            span >= 1.0 && span.is_finite(),
            "adaptive span must be >= 1, got {span}"
        );
        AdaptiveTuner {
            span,
            alpha: 0.3,
            last_update_at: None,
            mean_gap_ms: None,
            ttp_scale: HashMap::new(),
        }
    }

    /// Source side: records an update to the own item.
    pub fn note_source_update(&mut self, now: SimTime) {
        if let Some(prev) = self.last_update_at {
            let gap = now.saturating_since(prev).as_millis() as f64;
            self.mean_gap_ms = Some(match self.mean_gap_ms {
                Some(mean) => mean * (1.0 - self.alpha) + gap * self.alpha,
                None => gap,
            });
        }
        self.last_update_at = Some(now);
    }

    /// Source side: the invalidation period to use now.
    pub fn effective_ttn(&self, base: SimDuration) -> SimDuration {
        match self.mean_gap_ms {
            Some(gap_ms) => {
                let lo = base.as_millis() as f64 / self.span;
                let hi = base.as_millis() as f64 * self.span;
                SimDuration::from_millis(gap_ms.clamp(lo, hi).round() as u64)
            }
            None => base, // no update observed yet: paper behaviour
        }
    }

    /// Cache side: a validation confirmed the copy (`POLL_ACK_A`).
    pub fn note_confirmed(&mut self, item: ItemId) {
        let scale = self.ttp_scale.entry(item).or_insert(1.0);
        *scale = (*scale * 1.25).min(self.span);
    }

    /// Cache side: a validation replaced the copy (`POLL_ACK_B` /
    /// `SEND_NEW` content).
    pub fn note_changed(&mut self, item: ItemId) {
        let scale = self.ttp_scale.entry(item).or_insert(1.0);
        *scale = (*scale * 0.5).max(1.0 / self.span);
    }

    /// Cache side: the Δ-lease to grant `item` now.
    pub fn effective_ttp(&self, item: ItemId, base: SimDuration) -> SimDuration {
        let scale = self.ttp_scale.get(&item).copied().unwrap_or(1.0);
        base.mul_f64(scale).max(SimDuration::from_millis(1))
    }

    /// The current TTP multiplier of an item (for gauges/tests).
    pub fn ttp_scale_of(&self, item: ItemId) -> f64 {
        self.ttp_scale.get(&item).copied().unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_millis(secs * 1_000)
    }

    #[test]
    fn ttn_tracks_update_rate_within_bounds() {
        let base = SimDuration::from_mins(2);
        let mut tuner = AdaptiveTuner::new(4.0);
        assert_eq!(tuner.effective_ttn(base), base, "no data: base period");
        // Updates every 10 s — far below base/span = 30 s: clamp at 30 s.
        for i in 0..50 {
            tuner.note_source_update(t(i * 10));
        }
        assert_eq!(tuner.effective_ttn(base), SimDuration::from_secs(30));
        // Updates every 20 min — far above base×span = 8 min: clamp at 8 min.
        let mut slow = AdaptiveTuner::new(4.0);
        for i in 0..20 {
            slow.note_source_update(t(i * 1_200));
        }
        assert_eq!(slow.effective_ttn(base), SimDuration::from_mins(8));
    }

    #[test]
    fn ttn_converges_to_observed_gap() {
        let base = SimDuration::from_mins(2);
        let mut tuner = AdaptiveTuner::new(4.0);
        for i in 0..100 {
            tuner.note_source_update(t(i * 180)); // every 3 min, inside bounds
        }
        let eff = tuner.effective_ttn(base);
        let err = (eff.as_millis() as f64 - 180_000.0).abs();
        assert!(err < 5_000.0, "effective TTN {eff} should approach 3 min");
    }

    #[test]
    fn ttp_grows_on_confirmation_and_collapses_on_change() {
        let base = SimDuration::from_mins(4);
        let item = ItemId::new(3);
        let mut tuner = AdaptiveTuner::new(4.0);
        assert_eq!(tuner.effective_ttp(item, base), base);
        for _ in 0..20 {
            tuner.note_confirmed(item);
        }
        assert_eq!(
            tuner.effective_ttp(item, base),
            SimDuration::from_mins(16),
            "capped at span"
        );
        tuner.note_changed(item);
        assert!(
            tuner.ttp_scale_of(item) < 4.0,
            "one change must halve the lease"
        );
        for _ in 0..20 {
            tuner.note_changed(item);
        }
        assert_eq!(
            tuner.effective_ttp(item, base),
            SimDuration::from_mins(1),
            "floored at 1/span"
        );
    }

    #[test]
    fn items_adapt_independently() {
        let mut tuner = AdaptiveTuner::new(4.0);
        let hot = ItemId::new(1);
        let cold = ItemId::new(2);
        tuner.note_changed(hot);
        tuner.note_confirmed(cold);
        assert!(tuner.ttp_scale_of(hot) < 1.0);
        assert!(tuner.ttp_scale_of(cold) > 1.0);
    }

    #[test]
    #[should_panic(expected = "span must be >= 1")]
    fn rejects_sub_unit_span() {
        let _ = AdaptiveTuner::new(0.5);
    }
}
