//! The three consistency levels of Section 3 and the query-level mix.

use std::fmt;

use mp2p_sim::SimRng;

/// The consistency guarantee a query requests (Section 3, Eq. 3.2.1–3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConsistencyLevel {
    /// Weak consistency: any previously correct value may be returned.
    Weak,
    /// Δ-consistency: the answer is at most Δ behind the master copy
    /// ("in RPCC, TTP is the Δ value", Section 4.4).
    Delta,
    /// Strong consistency: the answer equals the master copy at serve
    /// time.
    Strong,
}

impl ConsistencyLevel {
    /// All levels, weakest first.
    pub const ALL: [ConsistencyLevel; 3] = [
        ConsistencyLevel::Weak,
        ConsistencyLevel::Delta,
        ConsistencyLevel::Strong,
    ];

    /// Short label for tables ("WC"/"DC"/"SC", as in the paper's figures).
    pub fn label(self) -> &'static str {
        match self {
            ConsistencyLevel::Weak => "WC",
            ConsistencyLevel::Delta => "DC",
            ConsistencyLevel::Strong => "SC",
        }
    }

    /// Index into per-level arrays.
    pub fn index(self) -> usize {
        match self {
            ConsistencyLevel::Weak => 0,
            ConsistencyLevel::Delta => 1,
            ConsistencyLevel::Strong => 2,
        }
    }
}

impl fmt::Display for ConsistencyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The probability mix of consistency levels across query requests.
///
/// The paper's figures use the pure mixes (`SC`, `DC`, `WC`) and the
/// hybrid `HY` where "requests with three different consistency
/// requirements come with the same probability" (Section 5.1).
///
/// # Example
///
/// ```
/// use mp2p_rpcc::{ConsistencyLevel, LevelMix};
/// use mp2p_sim::SimRng;
///
/// let mut rng = SimRng::from_seed(1, 0);
/// assert_eq!(LevelMix::strong_only().sample(&mut rng), ConsistencyLevel::Strong);
/// let hy = LevelMix::hybrid();
/// let _level = hy.sample(&mut rng); // any of the three
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelMix {
    weak: f64,
    delta: f64,
    // strong = 1 - weak - delta
}

impl LevelMix {
    /// A mix with the given weights (normalised internally).
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or all are zero.
    pub fn new(weak: f64, delta: f64, strong: f64) -> Self {
        assert!(
            weak >= 0.0 && delta >= 0.0 && strong >= 0.0,
            "level weights must be non-negative"
        );
        let total = weak + delta + strong;
        assert!(total > 0.0, "at least one level weight must be positive");
        LevelMix {
            weak: weak / total,
            delta: delta / total,
        }
    }

    /// Every query requests strong consistency (the paper's `RPCC(SC)`).
    pub fn strong_only() -> Self {
        LevelMix::new(0.0, 0.0, 1.0)
    }

    /// Every query requests Δ-consistency (`RPCC(DC)`).
    pub fn delta_only() -> Self {
        LevelMix::new(0.0, 1.0, 0.0)
    }

    /// Every query requests weak consistency (`RPCC(WC)`).
    pub fn weak_only() -> Self {
        LevelMix::new(1.0, 0.0, 0.0)
    }

    /// The paper's hybrid scenario `HY`: the three levels equiprobable.
    pub fn hybrid() -> Self {
        LevelMix::new(1.0, 1.0, 1.0)
    }

    /// Probability of [`ConsistencyLevel::Weak`].
    pub fn weak_prob(&self) -> f64 {
        self.weak
    }

    /// Probability of [`ConsistencyLevel::Delta`].
    pub fn delta_prob(&self) -> f64 {
        self.delta
    }

    /// Probability of [`ConsistencyLevel::Strong`].
    pub fn strong_prob(&self) -> f64 {
        1.0 - self.weak - self.delta
    }

    /// Draws the level of one query.
    pub fn sample(&self, rng: &mut SimRng) -> ConsistencyLevel {
        let u = rng.uniform_f64();
        if u < self.weak {
            ConsistencyLevel::Weak
        } else if u < self.weak + self.delta {
            ConsistencyLevel::Delta
        } else {
            ConsistencyLevel::Strong
        }
    }

    /// Short label for tables: "SC", "DC", "WC", "HY", or "mix".
    pub fn label(&self) -> &'static str {
        let (w, d, s) = (self.weak_prob(), self.delta_prob(), self.strong_prob());
        if s == 1.0 {
            "SC"
        } else if d == 1.0 {
            "DC"
        } else if w == 1.0 {
            "WC"
        } else if (w - d).abs() < 1e-9 && (d - s).abs() < 1e-9 {
            "HY"
        } else {
            "mix"
        }
    }
}

impl fmt::Display for LevelMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_mixes_sample_their_level() {
        let mut rng = SimRng::from_seed(0, 0);
        for _ in 0..50 {
            assert_eq!(
                LevelMix::strong_only().sample(&mut rng),
                ConsistencyLevel::Strong
            );
            assert_eq!(
                LevelMix::delta_only().sample(&mut rng),
                ConsistencyLevel::Delta
            );
            assert_eq!(
                LevelMix::weak_only().sample(&mut rng),
                ConsistencyLevel::Weak
            );
        }
    }

    #[test]
    fn hybrid_covers_all_levels_evenly() {
        let hy = LevelMix::hybrid();
        let mut rng = SimRng::from_seed(1, 0);
        let mut counts = [0u32; 3];
        for _ in 0..9_000 {
            counts[hy.sample(&mut rng).index()] += 1;
        }
        for c in counts {
            assert!((2_600..3_400).contains(&c), "uneven hybrid mix: {counts:?}");
        }
    }

    #[test]
    fn weights_are_normalised() {
        let m = LevelMix::new(2.0, 2.0, 4.0);
        assert!((m.weak_prob() - 0.25).abs() < 1e-12);
        assert!((m.delta_prob() - 0.25).abs() < 1e-12);
        assert!((m.strong_prob() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn labels() {
        assert_eq!(LevelMix::strong_only().label(), "SC");
        assert_eq!(LevelMix::hybrid().label(), "HY");
        assert_eq!(LevelMix::new(0.5, 0.5, 0.0).label(), "mix");
        assert_eq!(ConsistencyLevel::Strong.to_string(), "SC");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let _ = LevelMix::new(-0.1, 0.5, 0.6);
    }
}
