//! Relay-peer selection coefficients (Section 4.2, Eq. 4.2.1–4.2.8).

use crate::config::ProtocolConfig;

/// The per-node CAR/CS/CE machinery.
///
/// Every period φ the node recomputes (counts are per φ period —
/// DESIGN.md §5 discusses the unit choice):
///
/// * `PAR_t = PAR_{t-2}·ω/4 + PAR_{t-1}·ω/2 + N_a·(1 − ω/4 − ω/2)`
///   (Eq. 4.2.2), `CAR = 1/(1 + PAR_t)` (Eq. 4.2.3) — *low* CAR means a
///   frequently-accessed, well-placed cache node.
/// * `PSR_t = PSR_{t−1}·ω + N_s·(1 − ω)` (Eq. 4.2.4),
///   `PMR_t = PMR_{t−1}·ω + N_m·(1 − ω)` (Eq. 4.2.5),
///   `CS = 1/(1 + PSR_t + PMR_t)` (Eq. 4.2.6) — *high* CS means stable.
/// * `CE = PER_t / E_MAX` (Eq. 4.2.7) — remaining battery fraction.
///
/// A node qualifies as relay-peer candidate when
/// `CAR < μ_CAR ∧ CS > μ_CS ∧ CE > μ_CE` (Eq. 4.2.8).
///
/// # Example
///
/// ```
/// use mp2p_rpcc::{Coefficients, ProtocolConfig};
///
/// let cfg = ProtocolConfig::default();
/// let mut c = Coefficients::new(cfg.omega);
/// // A busy, stable, fully-charged node qualifies after a few periods:
/// for _ in 0..4 {
///     for _ in 0..8 { c.note_access(); }
///     c.tick(false, 1.0);
/// }
/// assert!(c.qualifies(&cfg));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Coefficients {
    omega: f64,
    /// PAR at t−2 and t−1.
    par_hist: [f64; 2],
    psr: f64,
    pmr: f64,
    /// Accesses observed in the current period (`N_a`).
    accesses: u32,
    /// Connect/disconnect switches in the current period (`N_s`).
    switches: u32,
    car: f64,
    cs: f64,
    ce: f64,
}

impl Coefficients {
    /// Fresh coefficients for a node that has seen no activity:
    /// `CAR = 1` (no accesses), `CS = 1` (no churn), `CE = 1` (full
    /// battery).
    ///
    /// # Panics
    ///
    /// Panics if `omega` is outside `[0, 1]`.
    pub fn new(omega: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&omega),
            "omega must be in [0,1], got {omega}"
        );
        Coefficients {
            omega,
            par_hist: [0.0; 2],
            psr: 0.0,
            pmr: 0.0,
            accesses: 0,
            switches: 0,
            car: 1.0,
            cs: 1.0,
            ce: 1.0,
        }
    }

    /// Records one cache access at this node (a local query served, a
    /// POLL handled, or a content request served).
    pub fn note_access(&mut self) {
        self.accesses = self.accesses.saturating_add(1);
    }

    /// Records one connect/disconnect status switch.
    pub fn note_switch(&mut self) {
        self.switches = self.switches.saturating_add(1);
    }

    /// Closes the current period φ: folds the period counters into the
    /// EWMAs. `moved` is whether the node changed subnet cell since the
    /// last tick (`N_m ∈ {0, 1}` at tick granularity); `energy_fraction`
    /// is `PER_t / E_MAX`.
    pub fn tick(&mut self, moved: bool, energy_fraction: f64) {
        let w = self.omega;
        let n_a = f64::from(self.accesses);
        let par_t = self.par_hist[0] * (w / 4.0)
            + self.par_hist[1] * (w / 2.0)
            + n_a * (1.0 - w / 4.0 - w / 2.0);
        self.par_hist = [self.par_hist[1], par_t];
        self.car = 1.0 / (1.0 + par_t);

        let n_s = f64::from(self.switches);
        let n_m = if moved { 1.0 } else { 0.0 };
        self.psr = self.psr * w + n_s * (1.0 - w);
        self.pmr = self.pmr * w + n_m * (1.0 - w);
        self.cs = 1.0 / (1.0 + self.psr + self.pmr);

        self.ce = energy_fraction.clamp(0.0, 1.0);

        self.accesses = 0;
        self.switches = 0;
    }

    /// Current CAR (coefficient of access rate), in `(0, 1]`.
    pub fn car(&self) -> f64 {
        self.car
    }

    /// Current CS (coefficient of stability), in `(0, 1]`.
    pub fn cs(&self) -> f64 {
        self.cs
    }

    /// Current CE (coefficient of energy), in `[0, 1]`.
    pub fn ce(&self) -> f64 {
        self.ce
    }

    /// Eq. 4.2.8: true if this node may serve as a relay-peer candidate.
    pub fn qualifies(&self, cfg: &ProtocolConfig) -> bool {
        self.car < cfg.mu_car && self.cs > cfg.mu_cs && self.ce > cfg.mu_ce
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> ProtocolConfig {
        ProtocolConfig::default()
    }

    #[test]
    fn fresh_node_does_not_qualify() {
        let c = Coefficients::new(0.2);
        assert_eq!(c.car(), 1.0);
        assert_eq!(c.cs(), 1.0);
        assert_eq!(c.ce(), 1.0);
        assert!(!c.qualifies(&cfg()), "CAR=1 fails the access-rate test");
    }

    #[test]
    fn steady_accesses_converge_to_paper_formula() {
        // With constant N_a = 6 per φ the fixpoint is PAR = 6 (the weights
        // sum to 1), so CAR → 1/7 ≈ 0.143 < 0.15.
        let mut c = Coefficients::new(0.2);
        for _ in 0..10 {
            for _ in 0..6 {
                c.note_access();
            }
            c.tick(false, 1.0);
        }
        assert!((c.car() - 1.0 / 7.0).abs() < 0.01, "CAR = {}", c.car());
        assert!(c.qualifies(&cfg()));
    }

    #[test]
    fn churny_node_fails_stability() {
        let mut c = Coefficients::new(0.2);
        for _ in 0..5 {
            for _ in 0..10 {
                c.note_access();
            }
            c.note_switch();
            c.tick(true, 1.0);
        }
        // PSR → 1, PMR → 1 ⇒ CS → 1/3 < 0.6.
        assert!(c.cs() < 0.4, "CS = {}", c.cs());
        assert!(!c.qualifies(&cfg()));
    }

    #[test]
    fn stability_recovers_after_quiet_periods() {
        let mut c = Coefficients::new(0.2);
        c.note_switch();
        c.tick(true, 1.0);
        assert!(c.cs() < 0.4);
        for _ in 0..3 {
            c.tick(false, 1.0);
        }
        // Quiet periods decay PSR/PMR by ω = 0.2 each: CS > 0.6 again.
        assert!(c.cs() > 0.6, "CS = {}", c.cs());
    }

    #[test]
    fn low_battery_disqualifies() {
        let mut c = Coefficients::new(0.2);
        for _ in 0..6 {
            for _ in 0..10 {
                c.note_access();
            }
            c.tick(false, 0.5);
        }
        assert!(c.car() < 0.15 && c.cs() > 0.6, "otherwise qualified");
        assert!(!c.qualifies(&cfg()), "CE = 0.5 < 0.6 must disqualify");
    }

    #[test]
    fn recency_weight_dominates() {
        // ω = 0.2 puts 85% of the weight on the newest period: a burst of
        // accesses must swing CAR within one tick.
        let mut c = Coefficients::new(0.2);
        c.tick(false, 1.0); // quiet period: PAR = 0
        for _ in 0..20 {
            c.note_access();
        }
        c.tick(false, 1.0);
        assert!(c.car() < 0.06, "CAR = {} should reflect the burst", c.car());
    }

    proptest! {
        /// All coefficients stay in (0, 1] whatever the activity pattern.
        #[test]
        fn prop_coefficients_bounded(
            pattern in proptest::collection::vec((0u32..100, 0u32..5, any::<bool>(), 0.0f64..1.0), 1..50)
        ) {
            let mut c = Coefficients::new(0.2);
            for (accesses, switches, moved, energy) in pattern {
                for _ in 0..accesses {
                    c.note_access();
                }
                for _ in 0..switches {
                    c.note_switch();
                }
                c.tick(moved, energy);
                prop_assert!(c.car() > 0.0 && c.car() <= 1.0);
                prop_assert!(c.cs() > 0.0 && c.cs() <= 1.0);
                prop_assert!((0.0..=1.0).contains(&c.ce()));
            }
        }

        /// More accesses never increase CAR (monotone in the period count).
        #[test]
        fn prop_car_monotone_in_accesses(base in 0u32..50, extra in 1u32..50) {
            let mut low = Coefficients::new(0.2);
            let mut high = Coefficients::new(0.2);
            for _ in 0..base {
                low.note_access();
                high.note_access();
            }
            for _ in 0..extra {
                high.note_access();
            }
            low.tick(false, 1.0);
            high.tick(false, 1.0);
            prop_assert!(high.car() < low.car());
        }
    }
}
