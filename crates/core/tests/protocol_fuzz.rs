//! Protocol-handler fuzzing: arbitrary message/timer/query sequences,
//! delivered in arbitrary order from arbitrary senders, must never panic
//! any protocol and must only ever produce well-formed outputs (answers
//! only for queries that were actually issued and not yet resolved,
//! strictly positive timer delays, self-sends never emitted).
//!
//! This covers the state-machine paths the scenario tests cannot reach:
//! acks for polls never sent, UPDATEs from non-sources, CANCELs from
//! strangers, replies after demotion, duplicated and reordered traffic.

use std::collections::HashSet;

use proptest::prelude::*;

use mp2p_cache::{CacheStore, DataItem, Version};
use mp2p_rpcc::{
    ConsistencyLevel, Ctx, CtxOut, ProtoMsg, Protocol, ProtocolConfig, PushAdaptivePull, QueryId,
    Rpcc, SimplePull, SimplePush, Timer,
};
use mp2p_sim::{ItemId, NodeId, SimDuration, SimRng, SimTime};

const NODES: u32 = 6;
const ITEMS: u32 = 6;

/// One fuzz step.
#[derive(Debug, Clone)]
enum Step {
    Query { item: u32, level: u8 },
    SourceUpdate,
    Message { from: u32, msg: Msg },
    Timer(Tmr),
    Undeliverable { dest: u32, msg: Msg },
    StatusChange(bool),
    CoeffTick { moved: bool },
    AdvanceTime(u64),
}

#[derive(Debug, Clone)]
enum Msg {
    Invalidation { item: u32, version: u64 },
    Update { item: u32, version: u64 },
    GetNew { item: u32 },
    SendNew { item: u32, version: u64 },
    Apply { item: u32 },
    ApplyAck { item: u32, version: u64 },
    Cancel { item: u32 },
    Poll { item: u32, version: u64 },
    PollAckA { item: u32, version: u64 },
    PollAckB { item: u32, version: u64 },
    Fetch { item: u32 },
    FetchReply { item: u32, version: u64 },
}

#[derive(Debug, Clone)]
enum Tmr {
    Ttn,
    PollRetry { query: u64, attempt: u8 },
    PushWait { query: u64 },
    PollGrace { query: u64 },
    RelayHoldSweep,
}

fn msg_strategy() -> impl proptest::strategy::Strategy<Value = Msg> {
    let item = 0u32..ITEMS;
    let ver = 0u64..6;
    prop_oneof![
        (item.clone(), ver.clone()).prop_map(|(item, version)| Msg::Invalidation { item, version }),
        (item.clone(), ver.clone()).prop_map(|(item, version)| Msg::Update { item, version }),
        item.clone().prop_map(|item| Msg::GetNew { item }),
        (item.clone(), ver.clone()).prop_map(|(item, version)| Msg::SendNew { item, version }),
        item.clone().prop_map(|item| Msg::Apply { item }),
        (item.clone(), ver.clone()).prop_map(|(item, version)| Msg::ApplyAck { item, version }),
        item.clone().prop_map(|item| Msg::Cancel { item }),
        (item.clone(), ver.clone()).prop_map(|(item, version)| Msg::Poll { item, version }),
        (item.clone(), ver.clone()).prop_map(|(item, version)| Msg::PollAckA { item, version }),
        (item.clone(), ver.clone()).prop_map(|(item, version)| Msg::PollAckB { item, version }),
        item.clone().prop_map(|item| Msg::Fetch { item }),
        (item, ver).prop_map(|(item, version)| Msg::FetchReply { item, version }),
    ]
}

fn step_strategy() -> impl proptest::strategy::Strategy<Value = Step> {
    prop_oneof![
        (0u32..ITEMS, 0u8..3).prop_map(|(item, level)| Step::Query { item, level }),
        Just(Step::SourceUpdate),
        (1u32..NODES, msg_strategy()).prop_map(|(from, msg)| Step::Message { from, msg }),
        prop_oneof![
            Just(Tmr::Ttn),
            (0u64..64, 1u8..5).prop_map(|(query, attempt)| Tmr::PollRetry { query, attempt }),
            (0u64..64).prop_map(|query| Tmr::PushWait { query }),
            (0u64..64).prop_map(|query| Tmr::PollGrace { query }),
            Just(Tmr::RelayHoldSweep),
        ]
        .prop_map(Step::Timer),
        (1u32..NODES, msg_strategy()).prop_map(|(dest, msg)| Step::Undeliverable { dest, msg }),
        any::<bool>().prop_map(Step::StatusChange),
        any::<bool>().prop_map(|moved| Step::CoeffTick { moved }),
        (1u64..120_000).prop_map(Step::AdvanceTime),
    ]
}

fn to_proto_msg(msg: &Msg) -> ProtoMsg {
    let item = |i: &u32| ItemId::new(*i);
    let ver = Version::new;
    match msg {
        Msg::Invalidation { item: i, version } => ProtoMsg::Invalidation {
            item: item(i),
            version: ver(*version),
            seq: None,
        },
        Msg::Update { item: i, version } => ProtoMsg::Update {
            item: item(i),
            version: ver(*version),
            content_bytes: 64,
            seq: None,
        },
        Msg::GetNew { item: i } => ProtoMsg::GetNew { item: item(i) },
        Msg::SendNew { item: i, version } => ProtoMsg::SendNew {
            item: item(i),
            version: ver(*version),
            content_bytes: 64,
        },
        Msg::Apply { item: i } => ProtoMsg::Apply { item: item(i) },
        Msg::ApplyAck { item: i, version } => ProtoMsg::ApplyAck {
            item: item(i),
            version: ver(*version),
        },
        Msg::Cancel { item: i } => ProtoMsg::Cancel { item: item(i) },
        Msg::Poll { item: i, version } => ProtoMsg::Poll {
            item: item(i),
            version: ver(*version),
            span: None,
        },
        Msg::PollAckA { item: i, version } => ProtoMsg::PollAckA {
            item: item(i),
            version: ver(*version),
            span: None,
        },
        Msg::PollAckB { item: i, version } => ProtoMsg::PollAckB {
            item: item(i),
            version: ver(*version),
            content_bytes: 64,
            span: None,
        },
        Msg::Fetch { item: i } => ProtoMsg::Fetch {
            item: item(i),
            span: None,
        },
        Msg::FetchReply { item: i, version } => ProtoMsg::FetchReply {
            item: item(i),
            version: ver(*version),
            content_bytes: 64,
            span: None,
        },
    }
}

/// Drives one protocol through the step sequence, checking output
/// well-formedness at every step.
fn drive<P: Protocol>(mut proto: P, steps: &[Step], adaptive: bool) {
    let cfg = ProtocolConfig {
        adaptive,
        ..ProtocolConfig::default()
    };
    let me = NodeId::new(0);
    let mut cache = CacheStore::new(4);
    cache.insert(ItemId::new(1), Version::INITIAL, 64, SimTime::ZERO);
    cache.insert(ItemId::new(2), Version::INITIAL, 64, SimTime::ZERO);
    let mut own = DataItem::new(ItemId::new(0), 64);
    let mut rng = SimRng::from_seed(77, 0);
    let mut now = SimTime::ZERO;
    let mut connected = true;
    let mut next_query = 0u64;
    let mut open: HashSet<QueryId> = HashSet::new();

    // init
    {
        let mut ctx = Ctx::new(
            now, me, &mut cache, &mut own, &mut rng, &cfg, 1.0, connected,
        );
        proto.on_init(&mut ctx);
        let _ = ctx.take_outputs();
    }

    for step in steps {
        if let Step::AdvanceTime(ms) = step {
            now += SimDuration::from_millis(*ms);
            continue;
        }
        let mut ctx = Ctx::new(
            now, me, &mut cache, &mut own, &mut rng, &cfg, 0.9, connected,
        );
        match step {
            Step::Query { item, level } => {
                let q = QueryId(next_query);
                next_query += 1;
                open.insert(q);
                let level = match level {
                    0 => ConsistencyLevel::Weak,
                    1 => ConsistencyLevel::Delta,
                    _ => ConsistencyLevel::Strong,
                };
                proto.on_query(&mut ctx, q, ItemId::new(*item), level);
            }
            Step::SourceUpdate => {
                ctx.own_item.update();
                proto.on_source_update(&mut ctx);
            }
            Step::Message { from, msg } => {
                proto.on_message(&mut ctx, NodeId::new(*from), to_proto_msg(msg));
            }
            Step::Timer(t) => {
                let timer = match t {
                    Tmr::Ttn => Timer::Ttn,
                    Tmr::PollRetry { query, attempt } => Timer::PollRetry {
                        query: QueryId(*query),
                        attempt: *attempt,
                    },
                    Tmr::PushWait { query } => Timer::PushWait {
                        query: QueryId(*query),
                    },
                    Tmr::PollGrace { query } => Timer::PollGrace {
                        query: QueryId(*query),
                    },
                    Tmr::RelayHoldSweep => Timer::RelayHoldSweep,
                };
                proto.on_timer(&mut ctx, timer);
            }
            Step::Undeliverable { dest, msg } => {
                proto.on_undeliverable(&mut ctx, NodeId::new(*dest), to_proto_msg(msg));
            }
            Step::StatusChange(up) => {
                connected = *up;
                proto.on_status_change(&mut ctx, *up);
            }
            Step::CoeffTick { moved } => proto.on_coefficient_tick(&mut ctx, *moved),
            Step::AdvanceTime(_) => unreachable!("handled above"),
        }
        for out in ctx.take_outputs() {
            match out {
                CtxOut::Answer { query, .. } | CtxOut::Fail { query } => {
                    assert!(
                        open.remove(&query),
                        "protocol resolved a query it was never given (or resolved twice): {query}"
                    );
                }
                CtxOut::Send { to, .. } => {
                    assert_ne!(to, me, "protocols must not unicast to themselves");
                }
                CtxOut::Flood { ttl, .. } => {
                    assert!(ttl >= 1, "zero-TTL floods go nowhere");
                }
                CtxOut::SetTimer { .. } => {}
                // Pure flight-recorder metadata, no simulation effect.
                CtxOut::Transition { .. }
                | CtxOut::Degraded { .. }
                | CtxOut::QueryPhase { .. }
                | CtxOut::CopyInstalled { .. }
                | CtxOut::Recovery { .. } => {}
            }
        }
    }
}

fn fuzz_config() -> ProptestConfig {
    // The struct-update spread is redundant against the vendored stub's
    // single-field config but keeps this source compatible with real
    // proptest, whose ProptestConfig has many more fields.
    #[allow(clippy::needless_update)]
    ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    }
}

proptest! {
    #![proptest_config(fuzz_config())]

    #[test]
    fn rpcc_survives_arbitrary_sequences(steps in proptest::collection::vec(step_strategy(), 0..120)) {
        let cfg = ProtocolConfig::default();
        drive(Rpcc::new(&cfg, true), &steps, false);
    }

    #[test]
    fn rpcc_adaptive_survives_arbitrary_sequences(steps in proptest::collection::vec(step_strategy(), 0..120)) {
        let cfg = ProtocolConfig { adaptive: true, ..ProtocolConfig::default() };
        drive(Rpcc::new(&cfg, true), &steps, true);
    }

    #[test]
    fn rpcc_capped_survives_arbitrary_sequences(steps in proptest::collection::vec(step_strategy(), 0..120)) {
        let cfg = ProtocolConfig { max_relays_per_item: Some(1), ..ProtocolConfig::default() };
        drive(Rpcc::new(&cfg, true), &steps, false);
    }

    #[test]
    fn push_survives_arbitrary_sequences(steps in proptest::collection::vec(step_strategy(), 0..120)) {
        let cfg = ProtocolConfig::default();
        drive(SimplePush::new(&cfg, true), &steps, false);
    }

    #[test]
    fn pull_survives_arbitrary_sequences(steps in proptest::collection::vec(step_strategy(), 0..120)) {
        let cfg = ProtocolConfig::default();
        drive(SimplePull::new(&cfg, true), &steps, false);
    }

    #[test]
    fn push_adaptive_survives_arbitrary_sequences(steps in proptest::collection::vec(step_strategy(), 0..120)) {
        let cfg = ProtocolConfig::default();
        drive(PushAdaptivePull::new(&cfg, true), &steps, false);
    }
}
