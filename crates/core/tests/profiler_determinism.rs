//! Profiling is strictly observational: a seeded run with the wall-clock
//! profiler enabled must produce bit-identical protocol results and an
//! identical trace journal compared to the same run without it. The only
//! permitted difference is the `perf` section itself.

use std::io::Write;
use std::sync::{Arc, Mutex};

use mp2p_rpcc::{RunReport, Strategy, World, WorldConfig};
use mp2p_sim::SimDuration;
use mp2p_trace::JsonlSink;

/// In-memory journal target: a cloneable handle to one shared byte
/// buffer, so the bytes survive handing the writer to [`JsonlSink`].
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn scenario(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::small_test(seed);
    cfg.n_peers = 10;
    cfg.sim_time = SimDuration::from_mins(5);
    cfg.warmup = SimDuration::from_mins(1);
    cfg.strategy = Strategy::Rpcc;
    cfg
}

/// Runs the scenario, optionally profiled, returning the report and the
/// full journal bytes.
fn run(seed: u64, profiled: bool) -> (RunReport, Vec<u8>) {
    let cfg = scenario(seed);
    let warmup = cfg.warmup;
    let buf = SharedBuf::default();
    let mut world = World::new(cfg);
    if profiled {
        world.enable_profiling();
    }
    let sink = JsonlSink::new_with_warmup(Box::new(buf.clone()), warmup);
    world.set_tracer(Box::new(sink));
    let (report, sink) = world.run_traced();
    drop(sink);
    let bytes = buf.0.lock().unwrap().clone();
    (report, bytes)
}

#[test]
fn profiled_run_is_bit_identical_to_unprofiled() {
    for seed in [7u64, 42] {
        let (plain, plain_journal) = run(seed, false);
        let (mut profiled, profiled_journal) = run(seed, true);

        assert!(plain.perf.is_none(), "profiling off must leave perf unset");
        assert!(profiled.perf.is_some(), "profiling on must fill perf");
        assert_eq!(
            plain_journal, profiled_journal,
            "seed {seed}: journals diverged under profiling"
        );

        // With the perf section removed, the reports — every protocol
        // counter, histogram and audit — must serialise identically.
        profiled.perf = None;
        assert_eq!(
            plain.to_json(),
            profiled.to_json(),
            "seed {seed}: reports diverged under profiling"
        );
    }
}

#[test]
fn perf_report_is_well_formed() {
    let (report, journal) = run(42, true);
    let perf = report.perf.as_ref().expect("profiling was enabled");

    assert!(perf.events() > 0, "a five-minute run handles events");
    assert!(perf.wall_nanos >= 1);
    assert!(perf.events_per_sec() > 0.0);
    assert!(!perf.buckets.is_empty());
    assert!(perf.buckets.iter().any(|b| b.name.starts_with("event:")));
    assert!(perf.buckets.iter().any(|b| b.name.starts_with("msg:")));

    let queue = &perf.queue;
    assert!(
        queue.pushes >= queue.pops,
        "cannot pop more than was pushed"
    );
    assert!(queue.peak_len > 0);
    assert!(queue.peak_capacity >= queue.peak_len);

    assert!(perf.frames_sent > 0, "RPCC traffic sends frames");
    assert_eq!(
        perf.journal_bytes,
        journal.len() as u64,
        "journal byte counter must match what actually reached the sink"
    );

    let json = perf.to_json();
    assert!(
        mp2p_trace::json::is_valid(&json),
        "perf JSON must parse: {json}"
    );
    // And the full report with the perf section embedded stays valid too.
    assert!(mp2p_trace::json::is_valid(&report.to_json()));
}

#[test]
fn unprofiled_report_json_has_no_perf_key() {
    let (report, _) = run(7, false);
    assert!(
        !report.to_json().contains("\"perf\""),
        "perf key must only appear when profiling is on"
    );
}
