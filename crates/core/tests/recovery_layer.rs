//! Self-healing recovery layer guarantees.
//!
//! Three families of invariants are pinned here:
//!
//! 1. **Bounded, idempotent bookkeeping.** The sender-side retransmit
//!    queue never exceeds its configured bound under any operation
//!    sequence, duplicated ACK frames settle nothing twice, and the
//!    receiver-side sequence tracker accepts each stamped frame at most
//!    once however often the fault layer duplicates it.
//! 2. **Stream isolation.** Retransmission backoff draws only from the
//!    recovery RNG stream: however many delays are drawn, the protocol
//!    stream's next draw is unchanged. This is what keeps recovery-off
//!    runs byte-identical (the golden fixtures in
//!    `substrate_determinism.rs` and `consistency_observatory.rs` pin
//!    the off case; this file pins *why* it holds).
//! 3. **Determinism on.** With every recovery mechanism enabled under
//!    crash churn, two same-seed runs produce byte-identical reports,
//!    and the recovery counters only appear in the JSON when the layer
//!    is switched on.

use std::collections::HashMap;

use proptest::prelude::*;
// `mp2p_rpcc::Strategy` (the protocol selector) shadows the prelude's
// `Strategy` trait; re-import the trait anonymously for `prop_map`.
use proptest::strategy::Strategy as _;

use mp2p_cache::{CacheStore, DataItem, Version};
use mp2p_net::FaultPlan;
use mp2p_rpcc::{
    Ctx, ProtocolConfig, RecoveryConfig, RetransmitQueue, SeqTracker, Strategy, World, WorldConfig,
};
use mp2p_sim::{ItemId, NodeId, SimDuration, SimRng, SimTime};

/// One operation against the retransmit queue.
#[derive(Debug, Clone)]
enum QueueOp {
    Enqueue { dest: u32, item: u32 },
    Ack { dest: u32, nth: usize },
    Bump { nth: usize },
    DropSeq { nth: usize },
    DropDest { dest: u32 },
}

fn queue_op() -> impl proptest::strategy::Strategy<Value = QueueOp> {
    prop_oneof![
        (0u32..4, 0u32..6).prop_map(|(dest, item)| QueueOp::Enqueue { dest, item }),
        (0u32..4, 0usize..64).prop_map(|(dest, nth)| QueueOp::Ack { dest, nth }),
        (0usize..64).prop_map(|nth| QueueOp::Bump { nth }),
        (0usize..64).prop_map(|nth| QueueOp::DropSeq { nth }),
        (0u32..4).prop_map(|dest| QueueOp::DropDest { dest }),
    ]
}

/// A short hardened config: backoff and jitter on, so delay draws
/// actually consume randomness.
fn jittered_config() -> ProtocolConfig {
    let mut cfg = ProtocolConfig::default().hardened();
    cfg.recovery = RecoveryConfig::on();
    cfg
}

proptest! {
    /// Invariant 1a: whatever the operation sequence, the queue never
    /// holds more than `cap` entries — and neither does its high-water
    /// mark. An ACK settles a sequence number at most once; afterwards
    /// the same `(dest, seq)` ACK is a no-op forever.
    #[test]
    fn retx_queue_never_exceeds_its_bound(
        cap in 1usize..6,
        ops in proptest::collection::vec(queue_op(), 0..80),
    ) {
        let mut q = RetransmitQueue::new(cap);
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        let mut issued: Vec<(NodeId, u64)> = Vec::new();
        let mut settled: Vec<(NodeId, u64)> = Vec::new();
        for op in &ops {
            match *op {
                QueueOp::Enqueue { dest, item } => {
                    let dest = NodeId::new(dest);
                    let seq = q.enqueue(dest, ItemId::new(item), Version::new(1), t);
                    prop_assert!(
                        issued.iter().all(|&(_, s)| s < seq),
                        "sequence numbers are strictly monotone"
                    );
                    issued.push((dest, seq));
                }
                QueueOp::Ack { dest, nth } => {
                    let dest = NodeId::new(dest);
                    if let Some(&(d, seq)) = issued.get(nth) {
                        let got = q.ack(dest, seq);
                        if got.is_some() {
                            prop_assert_eq!(d, dest, "an ACK only settles its own dest");
                            prop_assert!(
                                !settled.contains(&(dest, seq)),
                                "a sequence number settles at most once"
                            );
                            settled.push((dest, seq));
                        }
                    }
                }
                QueueOp::Bump { nth } => {
                    if let Some(&(_, seq)) = issued.get(nth) {
                        q.bump(seq, t + SimDuration::from_secs(2));
                    }
                }
                QueueOp::DropSeq { nth } => {
                    if let Some(&(_, seq)) = issued.get(nth) {
                        q.drop_seq(seq);
                    }
                }
                QueueOp::DropDest { dest } => {
                    q.drop_dest(NodeId::new(dest));
                }
            }
            prop_assert!(q.len() <= cap, "queue exceeded its bound");
            prop_assert!(q.high_water() <= cap, "high-water exceeded the bound");
        }
    }

    /// Invariant 1b: under arbitrary duplication and reordering, the
    /// receiver-side tracker accepts each `(peer, item)` stream in
    /// strictly increasing sequence order and each frame at most once.
    #[test]
    fn seq_tracker_accepts_each_frame_at_most_once(
        frames in proptest::collection::vec((0u32..4, 0u32..4, 1u64..32), 0..120),
    ) {
        let mut tracker = SeqTracker::new();
        let mut accepted: HashMap<(u32, u32), u64> = HashMap::new();
        for &(peer, item, seq) in &frames {
            let fresh = tracker.is_new(NodeId::new(peer), ItemId::new(item), seq);
            let highest = accepted.entry((peer, item)).or_insert(0);
            if fresh {
                prop_assert!(
                    seq > *highest,
                    "accepted a frame at or below the highest seen"
                );
                *highest = seq;
            } else {
                prop_assert!(seq <= *highest, "rejected a genuinely new frame");
            }
        }
    }

    /// Invariant 2: however many backoff delays the recovery layer
    /// draws, the protocol stream is untouched — its next draw equals
    /// that of a run that never retransmitted anything.
    #[test]
    fn backoff_draws_only_from_the_recovery_stream(
        attempts in proptest::collection::vec(1u8..6, 0..12),
    ) {
        let cfg = jittered_config();
        let base = cfg.recovery.retx_timeout;
        let mut cache = CacheStore::new(4);
        let mut own = DataItem::new(ItemId::new(0), 64);
        let mut rng = SimRng::from_seed(7, 0);
        let mut recovery_rng = SimRng::from_seed(7, 0xA00);
        let mut ctx = Ctx::new(
            SimTime::ZERO,
            NodeId::new(0),
            &mut cache,
            &mut own,
            &mut rng,
            &cfg,
            1.0,
            true,
        );
        ctx.recovery_rng = Some(&mut recovery_rng);
        for &attempt in &attempts {
            let delay = ctx.recovery_delay(base, attempt);
            prop_assert!(delay >= base, "backoff never shortens the base delay");
        }
        // The protocol stream never advanced: its next draw matches a
        // pristine stream's first.
        prop_assert_eq!(
            ctx.rng.uniform_f64(),
            SimRng::from_seed(7, 0).uniform_f64(),
            "recovery delays consumed protocol-stream randomness"
        );
    }
}

/// The crash-churn scenario the determinism and efficacy checks run:
/// the paper's 50-peer terrain, shortened, under `crash-heavy` with the
/// hardened knobs and every recovery mechanism on.
fn recovery_chaos(seed: u64, preset: &str) -> WorldConfig {
    let mut cfg = WorldConfig::paper_default(seed);
    cfg.strategy = Strategy::Rpcc;
    cfg.sim_time = SimDuration::from_mins(8);
    cfg.warmup = SimDuration::from_mins(2);
    cfg.proto = cfg.proto.hardened();
    cfg.proto.recovery = RecoveryConfig::on();
    cfg.faults = FaultPlan::preset(preset, cfg.sim_time).expect("known preset");
    cfg
}

#[test]
fn recovery_on_runs_stay_deterministic() {
    let a = World::new(recovery_chaos(42, "crash-heavy")).run();
    let b = World::new(recovery_chaos(42, "crash-heavy")).run();
    assert_eq!(a.to_json(), b.to_json(), "same seed, same bytes");
    assert!(a.recovery_enabled);
}

#[test]
fn recovery_counters_appear_only_when_enabled() {
    let on = World::new(recovery_chaos(42, "crash-heavy")).run();
    assert!(on.recovery_enabled);
    let json = on.to_json();
    for key in [
        "\"resyncs\"",
        "\"retransmits\"",
        "\"delivery_acks\"",
        "\"handovers\"",
        "\"retx_queue_peak\"",
    ] {
        assert!(json.contains(key), "recovery-on report must carry {key}");
    }

    let mut cfg = recovery_chaos(42, "crash-heavy");
    cfg.proto.recovery = RecoveryConfig::off();
    let off = World::new(cfg).run();
    assert!(!off.recovery_enabled);
    let json = off.to_json();
    for key in ["\"resyncs\"", "\"retransmits\"", "\"retx_queue_peak\""] {
        assert!(
            !json.contains(key),
            "recovery-off report must not carry {key}"
        );
    }
}

#[test]
fn crash_churn_exercises_resync_and_acked_delivery() {
    let report = World::new(recovery_chaos(42, "crash-heavy")).run();
    assert_eq!(
        report.faults.crashes, report.faults.recoveries,
        "every crash-heavy victim recovers in-run"
    );
    assert!(report.faults.crashes >= 6, "preset schedules six crashes");
    assert!(
        report.faults.resyncs > 0,
        "rejoining nodes must flood resync digests"
    );
    assert!(
        report.faults.delivery_acks > 0,
        "acked delivery must settle updates"
    );
    assert!(
        report.faults.retx_queue_peak > 0,
        "sources must have tracked pending updates"
    );
}

#[test]
fn lossy_links_force_retransmissions() {
    // Under burst loss, some DELIVERY_ACKs die on the air, so pending
    // entries come due and are retransmitted from the bounded queue.
    let report = World::new(recovery_chaos(42, "bursty")).run();
    assert!(
        report.faults.retransmits > 0,
        "burst loss must trigger retransmissions"
    );
    assert!(report.faults.delivery_acks > 0);
}
