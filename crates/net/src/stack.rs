//! The per-node network layer: flooding + on-demand unicast routing.

use std::collections::{HashMap, HashSet, VecDeque};

use mp2p_sim::{NodeId, SimDuration, SimTime};

use crate::frame::{FloodId, Frame, NetMeta, NetPayload, RouteControl};

/// Tunables for the network layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Lifetime of a route-table entry; refreshed on every use, in the
    /// style of AODV's active-route timeout.
    pub route_ttl: SimDuration,
    /// TTL of route-request floods (should exceed the network diameter).
    pub rreq_ttl: u8,
    /// Route-discovery attempts before a destination is declared
    /// unreachable.
    pub rreq_retries: u8,
    /// How long to wait for a route reply before retrying discovery.
    pub rreq_timeout: SimDuration,
    /// Size in bytes of RREQ/RREP/RERR control frames.
    pub control_size: u32,
    /// Maximum packets buffered per destination while discovering.
    pub buffer_cap: usize,
    /// Flood-dedup memory (most recent flood ids remembered).
    pub dedup_cap: usize,
    /// Hop budget for unicast frames: a frame that travelled this many
    /// hops is dropped (with an RERR towards its origin). Guards against
    /// forwarding loops, which hop-count-learned routes cannot fully
    /// exclude (real AODV uses sequence numbers for the same purpose).
    pub max_unicast_hops: u8,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            // Pedestrian-speed MANET: links live for tens of seconds;
            // breaks are detected at the MAC and repaired.
            route_ttl: SimDuration::from_secs(60),
            rreq_ttl: 10,
            rreq_retries: 2,
            rreq_timeout: SimDuration::from_millis(1_500),
            control_size: 32,
            buffer_cap: 32,
            dedup_cap: 8_192,
            max_unicast_hops: 24,
        }
    }
}

/// A network-layer timer (scheduled by the driver on the stack's behalf).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetTimer {
    /// Route discovery towards `dest` timed out (attempt number included).
    RreqTimeout {
        /// The destination being discovered.
        dest: NodeId,
        /// 1-based attempt counter.
        attempt: u8,
    },
}

/// What the stack asks the driver to do.
#[derive(Debug, Clone, PartialEq)]
pub enum NetAction<M> {
    /// Transmit `frame` once; every current neighbour hears it.
    Broadcast(Frame<M>),
    /// Transmit `frame` once, MAC-addressed to `next_hop`. The driver must
    /// report unreachable next-hops back via
    /// [`NetStack::on_send_failed`].
    Send {
        /// The MAC-layer receiver.
        next_hop: NodeId,
        /// The frame to transmit.
        frame: Frame<M>,
    },
    /// Hand `payload` to the application layer of this node.
    Deliver {
        /// The application message.
        payload: M,
        /// Reception metadata.
        meta: NetMeta,
    },
    /// Schedule [`NetStack::on_timer`] after `after`.
    SetTimer {
        /// Delay until the timer fires.
        after: SimDuration,
        /// The timer payload.
        timer: NetTimer,
    },
    /// Route discovery exhausted its retries; `payload` could not be sent.
    Undeliverable {
        /// The unreachable destination.
        dest: NodeId,
        /// The application message handed back.
        payload: M,
    },
}

/// A diagnostic event the stack noted while processing input.
///
/// These cover the silent paths a flight recorder wants to see —
/// duplicate suppression, TTL and hop-budget drops, route-discovery
/// progress — which produce no [`NetAction`] of their own. Events are
/// only collected after [`NetStack::set_tracing`]`(true)`; the driver
/// drains them with [`NetStack::take_events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEvent {
    /// A flood frame was ignored as an already-seen duplicate.
    FloodDupDrop {
        /// The flood's originator.
        origin: NodeId,
        /// The flood's origin-local frame sequence number.
        seq: u64,
    },
    /// A flood frame arrived with an exhausted TTL and was not
    /// re-broadcast (propagation stopped here).
    FloodTtlExhausted {
        /// The flood's originator.
        origin: NodeId,
    },
    /// A route request was ignored as an already-answered duplicate.
    RreqDupDrop {
        /// The requesting node.
        origin: NodeId,
    },
    /// A unicast frame exceeded the hop budget and was dropped.
    HopBudgetDrop {
        /// The frame's originator.
        origin: NodeId,
        /// The frame's origin-local sequence number.
        seq: u64,
        /// The frame's intended destination.
        dest: NodeId,
    },
    /// A forwarding node had no fresh route for an in-flight frame.
    NoRouteDrop {
        /// The frame's originator.
        origin: NodeId,
        /// The frame's origin-local sequence number.
        seq: u64,
        /// The frame's intended destination.
        dest: NodeId,
    },
    /// A route discovery (re)started towards `dest`.
    DiscoveryStart {
        /// The destination being searched for.
        dest: NodeId,
        /// 1-based attempt number (`> 1` means a retry).
        attempt: u8,
    },
    /// Route discovery towards `dest` exhausted its retries.
    DiscoveryFailed {
        /// The destination that was never found.
        dest: NodeId,
        /// Buffered packets abandoned as a result.
        dropped: u32,
    },
}

#[derive(Debug, Clone)]
struct RouteEntry {
    next_hop: NodeId,
    hops: u8,
    expires: SimTime,
}

#[derive(Debug, Clone)]
struct PendingDiscovery<M> {
    attempt: u8,
    packets: VecDeque<(M, u32)>,
}

/// Per-node network stack: duplicate-suppressed TTL flooding plus
/// AODV-style on-demand unicast routing.
///
/// The stack is a pure state machine: every input returns the list of
/// [`NetAction`]s the driver must perform. It never looks at the clock or
/// the topology itself — time arrives as arguments, connectivity arrives
/// as delivered/failed frames.
///
/// # Example
///
/// ```
/// use mp2p_net::{NetAction, NetConfig, NetStack};
/// use mp2p_sim::{NodeId, SimTime};
///
/// let mut stack: NetStack<&'static str> = NetStack::new(NodeId::new(0), NetConfig::default());
/// // Flooding needs no route: one broadcast action.
/// let actions = stack.flood_app(SimTime::ZERO, 3, "INVALIDATION", 48);
/// assert!(matches!(actions[0], NetAction::Broadcast(_)));
/// ```
#[derive(Debug, Clone)]
pub struct NetStack<M> {
    node: NodeId,
    cfg: NetConfig,
    flood_seq: u64,
    rreq_seq: u64,
    seen_floods: HashSet<FloodId>,
    seen_order: VecDeque<FloodId>,
    seen_rreqs: HashSet<(NodeId, u64)>,
    rreq_order: VecDeque<(NodeId, u64)>,
    routes: HashMap<NodeId, RouteEntry>,
    pending: HashMap<NodeId, PendingDiscovery<M>>,
    tracing: bool,
    events: Vec<NetEvent>,
}

impl<M: Clone> NetStack<M> {
    /// Creates the stack for `node`.
    pub fn new(node: NodeId, cfg: NetConfig) -> Self {
        NetStack {
            node,
            cfg,
            flood_seq: 0,
            rreq_seq: 0,
            seen_floods: HashSet::new(),
            seen_order: VecDeque::new(),
            seen_rreqs: HashSet::new(),
            rreq_order: VecDeque::new(),
            routes: HashMap::new(),
            pending: HashMap::new(),
            tracing: false,
            events: Vec::new(),
        }
    }

    /// The node this stack belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Enables or disables diagnostic [`NetEvent`] collection. Off by
    /// default; when off, [`NetStack::take_events`] always returns empty.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        if !on {
            self.events.clear();
        }
    }

    /// Drains the diagnostic events noted since the last call.
    pub fn take_events(&mut self) -> Vec<NetEvent> {
        std::mem::take(&mut self.events)
    }

    fn note(&mut self, event: NetEvent) {
        if self.tracing {
            self.events.push(event);
        }
    }

    /// Number of live route-table entries at `now`.
    pub fn route_count(&self, now: SimTime) -> usize {
        self.routes.values().filter(|r| r.expires > now).count()
    }

    /// True if a fresh route to `dest` is installed.
    pub fn has_route(&self, dest: NodeId, now: SimTime) -> bool {
        matches!(self.routes.get(&dest), Some(r) if r.expires > now)
    }

    /// Starts an application flood with the given TTL. Returns the
    /// broadcast action (or nothing when `ttl == 0`).
    pub fn flood_app(
        &mut self,
        _now: SimTime,
        ttl: u8,
        payload: M,
        size: u32,
    ) -> Vec<NetAction<M>> {
        if ttl == 0 {
            return Vec::new();
        }
        let id = FloodId {
            origin: self.node,
            seq: self.next_seq(),
        };
        self.remember_flood(id);
        vec![NetAction::Broadcast(Frame::Flood {
            id,
            ttl,
            hops: 0,
            payload: NetPayload::App(payload),
            size,
        })]
    }

    /// Sends `payload` to `dest`, discovering a route first if needed.
    ///
    /// Sending to self delivers immediately (loopback).
    pub fn send_app(
        &mut self,
        now: SimTime,
        dest: NodeId,
        payload: M,
        size: u32,
    ) -> Vec<NetAction<M>> {
        if dest == self.node {
            return vec![NetAction::Deliver {
                payload,
                meta: NetMeta {
                    origin: self.node,
                    hops: 0,
                    via_flood: false,
                    frame: None,
                },
            }];
        }
        if let Some(next_hop) = self.fresh_route(dest, now) {
            let seq = self.next_seq();
            return vec![NetAction::Send {
                next_hop,
                frame: Frame::Unicast {
                    origin: self.node,
                    seq,
                    dest,
                    hops: 0,
                    payload: NetPayload::App(payload),
                    size,
                },
            }];
        }
        self.enqueue_and_discover(now, dest, payload, size)
    }

    /// Handles a frame heard from transmitter `from`.
    pub fn on_frame(&mut self, now: SimTime, from: NodeId, frame: Frame<M>) -> Vec<NetAction<M>> {
        match frame {
            Frame::Flood {
                id,
                ttl,
                hops,
                payload,
                size,
            } => self.on_flood(now, from, id, ttl, hops, payload, size),
            Frame::Unicast {
                origin,
                seq,
                dest,
                hops,
                payload,
                size,
            } => self.on_unicast(now, from, origin, seq, dest, hops, payload, size),
        }
    }

    /// Handles a timer previously requested via [`NetAction::SetTimer`].
    pub fn on_timer(&mut self, now: SimTime, timer: NetTimer) -> Vec<NetAction<M>> {
        match timer {
            NetTimer::RreqTimeout { dest, attempt } => {
                if self.fresh_route(dest, now).is_some() || !self.pending.contains_key(&dest) {
                    return Vec::new(); // discovery already succeeded
                }
                if attempt < self.cfg.rreq_retries {
                    self.note(NetEvent::DiscoveryStart {
                        dest,
                        attempt: attempt + 1,
                    });
                    let mut actions =
                        vec![self.rreq_flood(dest, self.rreq_ttl_for_attempt(attempt + 1))];
                    if let Some(p) = self.pending.get_mut(&dest) {
                        p.attempt = attempt + 1;
                    }
                    actions.push(NetAction::SetTimer {
                        after: self.cfg.rreq_timeout,
                        timer: NetTimer::RreqTimeout {
                            dest,
                            attempt: attempt + 1,
                        },
                    });
                    actions
                } else {
                    let Some(pending) = self.pending.remove(&dest) else {
                        return Vec::new();
                    };
                    self.note(NetEvent::DiscoveryFailed {
                        dest,
                        dropped: pending.packets.len() as u32,
                    });
                    pending
                        .packets
                        .into_iter()
                        .map(|(payload, _)| NetAction::Undeliverable { dest, payload })
                        .collect()
                }
            }
        }
    }

    /// MAC feedback: the transmission of `frame` to `next_hop` could not
    /// be delivered (receiver out of range or down). Routes through
    /// `next_hop` are purged; data frames originated here are re-queued
    /// for a fresh discovery, relayed data triggers an RERR towards its
    /// origin.
    pub fn on_send_failed(
        &mut self,
        now: SimTime,
        next_hop: NodeId,
        frame: Frame<M>,
    ) -> Vec<NetAction<M>> {
        self.routes.retain(|_, r| r.next_hop != next_hop);
        match frame {
            Frame::Unicast {
                origin,
                dest,
                payload: NetPayload::App(m),
                size,
                ..
            } => {
                if origin == self.node {
                    self.enqueue_and_discover(now, dest, m, size)
                } else {
                    // Relayed data: tell the origin its route broke, if we
                    // still know a way back; otherwise the loss surfaces at
                    // the origin's own application timeout.
                    match self.fresh_route(origin, now) {
                        Some(hop) => {
                            let seq = self.next_seq();
                            vec![NetAction::Send {
                                next_hop: hop,
                                frame: Frame::Unicast {
                                    origin: self.node,
                                    seq,
                                    dest: origin,
                                    hops: 0,
                                    payload: NetPayload::Control(RouteControl::Rerr {
                                        broken_dest: dest,
                                    }),
                                    size: self.cfg.control_size,
                                },
                            }]
                        }
                        None => Vec::new(),
                    }
                }
            }
            // Lost control frames are recovered by the requester's own
            // discovery timer; nothing to do here.
            _ => Vec::new(),
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the frame's fields
    fn on_flood(
        &mut self,
        now: SimTime,
        from: NodeId,
        id: FloodId,
        ttl: u8,
        hops: u8,
        payload: NetPayload<M>,
        size: u32,
    ) -> Vec<NetAction<M>> {
        if self.seen_floods.contains(&id) {
            self.note(NetEvent::FloodDupDrop {
                origin: id.origin,
                seq: id.seq,
            });
            return Vec::new();
        }
        self.remember_flood(id);
        // Hearing any frame teaches the reverse route to its origin.
        self.learn_route(id.origin, from, hops + 1, now);
        let mut actions = Vec::new();
        match &payload {
            NetPayload::App(m) => {
                actions.push(NetAction::Deliver {
                    payload: m.clone(),
                    meta: NetMeta {
                        origin: id.origin,
                        hops: hops + 1,
                        via_flood: true,
                        frame: Some(id.seq),
                    },
                });
            }
            NetPayload::Control(RouteControl::Rreq {
                origin,
                target,
                req_id,
            }) => {
                if !self.remember_rreq((*origin, *req_id)) {
                    self.note(NetEvent::RreqDupDrop { origin: *origin });
                    return Vec::new();
                }
                if *target == self.node {
                    // Answer with a route reply unwinding the reverse path.
                    actions.extend(self.send_control_towards(
                        now,
                        *origin,
                        RouteControl::Rrep { requester: *origin },
                    ));
                    return actions;
                }
            }
            NetPayload::Control(_) => {}
        }
        if ttl > 1 {
            actions.push(NetAction::Broadcast(Frame::Flood {
                id,
                ttl: ttl - 1,
                hops: hops + 1,
                payload,
                size,
            }));
        } else {
            self.note(NetEvent::FloodTtlExhausted { origin: id.origin });
        }
        actions
    }

    #[allow(clippy::too_many_arguments)]
    fn on_unicast(
        &mut self,
        now: SimTime,
        from: NodeId,
        origin: NodeId,
        seq: u64,
        dest: NodeId,
        hops: u8,
        payload: NetPayload<M>,
        size: u32,
    ) -> Vec<NetAction<M>> {
        self.learn_route(origin, from, hops + 1, now);
        if dest == self.node {
            return match payload {
                NetPayload::App(m) => vec![NetAction::Deliver {
                    payload: m,
                    meta: NetMeta {
                        origin,
                        hops: hops + 1,
                        via_flood: false,
                        frame: Some(seq),
                    },
                }],
                NetPayload::Control(RouteControl::Rrep { .. }) => {
                    // A discovery completed: the route to the RREP's origin
                    // (the discovered target) was just learned above.
                    self.flush_pending(now, origin)
                }
                NetPayload::Control(RouteControl::Rerr { broken_dest }) => {
                    self.routes.remove(&broken_dest);
                    Vec::new()
                }
                NetPayload::Control(RouteControl::Rreq { .. }) => Vec::new(), // RREQs never travel unicast
            };
        }
        // Forwarding role.
        if hops >= self.cfg.max_unicast_hops {
            // Hop budget exhausted: almost certainly a forwarding loop.
            self.note(NetEvent::HopBudgetDrop { origin, seq, dest });
            return if matches!(payload, NetPayload::App(_)) {
                self.routes.remove(&dest);
                self.send_control_towards(now, origin, RouteControl::Rerr { broken_dest: dest })
            } else {
                Vec::new()
            };
        }
        // Split horizon: never hand a frame straight back to the node it
        // came from (the tightest loop hop-count learning can create).
        let route = self.fresh_route(dest, now).filter(|&hop| hop != from);
        match route {
            Some(next_hop) => vec![NetAction::Send {
                next_hop,
                frame: Frame::Unicast {
                    origin,
                    seq,
                    dest,
                    hops: hops + 1,
                    payload,
                    size,
                },
            }],
            None => {
                // No route at an intermediate hop: report back to the origin.
                self.note(NetEvent::NoRouteDrop { origin, seq, dest });
                if matches!(payload, NetPayload::App(_)) {
                    self.send_control_towards(now, origin, RouteControl::Rerr { broken_dest: dest })
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// Sends a control payload towards `dest` if a fresh route is known.
    fn send_control_towards(
        &mut self,
        now: SimTime,
        dest: NodeId,
        ctl: RouteControl,
    ) -> Vec<NetAction<M>> {
        match self.fresh_route(dest, now) {
            Some(next_hop) => {
                let seq = self.next_seq();
                vec![NetAction::Send {
                    next_hop,
                    frame: Frame::Unicast {
                        origin: self.node,
                        seq,
                        dest,
                        hops: 0,
                        payload: NetPayload::Control(ctl),
                        size: self.cfg.control_size,
                    },
                }]
            }
            None => Vec::new(),
        }
    }

    /// Draws the next origin-local frame sequence number. Floods and
    /// unicasts share one counter, so `(origin, seq)` identifies a frame
    /// regardless of shape; flood seq values simply skip the numbers
    /// consumed by unicast sends (dedup only needs uniqueness).
    fn next_seq(&mut self) -> u64 {
        let seq = self.flood_seq;
        self.flood_seq += 1;
        seq
    }

    fn enqueue_and_discover(
        &mut self,
        _now: SimTime,
        dest: NodeId,
        payload: M,
        size: u32,
    ) -> Vec<NetAction<M>> {
        let mut actions = Vec::new();
        let start_discovery = !self.pending.contains_key(&dest);
        let pending = self
            .pending
            .entry(dest)
            .or_insert_with(|| PendingDiscovery {
                attempt: 1,
                packets: VecDeque::new(),
            });
        if pending.packets.len() >= self.cfg.buffer_cap {
            // Oldest packet gives way; its application-level timeout
            // handles the loss.
            pending.packets.pop_front();
        }
        pending.packets.push_back((payload, size));
        if start_discovery {
            self.note(NetEvent::DiscoveryStart { dest, attempt: 1 });
            actions.push(self.rreq_flood(dest, self.rreq_ttl_for_attempt(1)));
            actions.push(NetAction::SetTimer {
                after: self.cfg.rreq_timeout,
                timer: NetTimer::RreqTimeout { dest, attempt: 1 },
            });
        }
        actions
    }

    /// AODV-style expanding-ring search: the first attempt stays local,
    /// later attempts use the full discovery TTL.
    fn rreq_ttl_for_attempt(&self, attempt: u8) -> u8 {
        if attempt <= 1 {
            (self.cfg.rreq_ttl / 3).max(2)
        } else {
            self.cfg.rreq_ttl
        }
    }

    fn rreq_flood(&mut self, target: NodeId, ttl: u8) -> NetAction<M> {
        let id = FloodId {
            origin: self.node,
            seq: self.next_seq(),
        };
        self.remember_flood(id);
        let req_id = self.rreq_seq;
        self.rreq_seq += 1;
        self.remember_rreq((self.node, req_id));
        NetAction::Broadcast(Frame::Flood {
            id,
            ttl,
            hops: 0,
            payload: NetPayload::Control(RouteControl::Rreq {
                origin: self.node,
                target,
                req_id,
            }),
            size: self.cfg.control_size,
        })
    }

    fn flush_pending(&mut self, now: SimTime, dest: NodeId) -> Vec<NetAction<M>> {
        let Some(pending) = self.pending.remove(&dest) else {
            return Vec::new();
        };
        let mut actions = Vec::new();
        for (payload, size) in pending.packets {
            match self.fresh_route(dest, now) {
                Some(next_hop) => {
                    let seq = self.next_seq();
                    actions.push(NetAction::Send {
                        next_hop,
                        frame: Frame::Unicast {
                            origin: self.node,
                            seq,
                            dest,
                            hops: 0,
                            payload: NetPayload::App(payload),
                            size,
                        },
                    })
                }
                None => actions.push(NetAction::Undeliverable { dest, payload }),
            }
        }
        actions
    }

    fn fresh_route(&mut self, dest: NodeId, now: SimTime) -> Option<NodeId> {
        match self.routes.get_mut(&dest) {
            Some(entry) if entry.expires > now => {
                entry.expires = now + self.cfg.route_ttl; // refresh on use
                Some(entry.next_hop)
            }
            _ => None,
        }
    }

    fn learn_route(&mut self, dest: NodeId, next_hop: NodeId, hops: u8, now: SimTime) {
        if dest == self.node {
            return;
        }
        let expires = now + self.cfg.route_ttl;
        match self.routes.get_mut(&dest) {
            // Prefer fresher information; replace stale or longer routes.
            Some(entry) if entry.expires > now && entry.hops < hops => {}
            _ => {
                self.routes.insert(
                    dest,
                    RouteEntry {
                        next_hop,
                        hops,
                        expires,
                    },
                );
            }
        }
    }

    fn remember_flood(&mut self, id: FloodId) {
        if self.seen_floods.insert(id) {
            self.seen_order.push_back(id);
            if self.seen_order.len() > self.cfg.dedup_cap {
                if let Some(old) = self.seen_order.pop_front() {
                    self.seen_floods.remove(&old);
                }
            }
        }
    }

    /// Returns false if this RREQ was already processed.
    fn remember_rreq(&mut self, key: (NodeId, u64)) -> bool {
        if !self.seen_rreqs.insert(key) {
            return false;
        }
        self.rreq_order.push_back(key);
        if self.rreq_order.len() > self.cfg.dedup_cap {
            if let Some(old) = self.rreq_order.pop_front() {
                self.seen_rreqs.remove(&old);
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_of<M: Clone + std::fmt::Debug>(actions: &[NetAction<M>]) -> Frame<M> {
        match &actions[0] {
            NetAction::Broadcast(f) => f.clone(),
            other => panic!("expected broadcast, got {other:?}"),
        }
    }

    #[test]
    fn events_are_off_by_default() {
        let mut a: NetStack<&str> = NetStack::new(NodeId::new(0), NetConfig::default());
        let mut b: NetStack<&str> = NetStack::new(NodeId::new(1), NetConfig::default());
        let flood = frame_of(&a.flood_app(SimTime::ZERO, 3, "X", 40));
        b.on_frame(SimTime::ZERO, NodeId::new(0), flood.clone());
        b.on_frame(SimTime::ZERO, NodeId::new(0), flood); // duplicate
        assert!(b.take_events().is_empty());
    }

    #[test]
    fn tracing_notes_dup_and_ttl_drops() {
        let mut a: NetStack<&str> = NetStack::new(NodeId::new(0), NetConfig::default());
        let mut b: NetStack<&str> = NetStack::new(NodeId::new(1), NetConfig::default());
        b.set_tracing(true);
        let fresh = frame_of(&a.flood_app(SimTime::ZERO, 1, "X", 40));
        b.on_frame(SimTime::ZERO, NodeId::new(0), fresh.clone());
        b.on_frame(SimTime::ZERO, NodeId::new(0), fresh);
        let events = b.take_events();
        assert_eq!(
            events,
            vec![
                // TTL 1 floods deliver but never re-broadcast.
                NetEvent::FloodTtlExhausted {
                    origin: NodeId::new(0)
                },
                NetEvent::FloodDupDrop {
                    origin: NodeId::new(0),
                    seq: 0,
                },
            ]
        );
        // The buffer drains on take.
        assert!(b.take_events().is_empty());
    }

    #[test]
    fn tracing_notes_discovery_lifecycle() {
        let cfg = NetConfig::default();
        let mut a: NetStack<&str> = NetStack::new(NodeId::new(0), cfg);
        a.set_tracing(true);
        let dest = NodeId::new(9);
        a.send_app(SimTime::ZERO, dest, "hello", 64);
        assert_eq!(
            a.take_events(),
            vec![NetEvent::DiscoveryStart { dest, attempt: 1 }]
        );
        // Let every retry time out.
        let mut at = SimTime::ZERO;
        for attempt in 1..=cfg.rreq_retries {
            at += cfg.rreq_timeout;
            a.on_timer(at, NetTimer::RreqTimeout { dest, attempt });
        }
        let events = a.take_events();
        assert!(events
            .iter()
            .any(|e| matches!(e, NetEvent::DiscoveryStart { attempt: 2, .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, NetEvent::DiscoveryFailed { dropped: 1, .. })));
    }

    #[test]
    fn disabling_tracing_clears_buffered_events() {
        let mut a: NetStack<&str> = NetStack::new(NodeId::new(0), NetConfig::default());
        a.set_tracing(true);
        a.send_app(SimTime::ZERO, NodeId::new(5), "x", 16);
        a.set_tracing(false);
        assert!(a.take_events().is_empty());
    }
}
