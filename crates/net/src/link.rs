//! Per-hop MAC/PHY cost model.

use mp2p_sim::{SimDuration, SimRng};

/// The cost of one radio transmission hop.
///
/// GloMoSim's 802.11 stack charged each hop serialisation at the channel
/// bandwidth plus MAC contention; we model the same shape:
///
/// `delay = size / bandwidth + base_latency + U(0, jitter)`
///
/// and drop the frame with probability `loss_prob` (per receiving link).
///
/// # Example
///
/// ```
/// use mp2p_net::LinkModel;
/// use mp2p_sim::SimRng;
///
/// let link = LinkModel::default(); // 2 Mb/s, 1 ms base, 4 ms jitter, lossless
/// let mut rng = SimRng::from_seed(0, 0);
/// let d = link.hop_delay(1_000, &mut rng);
/// assert!(d.as_millis() >= 5); // 4 ms serialisation + 1 ms base
/// assert!(link.delivered(&mut rng));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Channel bandwidth in bits per second (2 Mb/s by default, the
    /// GloMoSim-era 802.11 rate).
    pub bandwidth_bps: u64,
    /// Fixed per-hop latency: propagation + MAC/processing overhead.
    pub base_latency: SimDuration,
    /// Upper bound of the uniform contention jitter added per hop.
    pub jitter: SimDuration,
    /// Probability that a given receiver misses the frame.
    pub loss_prob: f64,
}

impl LinkModel {
    /// Creates a link model.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero or `loss_prob` is outside `[0, 1]`.
    pub fn new(
        bandwidth_bps: u64,
        base_latency: SimDuration,
        jitter: SimDuration,
        loss_prob: f64,
    ) -> Self {
        assert!(bandwidth_bps > 0, "bandwidth must be positive");
        assert!(
            (0.0..=1.0).contains(&loss_prob),
            "loss probability must be in [0,1]"
        );
        LinkModel {
            bandwidth_bps,
            base_latency,
            jitter,
            loss_prob,
        }
    }

    /// A lossless variant of this model (used by consistency-guarantee
    /// property tests, which assert protocol invariants that only hold
    /// when the channel delivers).
    #[must_use]
    pub fn lossless(mut self) -> Self {
        self.loss_prob = 0.0;
        self
    }

    /// The delay for one hop carrying `size_bytes`.
    pub fn hop_delay(&self, size_bytes: u32, rng: &mut SimRng) -> SimDuration {
        let serialisation_ms = (size_bytes as u64 * 8).saturating_mul(1_000) / self.bandwidth_bps;
        let jitter = if self.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_millis(rng.uniform_u64(self.jitter.as_millis() + 1))
        };
        // Every hop costs at least 1 ms so events strictly advance time.
        SimDuration::from_millis(serialisation_ms.max(1)) + self.base_latency + jitter
    }

    /// One Bernoulli delivery trial for a receiving link.
    pub fn delivered(&self, rng: &mut SimRng) -> bool {
        self.loss_prob == 0.0 || !rng.bernoulli(self.loss_prob)
    }
}

impl Default for LinkModel {
    /// 2 Mb/s, 1 ms base latency, 4 ms contention jitter, lossless.
    fn default() -> Self {
        LinkModel::new(
            2_000_000,
            SimDuration::from_millis(1),
            SimDuration::from_millis(4),
            0.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn serialisation_scales_with_size() {
        let link = LinkModel::new(1_000_000, SimDuration::ZERO, SimDuration::ZERO, 0.0);
        let mut rng = SimRng::from_seed(0, 0);
        // 1 Mb/s: 125 bytes/ms.
        assert_eq!(link.hop_delay(125, &mut rng).as_millis(), 1);
        assert_eq!(link.hop_delay(1_250, &mut rng).as_millis(), 10);
    }

    #[test]
    fn minimum_one_millisecond() {
        let link = LinkModel::new(u64::MAX, SimDuration::ZERO, SimDuration::ZERO, 0.0);
        let mut rng = SimRng::from_seed(0, 0);
        assert_eq!(link.hop_delay(1, &mut rng).as_millis(), 1);
    }

    #[test]
    fn lossless_always_delivers() {
        let link = LinkModel::new(1_000, SimDuration::ZERO, SimDuration::ZERO, 0.9).lossless();
        let mut rng = SimRng::from_seed(1, 0);
        assert!((0..100).all(|_| link.delivered(&mut rng)));
    }

    #[test]
    fn lossy_link_drops_roughly_p() {
        let link = LinkModel::new(1_000, SimDuration::ZERO, SimDuration::ZERO, 0.3);
        let mut rng = SimRng::from_seed(2, 0);
        let delivered = (0..10_000).filter(|_| link.delivered(&mut rng)).count();
        assert!(
            (6_500..7_500).contains(&delivered),
            "delivered {delivered}/10000"
        );
    }

    proptest! {
        #[test]
        fn prop_delay_bounded(size in 0u32..65_536, seed in any::<u64>()) {
            let link = LinkModel::default();
            let mut rng = SimRng::from_seed(seed, 0);
            let d = link.hop_delay(size, &mut rng);
            let serialisation = (size as u64 * 8 * 1_000 / 2_000_000).max(1);
            prop_assert!(d.as_millis() > serialisation);
            prop_assert!(d.as_millis() <= serialisation + 1 + 4);
        }
    }
}
