//! Per-hop MAC/PHY cost model.

use mp2p_sim::{SimDuration, SimRng};

/// The cost of one radio transmission hop.
///
/// GloMoSim's 802.11 stack charged each hop serialisation at the channel
/// bandwidth plus MAC contention; we model the same shape:
///
/// `delay = size / bandwidth + base_latency + U(0, jitter)`
///
/// and drop the frame with probability `loss_prob` (per receiving link).
///
/// # Example
///
/// ```
/// use mp2p_net::LinkModel;
/// use mp2p_sim::SimRng;
///
/// let link = LinkModel::default(); // 2 Mb/s, 1 ms base, 4 ms jitter, lossless
/// let mut rng = SimRng::from_seed(0, 0);
/// let d = link.hop_delay(1_000, &mut rng);
/// assert!(d.as_millis() >= 5); // 4 ms serialisation + 1 ms base
/// assert!(link.delivered(&mut rng));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Channel bandwidth in bits per second (2 Mb/s by default, the
    /// GloMoSim-era 802.11 rate).
    pub bandwidth_bps: u64,
    /// Fixed per-hop latency: propagation + MAC/processing overhead.
    pub base_latency: SimDuration,
    /// Upper bound of the uniform contention jitter added per hop.
    pub jitter: SimDuration,
    /// Probability that a given receiver misses the frame.
    pub loss_prob: f64,
}

impl LinkModel {
    /// Creates a link model.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero or `loss_prob` is outside `[0, 1]`.
    pub fn new(
        bandwidth_bps: u64,
        base_latency: SimDuration,
        jitter: SimDuration,
        loss_prob: f64,
    ) -> Self {
        assert!(bandwidth_bps > 0, "bandwidth must be positive");
        assert!(
            (0.0..=1.0).contains(&loss_prob),
            "loss probability must be in [0,1]"
        );
        LinkModel {
            bandwidth_bps,
            base_latency,
            jitter,
            loss_prob,
        }
    }

    /// A lossless variant of this model (used by consistency-guarantee
    /// property tests, which assert protocol invariants that only hold
    /// when the channel delivers).
    #[must_use]
    pub fn lossless(mut self) -> Self {
        self.loss_prob = 0.0;
        self
    }

    /// The delay for one hop carrying `size_bytes`.
    pub fn hop_delay(&self, size_bytes: u32, rng: &mut SimRng) -> SimDuration {
        let serialisation_ms = (size_bytes as u64 * 8).saturating_mul(1_000) / self.bandwidth_bps;
        let jitter = if self.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            SimDuration::from_millis(rng.uniform_u64(self.jitter.as_millis() + 1))
        };
        // Every hop costs at least 1 ms so events strictly advance time.
        SimDuration::from_millis(serialisation_ms.max(1)) + self.base_latency + jitter
    }

    /// One Bernoulli delivery trial for a receiving link.
    pub fn delivered(&self, rng: &mut SimRng) -> bool {
        self.loss_prob == 0.0 || !rng.bernoulli(self.loss_prob)
    }
}

impl Default for LinkModel {
    /// 2 Mb/s, 1 ms base latency, 4 ms contention jitter, lossless.
    fn default() -> Self {
        LinkModel::new(
            2_000_000,
            SimDuration::from_millis(1),
            SimDuration::from_millis(4),
            0.0,
        )
    }
}

/// Parameters of the Gilbert–Elliott two-state burst-loss channel.
///
/// The channel is a two-state Markov chain stepped once per delivery
/// trial: in the *good* state frames drop with `loss_good`, in the *bad*
/// state with `loss_bad`. After each trial the chain transitions
/// good→bad with `p_good_to_bad` and bad→good with `p_bad_to_good`, so
/// the mean dwell in the bad state — the mean loss-burst length when
/// `loss_bad = 1` — is the geometric `1 / p_bad_to_good` trials, and the
/// stationary bad-state probability is
/// `p_good_to_bad / (p_good_to_bad + p_bad_to_good)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeParams {
    /// Transition probability good → bad after each trial.
    pub p_good_to_bad: f64,
    /// Transition probability bad → good after each trial.
    pub p_bad_to_good: f64,
    /// Per-frame loss probability while in the good state.
    pub loss_good: f64,
    /// Per-frame loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GeParams {
    /// Validates every probability.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]` or
    /// `p_bad_to_good` is zero (the bad state would be absorbing).
    pub fn validate(&self) {
        for (name, p) in [
            ("p_good_to_bad", self.p_good_to_bad),
            ("p_bad_to_good", self.p_bad_to_good),
            ("loss_good", self.loss_good),
            ("loss_bad", self.loss_bad),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0,1], got {p}");
        }
        assert!(
            self.p_bad_to_good > 0.0,
            "p_bad_to_good must be positive or the bad state is absorbing"
        );
    }

    /// Closed-form mean dwell time in the bad state, in trials
    /// (`1 / p_bad_to_good`): the expected loss-burst length when
    /// `loss_bad = 1`.
    pub fn mean_burst_len(&self) -> f64 {
        1.0 / self.p_bad_to_good
    }

    /// Closed-form stationary probability of the bad state.
    pub fn stationary_bad(&self) -> f64 {
        self.p_good_to_bad / (self.p_good_to_bad + self.p_bad_to_good)
    }
}

/// The running Gilbert–Elliott channel: [`GeParams`] plus the current
/// Markov state. One instance models the shared channel of a run (the
/// same granularity as the Bernoulli `loss_prob` it replaces); the chain
/// starts in the good state.
#[derive(Debug, Clone, Copy)]
pub struct GilbertElliott {
    params: GeParams,
    bad: bool,
}

impl GilbertElliott {
    /// Creates the channel in the good state.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail [`GeParams::validate`].
    pub fn new(params: GeParams) -> Self {
        params.validate();
        GilbertElliott { params, bad: false }
    }

    /// The parameters this channel runs.
    pub fn params(&self) -> GeParams {
        self.params
    }

    /// Whether the chain currently sits in the bad state.
    pub fn is_bad(&self) -> bool {
        self.bad
    }

    /// One delivery trial: samples loss under the current state, then
    /// steps the Markov chain. Draws exactly two values from `rng` per
    /// call, whatever the outcome, so event schedules stay reproducible.
    pub fn delivered(&mut self, rng: &mut SimRng) -> bool {
        let loss = if self.bad {
            self.params.loss_bad
        } else {
            self.params.loss_good
        };
        let delivered = rng.uniform_f64() >= loss;
        let flip = if self.bad {
            self.params.p_bad_to_good
        } else {
            self.params.p_good_to_bad
        };
        if rng.uniform_f64() < flip {
            self.bad = !self.bad;
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn serialisation_scales_with_size() {
        let link = LinkModel::new(1_000_000, SimDuration::ZERO, SimDuration::ZERO, 0.0);
        let mut rng = SimRng::from_seed(0, 0);
        // 1 Mb/s: 125 bytes/ms.
        assert_eq!(link.hop_delay(125, &mut rng).as_millis(), 1);
        assert_eq!(link.hop_delay(1_250, &mut rng).as_millis(), 10);
    }

    #[test]
    fn minimum_one_millisecond() {
        let link = LinkModel::new(u64::MAX, SimDuration::ZERO, SimDuration::ZERO, 0.0);
        let mut rng = SimRng::from_seed(0, 0);
        assert_eq!(link.hop_delay(1, &mut rng).as_millis(), 1);
    }

    #[test]
    fn lossless_always_delivers() {
        let link = LinkModel::new(1_000, SimDuration::ZERO, SimDuration::ZERO, 0.9).lossless();
        let mut rng = SimRng::from_seed(1, 0);
        assert!((0..100).all(|_| link.delivered(&mut rng)));
    }

    #[test]
    fn lossy_link_drops_roughly_p() {
        let link = LinkModel::new(1_000, SimDuration::ZERO, SimDuration::ZERO, 0.3);
        let mut rng = SimRng::from_seed(2, 0);
        let delivered = (0..10_000).filter(|_| link.delivered(&mut rng)).count();
        assert!(
            (6_500..7_500).contains(&delivered),
            "delivered {delivered}/10000"
        );
    }

    #[test]
    fn ge_starts_good_and_visits_bad() {
        let mut ge = GilbertElliott::new(GeParams {
            p_good_to_bad: 0.5,
            p_bad_to_good: 0.5,
            loss_good: 0.0,
            loss_bad: 1.0,
        });
        assert!(!ge.is_bad());
        let mut rng = SimRng::from_seed(3, 0);
        let mut visited_bad = false;
        for _ in 0..100 {
            ge.delivered(&mut rng);
            visited_bad |= ge.is_bad();
        }
        assert!(visited_bad, "chain never left the good state");
    }

    #[test]
    fn ge_good_state_with_zero_loss_always_delivers() {
        let mut ge = GilbertElliott::new(GeParams {
            p_good_to_bad: 0.0, // never leaves good
            p_bad_to_good: 1.0,
            loss_good: 0.0,
            loss_bad: 1.0,
        });
        let mut rng = SimRng::from_seed(4, 0);
        assert!((0..1_000).all(|_| ge.delivered(&mut rng)));
    }

    #[test]
    #[should_panic(expected = "absorbing")]
    fn ge_rejects_absorbing_bad_state() {
        let _ = GilbertElliott::new(GeParams {
            p_good_to_bad: 0.1,
            p_bad_to_good: 0.0,
            loss_good: 0.0,
            loss_bad: 1.0,
        });
    }

    proptest! {
        #[test]
        fn prop_delay_bounded(size in 0u32..65_536, seed in any::<u64>()) {
            let link = LinkModel::default();
            let mut rng = SimRng::from_seed(seed, 0);
            let d = link.hop_delay(size, &mut rng);
            let serialisation = (size as u64 * 8 * 1_000 / 2_000_000).max(1);
            prop_assert!(d.as_millis() > serialisation);
            prop_assert!(d.as_millis() <= serialisation + 1 + 4);
        }

        /// The empirical mean loss-burst length of the Gilbert–Elliott
        /// chain (loss_bad = 1, loss_good = 0, so a loss burst is exactly
        /// one bad-state dwell) matches the closed form 1/p_bad_to_good.
        #[test]
        fn prop_ge_burst_length_matches_closed_form(
            // Keep expected bursts in [1.25, 10] trials and entries
            // frequent, so ~50k trials see hundreds of bursts and the
            // sample mean concentrates.
            p_bg in (0.1f64..=0.8).prop_filter(
                "burst mean must be finite", |p| *p > 0.0),
            p_gb in 0.05f64..0.5,
            seed in any::<u64>(),
        ) {
            let params = GeParams {
                p_good_to_bad: p_gb,
                p_bad_to_good: p_bg,
                loss_good: 0.0,
                loss_bad: 1.0,
            };
            let mut ge = GilbertElliott::new(params);
            let mut rng = SimRng::from_seed(seed, 0x6E);
            let mut bursts = 0u64;
            let mut lost = 0u64;
            let mut in_burst = false;
            for _ in 0..50_000 {
                if ge.delivered(&mut rng) {
                    in_burst = false;
                } else {
                    if !in_burst {
                        bursts += 1;
                        in_burst = true;
                    }
                    lost += 1;
                }
            }
            prop_assert!(bursts > 100, "too few bursts observed: {bursts}");
            let empirical = lost as f64 / bursts as f64;
            let expected = params.mean_burst_len();
            prop_assert!(
                (empirical - expected).abs() / expected < 0.25,
                "burst mean {empirical:.3} vs closed form {expected:.3} \
                 (p_bg={p_bg:.3}, p_gb={p_gb:.3})"
            );
        }
    }
}
