//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is pure configuration: which hostile regimes a run
//! injects and when. The simulation driver owns the runtime state (the
//! Gilbert–Elliott chain, active partitions, crash schedules) and seeds
//! it from its own RNG streams, so a faulted run is exactly as
//! reproducible as a clean one.
//!
//! The default [`FaultPlan::none`] mirrors the `NullSink` design of the
//! flight recorder: one `enabled()` check on the hot path, no
//! allocations, and a bit-identical event schedule to a build without
//! the fault layer at all.
//!
//! Five named presets cover the regimes the related work stresses:
//!
//! | preset        | injects                                              |
//! |---------------|------------------------------------------------------|
//! | `bursty`      | Gilbert–Elliott burst loss + frame duplication        |
//! | `partition`   | one long spatial bisection of the terrain             |
//! | `crash`       | node crashes (volatile state wiped) with recovery     |
//! | `crash-heavy` | short-MTBF staggered crash churn + frame duplication  |
//! | `hostile`     | all of the above at once                              |
//!
//! Fault windows are stored as absolute sim times; the preset
//! constructors place them at fixed fractions of the run so the same
//! preset scales from a 2-minute smoke to a 5-hour soak.

use mp2p_sim::{SimDuration, SimTime};

use crate::link::GeParams;

/// Which way a spatial bisection cuts the terrain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// The cut runs vertically: edges crossing the mid-`x` line drop.
    Vertical,
    /// The cut runs horizontally: edges crossing the mid-`y` line drop.
    Horizontal,
}

impl Axis {
    /// Stable numeric tag for trace events (0 = vertical, 1 = horizontal).
    pub fn tag(self) -> u8 {
        match self {
            Axis::Vertical => 0,
            Axis::Horizontal => 1,
        }
    }
}

/// One scheduled bisection partition: between `start` and `heal` no
/// radio edge crosses the terrain's mid-line on `axis`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionWindow {
    /// When the partition starts.
    pub start: SimTime,
    /// When it heals.
    pub heal: SimTime,
    /// Cut orientation.
    pub axis: Axis,
}

/// One scheduled node crash: at `at` the node's volatile state (cache
/// store, relay/pending protocol state, routing tables) is wiped and the
/// node goes dark; at `recover` it boots cold.
///
/// This is strictly harsher than the soft `I_Switch` churn, which
/// preserves all of that state across the off period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// Crash instant.
    pub at: SimTime,
    /// Cold-boot instant.
    pub recover: SimTime,
    /// Crashed node index; `None` lets the driver pick one
    /// deterministically from its fault RNG stream.
    pub node: Option<u32>,
}

/// A full fault schedule for one run. See the module docs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Preset name (or `"none"`/`"custom"`) — surfaced in reports.
    pub label: &'static str,
    /// Replaces the Bernoulli `LinkModel::loss_prob` with a
    /// Gilbert–Elliott burst channel when set.
    pub ge: Option<GeParams>,
    /// Per-transmission probability that the frame is duplicated (the
    /// copy arrives after an independent extra hop delay).
    pub duplicate_prob: f64,
    /// Scheduled bisection partitions.
    pub partitions: Vec<PartitionWindow>,
    /// Scheduled crashes.
    pub crashes: Vec<CrashWindow>,
}

impl FaultPlan {
    /// The names [`FaultPlan::preset`] accepts.
    pub const PRESETS: [&'static str; 5] =
        ["bursty", "partition", "crash", "crash-heavy", "hostile"];

    /// No faults: the hot path stays bit-identical to a build without
    /// the fault layer.
    pub fn none() -> Self {
        FaultPlan {
            label: "none",
            ..FaultPlan::default()
        }
    }

    /// True if this plan injects anything at all. The driver checks this
    /// once at construction; a disabled plan costs nothing per event.
    pub fn enabled(&self) -> bool {
        self.ge.is_some()
            || self.duplicate_prob > 0.0
            || !self.partitions.is_empty()
            || !self.crashes.is_empty()
    }

    /// The burst-loss parameters shared by `bursty` and `hostile`:
    /// near-clean good state, 60% loss in bad, mean burst 4 frames,
    /// stationary bad-state probability ≈ 7%.
    pub fn burst_params() -> GeParams {
        GeParams {
            p_good_to_bad: 0.02,
            p_bad_to_good: 0.25,
            loss_good: 0.01,
            loss_bad: 0.6,
        }
    }

    /// Burst loss plus light frame duplication, no structural faults.
    pub fn bursty(_sim_time: SimDuration) -> Self {
        FaultPlan {
            label: "bursty",
            ge: Some(Self::burst_params()),
            duplicate_prob: 0.05,
            ..FaultPlan::default()
        }
    }

    /// One vertical bisection across the middle 20% of the run
    /// (starts at 30%, heals at 50%).
    pub fn partition(sim_time: SimDuration) -> Self {
        FaultPlan {
            label: "partition",
            partitions: vec![PartitionWindow {
                start: at_fraction(sim_time, 0.30),
                heal: at_fraction(sim_time, 0.50),
                axis: Axis::Vertical,
            }],
            ..FaultPlan::default()
        }
    }

    /// Three staggered crashes (driver-picked victims), each down for
    /// 10% of the run.
    pub fn crash(sim_time: SimDuration) -> Self {
        let window = |f: f64| CrashWindow {
            at: at_fraction(sim_time, f),
            recover: at_fraction(sim_time, f + 0.10),
            node: None,
        };
        FaultPlan {
            label: "crash",
            crashes: vec![window(0.30), window(0.50), window(0.70)],
            ..FaultPlan::default()
        }
    }

    /// Crash churn: six staggered crashes marching across the middle of
    /// the run, each down for only 5% of it — a short mean time between
    /// failures that keeps rejoin resync and retransmit queues under
    /// constant pressure — plus light frame duplication to stress
    /// delivery dedup. Every victim recovers in-run.
    pub fn crash_heavy(sim_time: SimDuration) -> Self {
        let window = |f: f64| CrashWindow {
            at: at_fraction(sim_time, f),
            recover: at_fraction(sim_time, f + 0.05),
            node: None,
        };
        FaultPlan {
            label: "crash-heavy",
            duplicate_prob: 0.05,
            crashes: vec![
                window(0.15),
                window(0.25),
                window(0.35),
                window(0.45),
                window(0.55),
                window(0.65),
            ],
            ..FaultPlan::default()
        }
    }

    /// Everything at once: burst loss, duplication, a bisection and two
    /// crashes — the soak regime of the chaos harness.
    pub fn hostile(sim_time: SimDuration) -> Self {
        FaultPlan {
            label: "hostile",
            ge: Some(Self::burst_params()),
            duplicate_prob: 0.08,
            partitions: vec![PartitionWindow {
                start: at_fraction(sim_time, 0.35),
                heal: at_fraction(sim_time, 0.55),
                axis: Axis::Horizontal,
            }],
            crashes: vec![
                CrashWindow {
                    at: at_fraction(sim_time, 0.25),
                    recover: at_fraction(sim_time, 0.40),
                    node: None,
                },
                CrashWindow {
                    at: at_fraction(sim_time, 0.60),
                    recover: at_fraction(sim_time, 0.75),
                    node: None,
                },
            ],
        }
    }

    /// Looks a preset up by name, scaled to `sim_time`.
    pub fn preset(name: &str, sim_time: SimDuration) -> Option<Self> {
        match name {
            "none" => Some(FaultPlan::none()),
            "bursty" => Some(FaultPlan::bursty(sim_time)),
            "partition" => Some(FaultPlan::partition(sim_time)),
            "crash" => Some(FaultPlan::crash(sim_time)),
            "crash-heavy" => Some(FaultPlan::crash_heavy(sim_time)),
            "hostile" => Some(FaultPlan::hostile(sim_time)),
            _ => None,
        }
    }

    /// Validates the schedule against a run's shape.
    ///
    /// # Panics
    ///
    /// Panics on malformed probabilities, inverted windows, or a crash
    /// target outside `0..n_peers`.
    pub fn validate(&self, n_peers: usize) {
        if let Some(ge) = &self.ge {
            ge.validate();
        }
        assert!(
            (0.0..=1.0).contains(&self.duplicate_prob),
            "duplicate_prob must be in [0,1]"
        );
        for w in &self.partitions {
            assert!(w.start < w.heal, "partition must start before it heals");
        }
        for c in &self.crashes {
            assert!(c.at < c.recover, "crash must precede its recovery");
            if let Some(node) = c.node {
                assert!(
                    (node as usize) < n_peers,
                    "crash target {node} outside 0..{n_peers}"
                );
            }
        }
    }
}

/// The sim time at `fraction` of the run, at millisecond granularity.
fn at_fraction(sim_time: SimDuration, fraction: f64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs_f64(sim_time.as_secs_f64() * fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_disabled_and_free() {
        let plan = FaultPlan::none();
        assert!(!plan.enabled());
        assert_eq!(plan.label, "none");
        plan.validate(50);
    }

    #[test]
    fn every_preset_is_enabled_and_valid() {
        let sim = SimDuration::from_mins(30);
        for name in FaultPlan::PRESETS {
            let plan = FaultPlan::preset(name, sim).expect("known preset");
            assert!(plan.enabled(), "{name} must inject something");
            assert_eq!(plan.label, name);
            plan.validate(50);
        }
        assert!(FaultPlan::preset("no-such", sim).is_none());
    }

    #[test]
    fn presets_scale_with_sim_time() {
        let short = FaultPlan::partition(SimDuration::from_mins(2));
        let long = FaultPlan::partition(SimDuration::from_hours(5));
        assert!(short.partitions[0].heal < long.partitions[0].start);
        for plan in [short, long] {
            let w = plan.partitions[0];
            assert!(w.start < w.heal);
        }
    }

    #[test]
    #[should_panic(expected = "start before it heals")]
    fn validate_rejects_inverted_partition() {
        let mut plan = FaultPlan::partition(SimDuration::from_mins(10));
        let w = &mut plan.partitions[0];
        std::mem::swap(&mut w.start, &mut w.heal);
        plan.validate(10);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn validate_rejects_out_of_range_crash_target() {
        let mut plan = FaultPlan::crash(SimDuration::from_mins(10));
        plan.crashes[0].node = Some(99);
        plan.validate(10);
    }
}
