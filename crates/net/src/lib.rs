//! Wireless MANET substrate.
//!
//! This crate replaces the GloMoSim network stack the paper's evaluation
//! ran on. It models, bottom-up:
//!
//! * [`Topology`] — a unit-disc radio snapshot (`C_Range` = 250 m in
//!   Table 1): CSR adjacency, BFS shortest paths, `k`-hop neighbourhoods
//!   and connected components over the current node positions. Snapshots
//!   are built through a spatial hash in O(n·k) by [`TopologyBuilder`],
//!   and queries run allocation-free against a [`TopologyScratch`].
//! * [`LinkModel`] — per-hop MAC/PHY cost: transmission serialisation at a
//!   configured bandwidth, propagation/processing latency, uniform
//!   contention jitter, and optional Bernoulli frame loss.
//! * [`Frame`]/[`NetStack`] — the per-node network layer: duplicate-
//!   suppressed TTL-scoped flooding (the transport of the paper's
//!   `INVALIDATION` and `POLL` broadcasts) and on-demand unicast routing in
//!   the style of AODV/DSR (`RREQ` flood / `RREP` unwind / `RERR` on link
//!   break), carrying the protocol's point-to-point messages
//!   (`UPDATE`, `APPLY`, `GET_NEW`, …).
//!
//! The stack is *sans-io*: [`NetStack`] is a pure state machine that turns
//! inputs (app sends, received frames, timers) into [`NetAction`]s. The
//! simulation driver owns time, delivers frames after [`LinkModel`] delays,
//! and feeds back MAC-level delivery failures — which is how the paper's
//! "this kind of disconnection can be discovered in the MAC layer"
//! (Section 4.5) is realised.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod faults;
mod frame;
mod link;
mod stack;
mod topology;

pub use faults::{Axis, CrashWindow, FaultPlan, PartitionWindow};
pub use frame::{FloodId, Frame, NetMeta, NetPayload, RouteControl};
pub use link::{GeParams, GilbertElliott, LinkModel};
pub use stack::{NetAction, NetConfig, NetEvent, NetStack, NetTimer};
pub use topology::{Topology, TopologyBuilder, TopologyScratch};
