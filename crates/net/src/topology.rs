//! Unit-disc radio topology snapshots.

use std::collections::VecDeque;

use mp2p_mobility::Point;
use mp2p_sim::NodeId;

/// A snapshot of the radio graph: two *connected* nodes are neighbours iff
/// they are within communication range (`C_Range`, 250 m in Table 1).
///
/// Disconnected nodes (the paper's switched-off peers, Section 4.5) keep a
/// position but have no edges.
///
/// The snapshot pre-computes adjacency in O(n²) — the paper's scenarios
/// have 50 peers, so a snapshot costs ~2.5k distance checks — and answers
/// path queries with BFS on demand.
///
/// # Example
///
/// ```
/// use mp2p_mobility::Point;
/// use mp2p_net::Topology;
/// use mp2p_sim::NodeId;
///
/// let positions = vec![Point::new(0.0, 0.0), Point::new(200.0, 0.0), Point::new(400.0, 0.0)];
/// let topo = Topology::new(&positions, &[true, true, true], 250.0);
/// let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
/// assert!(topo.are_neighbors(a, b));
/// assert!(!topo.are_neighbors(a, c));
/// assert_eq!(topo.hops(a, c), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    neighbors: Vec<Vec<NodeId>>,
    connected: Vec<bool>,
    range: f64,
}

impl Topology {
    /// Builds a snapshot from per-node positions and up/down flags.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length or `range` is not finite
    /// and positive.
    pub fn new(positions: &[Point], connected: &[bool], range: f64) -> Self {
        Topology::with_link_filter(positions, connected, range, |_, _| true)
    }

    /// Builds a snapshot like [`Topology::new`] but suppresses any edge
    /// for which `keep(i, j)` (with `i < j`, both indices up and within
    /// range) returns false. This is the fault-injection hook: a
    /// scheduled partition keeps only edges whose endpoints lie on the
    /// same side of a cut, without touching the nodes themselves.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length or `range` is not finite
    /// and positive.
    pub fn with_link_filter(
        positions: &[Point],
        connected: &[bool],
        range: f64,
        keep: impl Fn(usize, usize) -> bool,
    ) -> Self {
        assert_eq!(
            positions.len(),
            connected.len(),
            "positions/connected length mismatch"
        );
        assert!(
            range.is_finite() && range > 0.0,
            "radio range must be positive"
        );
        let n = positions.len();
        let mut neighbors = vec![Vec::new(); n];
        for i in 0..n {
            if !connected[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !connected[j] {
                    continue;
                }
                if positions[i].distance(positions[j]) <= range && keep(i, j) {
                    neighbors[i].push(NodeId::new(j as u32));
                    neighbors[j].push(NodeId::new(i as u32));
                }
            }
        }
        Topology {
            neighbors,
            connected: connected.to_vec(),
            range,
        }
    }

    /// Number of nodes in the snapshot.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// True if the snapshot holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// The radio range the snapshot was built with, in metres.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// True if `node` is switched on.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.connected[node.index()]
    }

    /// The current one-hop neighbours of `node` (empty if down).
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.neighbors[node.index()]
    }

    /// True if `a` and `b` are both up and within range.
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors[a.index()].contains(&b)
    }

    /// Minimum hop count from `from` to `to`, if a multi-hop path exists.
    pub fn hops(&self, from: NodeId, to: NodeId) -> Option<u32> {
        self.bfs(from, Some(to)).1
    }

    /// A minimum-hop path from `from` to `to`, inclusive of both endpoints.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(vec![from]);
        }
        if !self.is_up(from) || !self.is_up(to) {
            return None;
        }
        let (parents, found) = self.bfs(from, Some(to));
        found?;
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = parents[cur.index()].expect("parent chain reaches the BFS root");
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// All nodes strictly within `ttl` hops of `from` (excluding `from`),
    /// i.e. the set a TTL-`ttl` flood can reach.
    pub fn within_hops(&self, from: NodeId, ttl: u32) -> Vec<NodeId> {
        if ttl == 0 || !self.is_up(from) {
            return Vec::new();
        }
        let mut dist = vec![u32::MAX; self.len()];
        dist[from.index()] = 0;
        let mut queue = VecDeque::from([from]);
        let mut reached = Vec::new();
        while let Some(u) = queue.pop_front() {
            if dist[u.index()] == ttl {
                continue;
            }
            for &v in &self.neighbors[u.index()] {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    reached.push(v);
                    queue.push_back(v);
                }
            }
        }
        reached
    }

    /// Connected components among up nodes, each sorted by id; singleton
    /// components for isolated up nodes are included, down nodes are not.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let mut seen = vec![false; self.len()];
        let mut out = Vec::new();
        for start in 0..self.len() {
            if seen[start] || !self.connected[start] {
                continue;
            }
            let mut comp = vec![NodeId::new(start as u32)];
            seen[start] = true;
            let mut queue = VecDeque::from([NodeId::new(start as u32)]);
            while let Some(u) = queue.pop_front() {
                for &v in &self.neighbors[u.index()] {
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        comp.push(v);
                        queue.push_back(v);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// BFS from `root`; returns the parent array and, if `target` is given
    /// and reachable, its distance.
    fn bfs(&self, root: NodeId, target: Option<NodeId>) -> (Vec<Option<NodeId>>, Option<u32>) {
        let mut parents: Vec<Option<NodeId>> = vec![None; self.len()];
        if !self.is_up(root) {
            return (parents, None);
        }
        if target == Some(root) {
            return (parents, Some(0));
        }
        let mut dist = vec![u32::MAX; self.len()];
        dist[root.index()] = 0;
        let mut queue = VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            for &v in &self.neighbors[u.index()] {
                if dist[v.index()] == u32::MAX {
                    dist[v.index()] = dist[u.index()] + 1;
                    parents[v.index()] = Some(u);
                    if target == Some(v) {
                        return (parents, Some(dist[v.index()]));
                    }
                    queue.push_back(v);
                }
            }
        }
        (parents, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A line of nodes spaced 200 m apart with 250 m range: a path graph.
    fn line(n: usize) -> Topology {
        let positions: Vec<Point> = (0..n).map(|i| Point::new(i as f64 * 200.0, 0.0)).collect();
        Topology::new(&positions, &vec![true; n], 250.0)
    }

    #[test]
    fn adjacency_is_symmetric_on_line() {
        let t = line(5);
        for i in 0..5u32 {
            for j in 0..5u32 {
                let (a, b) = (NodeId::new(i), NodeId::new(j));
                assert_eq!(t.are_neighbors(a, b), t.are_neighbors(b, a));
                assert_eq!(t.are_neighbors(a, b), i.abs_diff(j) == 1);
            }
        }
    }

    #[test]
    fn hops_along_line() {
        let t = line(6);
        assert_eq!(t.hops(NodeId::new(0), NodeId::new(5)), Some(5));
        assert_eq!(t.hops(NodeId::new(2), NodeId::new(2)), Some(0));
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let t = line(4);
        let path = t.shortest_path(NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(path.first(), Some(&NodeId::new(0)));
        assert_eq!(path.last(), Some(&NodeId::new(3)));
        for pair in path.windows(2) {
            assert!(t.are_neighbors(pair[0], pair[1]));
        }
        assert_eq!(path.len(), 4);
    }

    #[test]
    fn down_node_partitions_the_line() {
        let positions: Vec<Point> = (0..5).map(|i| Point::new(i as f64 * 200.0, 0.0)).collect();
        let mut up = vec![true; 5];
        up[2] = false;
        let t = Topology::new(&positions, &up, 250.0);
        assert_eq!(t.hops(NodeId::new(0), NodeId::new(4)), None);
        assert!(t.neighbors(NodeId::new(2)).is_empty());
        assert_eq!(t.components().len(), 2);
    }

    #[test]
    fn within_hops_matches_ttl_scope() {
        let t = line(8);
        let reach = t.within_hops(NodeId::new(0), 3);
        let mut ids: Vec<u32> = reach.iter().map(|n| n.index() as u32).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
        assert!(t.within_hops(NodeId::new(0), 0).is_empty());
    }

    #[test]
    fn link_filter_cuts_edges_without_touching_nodes() {
        let positions: Vec<Point> = (0..6).map(|i| Point::new(i as f64 * 200.0, 0.0)).collect();
        // Cut the line between indices 2 and 3 (a bisection at x = 500).
        let t = Topology::with_link_filter(&positions, &[true; 6], 250.0, |i, j| {
            (positions[i].x < 500.0) == (positions[j].x < 500.0)
        });
        assert!(t.is_up(NodeId::new(2)) && t.is_up(NodeId::new(3)));
        assert!(!t.are_neighbors(NodeId::new(2), NodeId::new(3)));
        assert_eq!(t.hops(NodeId::new(0), NodeId::new(5)), None);
        assert_eq!(t.components().len(), 2);
        // The permissive filter reproduces `new` exactly.
        let unfiltered = Topology::new(&positions, &[true; 6], 250.0);
        for i in 0..6u32 {
            for j in 0..6u32 {
                let (a, b) = (NodeId::new(i), NodeId::new(j));
                if i.abs_diff(j) == 1 && (i.min(j) != 2) {
                    assert!(t.are_neighbors(a, b));
                }
                assert_eq!(
                    unfiltered.are_neighbors(a, b),
                    i.abs_diff(j) == 1,
                    "new() adjacency unchanged"
                );
            }
        }
    }

    #[test]
    fn components_cover_all_up_nodes_once() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(1_000.0, 0.0),
            Point::new(1_100.0, 0.0),
            Point::new(5_000.0, 5_000.0),
        ];
        let t = Topology::new(&positions, &[true; 5], 250.0);
        let comps = t.components();
        assert_eq!(comps.len(), 3);
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
    }

    proptest! {
        /// Symmetry and irreflexivity of the neighbour relation on random
        /// geometric graphs.
        #[test]
        fn prop_neighbor_relation(seed in any::<u64>(), n in 2usize..40) {
            let mut rng = mp2p_sim::SimRng::from_seed(seed, 0);
            let terrain = mp2p_mobility::Terrain::paper_default();
            let positions: Vec<Point> = (0..n).map(|_| terrain.random_point(&mut rng)).collect();
            let t = Topology::new(&positions, &vec![true; n], 250.0);
            for i in 0..n {
                let a = NodeId::new(i as u32);
                prop_assert!(!t.are_neighbors(a, a));
                for &b in t.neighbors(a) {
                    prop_assert!(t.are_neighbors(b, a));
                    prop_assert!(positions[a.index()].distance(positions[b.index()]) <= 250.0);
                }
            }
        }

        /// BFS path length equals the reported hop count and the path is
        /// valid edge-by-edge.
        #[test]
        fn prop_path_matches_hops(seed in any::<u64>(), n in 2usize..30) {
            let mut rng = mp2p_sim::SimRng::from_seed(seed, 1);
            let terrain = mp2p_mobility::Terrain::new(800.0, 800.0);
            let positions: Vec<Point> = (0..n).map(|_| terrain.random_point(&mut rng)).collect();
            let t = Topology::new(&positions, &vec![true; n], 250.0);
            let (a, b) = (NodeId::new(0), NodeId::new(n as u32 - 1));
            match (t.hops(a, b), t.shortest_path(a, b)) {
                (Some(h), Some(path)) => {
                    prop_assert_eq!(path.len() as u32, h + 1);
                    for pair in path.windows(2) {
                        prop_assert!(t.are_neighbors(pair[0], pair[1]));
                    }
                }
                (None, None) => {}
                (hops, path) => prop_assert!(false, "hops {hops:?} vs path {path:?} disagree"),
            }
        }

        /// within_hops(ttl) is exactly the set at BFS distance 1..=ttl.
        #[test]
        fn prop_within_hops_consistent(seed in any::<u64>(), n in 2usize..25, ttl in 1u32..6) {
            let mut rng = mp2p_sim::SimRng::from_seed(seed, 2);
            let terrain = mp2p_mobility::Terrain::new(1_000.0, 1_000.0);
            let positions: Vec<Point> = (0..n).map(|_| terrain.random_point(&mut rng)).collect();
            let t = Topology::new(&positions, &vec![true; n], 250.0);
            let root = NodeId::new(0);
            let mut reach: Vec<NodeId> = t.within_hops(root, ttl);
            reach.sort_unstable();
            let mut expected: Vec<NodeId> = (1..n)
                .map(|i| NodeId::new(i as u32))
                .filter(|&v| matches!(t.hops(root, v), Some(h) if h <= ttl))
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(reach, expected);
        }
    }
}
