//! Unit-disc radio topology snapshots.
//!
//! Built for two regimes at once: the paper's 50-peer scenarios, where
//! the snapshot must be *byte-identical* to the original O(n²) pairwise
//! build so seeded runs reproduce exactly, and 1 000+-peer scale-ups,
//! where construction is a spatial hash (O(n·k) for average degree `k`)
//! and queries run allocation-free against a caller-owned
//! [`TopologyScratch`].

use std::collections::VecDeque;

use mp2p_mobility::{CellGrid, Point};
use mp2p_sim::NodeId;

/// A snapshot of the radio graph: two *connected* nodes are neighbours iff
/// they are within communication range (`C_Range`, 250 m in Table 1).
///
/// Disconnected nodes (the paper's switched-off peers, Section 4.5) keep a
/// position but have no edges.
///
/// # Layout and construction
///
/// Adjacency is stored in CSR form — one flat [`NodeId`] array plus an
/// offset per node — with every per-node slice sorted ascending by id.
/// That gives [`Topology::neighbors`] zero-indirection slice access,
/// [`Topology::are_neighbors`] an O(log k) binary search, and the whole
/// snapshot two allocations (both recycled across rebuilds by
/// [`TopologyBuilder`]).
///
/// Construction bins nodes into a [`CellGrid`] with cell side equal to
/// the radio range, so each node only checks candidates in its 3 × 3
/// cell block. The sorted emission order is *exactly* what the reference
/// O(n²) ascending-pair scan ([`Topology::with_link_filter_naive`])
/// produces, so swapping builds never changes event order, RNG draws, or
/// any downstream result — the determinism guarantee the golden-fixture
/// tests pin down.
///
/// # Example
///
/// ```
/// use mp2p_mobility::Point;
/// use mp2p_net::Topology;
/// use mp2p_sim::NodeId;
///
/// let positions = vec![Point::new(0.0, 0.0), Point::new(200.0, 0.0), Point::new(400.0, 0.0)];
/// let topo = Topology::new(&positions, &[true, true, true], 250.0);
/// let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
/// assert!(topo.are_neighbors(a, b));
/// assert!(!topo.are_neighbors(a, c));
/// assert_eq!(topo.hops(a, c), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct Topology {
    /// CSR offsets: node `i`'s neighbours are
    /// `adjacency[offsets[i]..offsets[i + 1]]`. Always `n + 1` entries.
    offsets: Vec<u32>,
    /// Flat neighbour array; each node's slice is sorted ascending.
    adjacency: Vec<NodeId>,
    connected: Vec<bool>,
    range: f64,
}

impl Topology {
    /// Builds a snapshot from per-node positions and up/down flags.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length or `range` is not finite
    /// and positive.
    pub fn new(positions: &[Point], connected: &[bool], range: f64) -> Self {
        Topology::with_link_filter(positions, connected, range, |_, _| true)
    }

    /// Builds a snapshot like [`Topology::new`] but suppresses any edge
    /// for which `keep(i, j)` (with `i < j`, both indices up and within
    /// range) returns false. This is the fault-injection hook: a
    /// scheduled partition keeps only edges whose endpoints lie on the
    /// same side of a cut, without touching the nodes themselves.
    ///
    /// `keep` must be a pure function of `(i, j)`: the spatial-hash build
    /// may evaluate it from both endpoints of a pair (at most twice),
    /// unlike the reference build's exactly-once.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length or `range` is not finite
    /// and positive.
    pub fn with_link_filter(
        positions: &[Point],
        connected: &[bool],
        range: f64,
        keep: impl Fn(usize, usize) -> bool,
    ) -> Self {
        TopologyBuilder::new().rebuild(None, positions, connected, range, keep)
    }

    /// The reference O(n²) build: the original ascending-(i, j) pairwise
    /// scan. Retained as the behavioural oracle — equivalence proptests
    /// and the old-vs-new benches compare the spatial-hash build against
    /// it — not for production use.
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length or `range` is not finite
    /// and positive.
    pub fn with_link_filter_naive(
        positions: &[Point],
        connected: &[bool],
        range: f64,
        keep: impl Fn(usize, usize) -> bool,
    ) -> Self {
        assert_eq!(
            positions.len(),
            connected.len(),
            "positions/connected length mismatch"
        );
        assert!(
            range.is_finite() && range > 0.0,
            "radio range must be positive"
        );
        let n = positions.len();
        let mut neighbors = vec![Vec::new(); n];
        for i in 0..n {
            if !connected[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !connected[j] {
                    continue;
                }
                if positions[i].distance(positions[j]) <= range && keep(i, j) {
                    neighbors[i].push(NodeId::new(j as u32));
                    neighbors[j].push(NodeId::new(i as u32));
                }
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adjacency = Vec::new();
        for row in &neighbors {
            offsets.push(adjacency.len() as u32);
            adjacency.extend_from_slice(row);
        }
        offsets.push(adjacency.len() as u32);
        Topology {
            offsets,
            adjacency,
            connected: connected.to_vec(),
            range,
        }
    }

    /// Number of nodes in the snapshot.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the snapshot holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The radio range the snapshot was built with, in metres.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Total directed edge count (each radio link counts twice).
    pub fn edge_count(&self) -> usize {
        self.adjacency.len()
    }

    /// True if `node` is switched on.
    pub fn is_up(&self, node: NodeId) -> bool {
        self.connected[node.index()]
    }

    /// The current one-hop neighbours of `node`, ascending by id (empty
    /// if down).
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        &self.adjacency[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// True if `a` and `b` are both up and within range. O(log k) binary
    /// search over `a`'s sorted neighbour slice.
    pub fn are_neighbors(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Minimum hop count from `from` to `to`, if a multi-hop path exists.
    ///
    /// Convenience wrapper allocating a throwaway [`TopologyScratch`];
    /// steady-state callers should hold one and use
    /// [`Topology::hops_with`].
    pub fn hops(&self, from: NodeId, to: NodeId) -> Option<u32> {
        self.hops_with(&mut TopologyScratch::new(), from, to)
    }

    /// [`Topology::hops`] against a reusable scratch: allocation-free
    /// once the scratch has grown to this snapshot's node count.
    pub fn hops_with(
        &self,
        scratch: &mut TopologyScratch,
        from: NodeId,
        to: NodeId,
    ) -> Option<u32> {
        self.bfs_with(scratch, from, Some(to))
    }

    /// A minimum-hop path from `from` to `to`, inclusive of both
    /// endpoints. Convenience wrapper over
    /// [`Topology::shortest_path_with`].
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        let mut out = Vec::new();
        self.shortest_path_with(&mut TopologyScratch::new(), from, to, &mut out)
            .then_some(out)
    }

    /// Writes a minimum-hop path from `from` to `to` (inclusive of both
    /// endpoints) into `out`, clearing it first. Returns false — with
    /// `out` left empty — when no path exists. Allocation-free once
    /// `scratch` and `out` are warm.
    pub fn shortest_path_with(
        &self,
        scratch: &mut TopologyScratch,
        from: NodeId,
        to: NodeId,
        out: &mut Vec<NodeId>,
    ) -> bool {
        out.clear();
        if from == to {
            out.push(from);
            return true;
        }
        if !self.is_up(from) || !self.is_up(to) {
            return false;
        }
        if self.bfs_with(scratch, from, Some(to)).is_none() {
            return false;
        }
        out.push(to);
        let mut cur = to;
        while cur != from {
            // Every stamped node except the root has its parent recorded.
            cur = NodeId::new(scratch.parent[cur.index()]);
            out.push(cur);
        }
        out.reverse();
        true
    }

    /// All nodes strictly within `ttl` hops of `from` (excluding `from`),
    /// i.e. the set a TTL-`ttl` flood can reach. Convenience wrapper over
    /// [`Topology::within_hops_with`].
    pub fn within_hops(&self, from: NodeId, ttl: u32) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.within_hops_with(&mut TopologyScratch::new(), from, ttl, &mut out);
        out
    }

    /// Writes the TTL-`ttl` flood scope of `from` into `out` (clearing it
    /// first), in BFS discovery order. Allocation-free once `scratch` and
    /// `out` are warm.
    pub fn within_hops_with(
        &self,
        scratch: &mut TopologyScratch,
        from: NodeId,
        ttl: u32,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        if ttl == 0 || !self.is_up(from) {
            return;
        }
        scratch.begin(self.len());
        scratch.visit_root(from);
        while let Some(u) = scratch.queue.pop_front() {
            let du = scratch.dist[u.index()];
            if du == ttl {
                continue;
            }
            for &v in self.neighbors(u) {
                if scratch.stamp[v.index()] != scratch.epoch {
                    scratch.stamp[v.index()] = scratch.epoch;
                    scratch.dist[v.index()] = du + 1;
                    out.push(v);
                    scratch.queue.push_back(v);
                }
            }
        }
    }

    /// Connected components among up nodes, each sorted by id; singleton
    /// components for isolated up nodes are included, down nodes are not.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        self.components_with(&mut TopologyScratch::new())
    }

    /// [`Topology::components`] against a reusable scratch. The returned
    /// nested vectors are themselves fresh allocations — components is a
    /// diagnostic query, not a hot-path one — but the BFS bookkeeping
    /// reuses `scratch`.
    pub fn components_with(&self, scratch: &mut TopologyScratch) -> Vec<Vec<NodeId>> {
        scratch.begin(self.len());
        let mut out = Vec::new();
        for start in 0..self.len() {
            if scratch.stamp[start] == scratch.epoch || !self.connected[start] {
                continue;
            }
            let root = NodeId::new(start as u32);
            let mut comp = vec![root];
            scratch.stamp[start] = scratch.epoch;
            scratch.queue.push_back(root);
            while let Some(u) = scratch.queue.pop_front() {
                for &v in self.neighbors(u) {
                    if scratch.stamp[v.index()] != scratch.epoch {
                        scratch.stamp[v.index()] = scratch.epoch;
                        comp.push(v);
                        scratch.queue.push_back(v);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }

    /// BFS from `root` recording distances and parents in `scratch`;
    /// returns the target's distance if `target` is given and reachable.
    fn bfs_with(
        &self,
        scratch: &mut TopologyScratch,
        root: NodeId,
        target: Option<NodeId>,
    ) -> Option<u32> {
        if !self.is_up(root) {
            return None;
        }
        if target == Some(root) {
            return Some(0);
        }
        scratch.begin(self.len());
        scratch.visit_root(root);
        while let Some(u) = scratch.queue.pop_front() {
            let du = scratch.dist[u.index()];
            for &v in self.neighbors(u) {
                if scratch.stamp[v.index()] != scratch.epoch {
                    scratch.stamp[v.index()] = scratch.epoch;
                    scratch.dist[v.index()] = du + 1;
                    scratch.parent[v.index()] = u.index() as u32;
                    if target == Some(v) {
                        return Some(du + 1);
                    }
                    scratch.queue.push_back(v);
                }
            }
        }
        None
    }
}

/// Reusable BFS bookkeeping for [`Topology`] queries: epoch-stamped
/// visited marks, distances, parent links and the traversal queue.
///
/// A scratch grows to the largest node count it has served and is then
/// allocation-free: "visited" is reset by bumping a generation counter
/// (`epoch`), not by clearing arrays, so starting a query costs O(1).
/// One scratch serves any number of topologies and queries, strictly one
/// query at a time.
#[derive(Debug, Default, Clone)]
pub struct TopologyScratch {
    /// Current query generation; `stamp[i] == epoch` means node `i` was
    /// visited by the query in progress.
    epoch: u32,
    stamp: Vec<u32>,
    dist: Vec<u32>,
    /// Parent node index, valid only for stamped non-root nodes.
    parent: Vec<u32>,
    queue: VecDeque<NodeId>,
}

impl TopologyScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        TopologyScratch::default()
    }

    /// Starts a new query over `n` nodes: grows buffers if needed and
    /// advances the epoch. On the (once per 2³²-query) epoch wrap the
    /// stamps are hard-cleared so stale marks can never alias.
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, 0);
            self.parent.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    /// Marks `root` visited at distance 0 and enqueues it.
    fn visit_root(&mut self, root: NodeId) {
        self.stamp[root.index()] = self.epoch;
        self.dist[root.index()] = 0;
        self.queue.push_back(root);
    }
}

/// Builds [`Topology`] snapshots with reusable scratch: the spatial-hash
/// bins, the per-node sort buffer, and — via
/// [`TopologyBuilder::rebuild`]'s `recycle` parameter — the CSR arrays of
/// a retired snapshot. A steady-state rebuild (same node count, similar
/// degree) performs no heap allocation.
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    /// Linear cell index per node (valid only for connected nodes).
    cell_idx: Vec<u32>,
    /// Cursor/boundary array over cells; after the fill phase, cell `c`
    /// holds nodes `order[start(c)..cell_start[c]]` where `start(c)` is
    /// `0` for the first cell and `cell_start[c - 1]` otherwise.
    cell_start: Vec<u32>,
    /// Connected node indices grouped by cell, ascending within a cell.
    order: Vec<u32>,
    /// One node's candidate neighbours, sorted before CSR emission.
    row: Vec<NodeId>,
}

impl TopologyBuilder {
    /// An empty builder; scratch grows on first build.
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Builds a snapshot; equivalent to [`Topology::with_link_filter`]
    /// but reusing this builder's scratch.
    pub fn build(
        &mut self,
        positions: &[Point],
        connected: &[bool],
        range: f64,
        keep: impl Fn(usize, usize) -> bool,
    ) -> Topology {
        self.rebuild(None, positions, connected, range, keep)
    }

    /// Builds a snapshot, cannibalising `recycle`'s CSR buffers when
    /// given so steady-state refreshes allocate nothing. The produced
    /// snapshot is identical to [`Topology::with_link_filter`]'s for the
    /// same inputs (see that method for the `keep` purity contract).
    ///
    /// # Panics
    ///
    /// Panics if the two slices differ in length or `range` is not finite
    /// and positive.
    pub fn rebuild(
        &mut self,
        recycle: Option<Topology>,
        positions: &[Point],
        connected: &[bool],
        range: f64,
        keep: impl Fn(usize, usize) -> bool,
    ) -> Topology {
        assert_eq!(
            positions.len(),
            connected.len(),
            "positions/connected length mismatch"
        );
        assert!(
            range.is_finite() && range > 0.0,
            "radio range must be positive"
        );
        let n = positions.len();
        let (mut offsets, mut adjacency, mut conn) = match recycle {
            Some(t) => {
                let Topology {
                    mut offsets,
                    mut adjacency,
                    mut connected,
                    ..
                } = t;
                offsets.clear();
                adjacency.clear();
                connected.clear();
                (offsets, adjacency, connected)
            }
            None => (Vec::with_capacity(n + 1), Vec::new(), Vec::new()),
        };
        conn.extend_from_slice(connected);

        // Bin connected nodes into range-sized cells by counting sort,
        // in ascending id order so each cell's list is already sorted.
        let grid = CellGrid::from_points(positions, range);
        let cells = grid.cell_count();
        assert!(
            u32::try_from(cells).is_ok(),
            "cell grid too fine: {cells} cells"
        );
        self.cell_idx.clear();
        self.cell_idx.resize(n, 0);
        self.cell_start.clear();
        self.cell_start.resize(cells + 1, 0);
        for i in 0..n {
            if !connected[i] {
                continue;
            }
            let c = grid.cell_index(positions[i]);
            self.cell_idx[i] = c as u32;
            self.cell_start[c + 1] += 1;
        }
        for c in 0..cells {
            self.cell_start[c + 1] += self.cell_start[c];
        }
        let total_up = self.cell_start[cells] as usize;
        self.order.clear();
        self.order.resize(total_up, 0);
        for (i, &up) in connected.iter().enumerate() {
            if !up {
                continue;
            }
            let c = self.cell_idx[i] as usize;
            self.order[self.cell_start[c] as usize] = i as u32;
            self.cell_start[c] += 1;
        }
        // After the fill, cell_start[c] is the *end* of cell c (and the
        // start of cell c + 1), which is exactly what cell_nodes reads.

        for i in 0..n {
            offsets.push(adjacency.len() as u32);
            if !connected[i] {
                continue;
            }
            let p = positions[i];
            let (cx, cy) = grid.cell_coords(p);
            self.row.clear();
            for cell_y in cy.saturating_sub(1)..=(cy + 1).min(grid.rows() - 1) {
                for cell_x in cx.saturating_sub(1)..=(cx + 1).min(grid.cols() - 1) {
                    let c = grid.index_of(cell_x, cell_y);
                    let lo = if c == 0 { 0 } else { self.cell_start[c - 1] } as usize;
                    let hi = self.cell_start[c] as usize;
                    for &j in &self.order[lo..hi] {
                        let j = j as usize;
                        if j == i {
                            continue;
                        }
                        // Evaluate distance and filter in the ascending
                        // orientation the reference build uses, so results
                        // (and float edge cases) match it bit-for-bit.
                        let (a, b) = if i < j { (i, j) } else { (j, i) };
                        if positions[a].distance(positions[b]) <= range && keep(a, b) {
                            self.row.push(NodeId::new(j as u32));
                        }
                    }
                }
            }
            // Cells were scanned row-major, so the candidates arrive
            // cell-sorted, not id-sorted; restore the reference build's
            // ascending order.
            self.row.sort_unstable();
            adjacency.extend_from_slice(&self.row);
        }
        offsets.push(adjacency.len() as u32);
        Topology {
            offsets,
            adjacency,
            connected: conn,
            range,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// A line of nodes spaced 200 m apart with 250 m range: a path graph.
    fn line(n: usize) -> Topology {
        let positions: Vec<Point> = (0..n).map(|i| Point::new(i as f64 * 200.0, 0.0)).collect();
        Topology::new(&positions, &vec![true; n], 250.0)
    }

    #[test]
    fn adjacency_is_symmetric_on_line() {
        let t = line(5);
        for i in 0..5u32 {
            for j in 0..5u32 {
                let (a, b) = (NodeId::new(i), NodeId::new(j));
                assert_eq!(t.are_neighbors(a, b), t.are_neighbors(b, a));
                assert_eq!(t.are_neighbors(a, b), i.abs_diff(j) == 1);
            }
        }
    }

    #[test]
    fn hops_along_line() {
        let t = line(6);
        assert_eq!(t.hops(NodeId::new(0), NodeId::new(5)), Some(5));
        assert_eq!(t.hops(NodeId::new(2), NodeId::new(2)), Some(0));
    }

    #[test]
    fn shortest_path_endpoints_and_adjacency() {
        let t = line(4);
        let path = t.shortest_path(NodeId::new(0), NodeId::new(3)).unwrap();
        assert_eq!(path.first(), Some(&NodeId::new(0)));
        assert_eq!(path.last(), Some(&NodeId::new(3)));
        for pair in path.windows(2) {
            assert!(t.are_neighbors(pair[0], pair[1]));
        }
        assert_eq!(path.len(), 4);
    }

    #[test]
    fn down_node_partitions_the_line() {
        let positions: Vec<Point> = (0..5).map(|i| Point::new(i as f64 * 200.0, 0.0)).collect();
        let mut up = vec![true; 5];
        up[2] = false;
        let t = Topology::new(&positions, &up, 250.0);
        assert_eq!(t.hops(NodeId::new(0), NodeId::new(4)), None);
        assert!(t.neighbors(NodeId::new(2)).is_empty());
        assert_eq!(t.components().len(), 2);
    }

    #[test]
    fn within_hops_matches_ttl_scope() {
        let t = line(8);
        let reach = t.within_hops(NodeId::new(0), 3);
        let mut ids: Vec<u32> = reach.iter().map(|n| n.index() as u32).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3]);
        assert!(t.within_hops(NodeId::new(0), 0).is_empty());
    }

    #[test]
    fn link_filter_cuts_edges_without_touching_nodes() {
        let positions: Vec<Point> = (0..6).map(|i| Point::new(i as f64 * 200.0, 0.0)).collect();
        // Cut the line between indices 2 and 3 (a bisection at x = 500).
        let t = Topology::with_link_filter(&positions, &[true; 6], 250.0, |i, j| {
            (positions[i].x < 500.0) == (positions[j].x < 500.0)
        });
        assert!(t.is_up(NodeId::new(2)) && t.is_up(NodeId::new(3)));
        assert!(!t.are_neighbors(NodeId::new(2), NodeId::new(3)));
        assert_eq!(t.hops(NodeId::new(0), NodeId::new(5)), None);
        assert_eq!(t.components().len(), 2);
        // The permissive filter reproduces `new` exactly.
        let unfiltered = Topology::new(&positions, &[true; 6], 250.0);
        for i in 0..6u32 {
            for j in 0..6u32 {
                let (a, b) = (NodeId::new(i), NodeId::new(j));
                if i.abs_diff(j) == 1 && (i.min(j) != 2) {
                    assert!(t.are_neighbors(a, b));
                }
                assert_eq!(
                    unfiltered.are_neighbors(a, b),
                    i.abs_diff(j) == 1,
                    "new() adjacency unchanged"
                );
            }
        }
    }

    #[test]
    fn components_cover_all_up_nodes_once() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(1_000.0, 0.0),
            Point::new(1_100.0, 0.0),
            Point::new(5_000.0, 5_000.0),
        ];
        let t = Topology::new(&positions, &[true; 5], 250.0);
        let comps = t.components();
        assert_eq!(comps.len(), 3);
        let total: usize = comps.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn neighbor_slices_are_sorted_ascending() {
        let mut rng = mp2p_sim::SimRng::from_seed(9, 0);
        let terrain = mp2p_mobility::Terrain::paper_default();
        let positions: Vec<Point> = (0..80).map(|_| terrain.random_point(&mut rng)).collect();
        let t = Topology::new(&positions, &[true; 80], 250.0);
        for i in 0..80u32 {
            let nb = t.neighbors(NodeId::new(i));
            assert!(
                nb.windows(2).all(|w| w[0] < w[1]),
                "node {i}: neighbour slice not strictly ascending: {nb:?}"
            );
        }
    }

    #[test]
    fn grid_build_matches_naive_reference() {
        let mut rng = mp2p_sim::SimRng::from_seed(11, 0);
        let terrain = mp2p_mobility::Terrain::paper_default();
        let positions: Vec<Point> = (0..100).map(|_| terrain.random_point(&mut rng)).collect();
        let mut up = vec![true; 100];
        up[3] = false;
        up[77] = false;
        let keep = |i: usize, j: usize| !(i + j).is_multiple_of(7);
        let grid = Topology::with_link_filter(&positions, &up, 250.0, keep);
        let naive = Topology::with_link_filter_naive(&positions, &up, 250.0, keep);
        assert_eq!(grid.edge_count(), naive.edge_count());
        for i in 0..100u32 {
            assert_eq!(
                grid.neighbors(NodeId::new(i)),
                naive.neighbors(NodeId::new(i)),
                "node {i}: grid and naive neighbour lists differ"
            );
        }
    }

    #[test]
    fn builder_recycles_without_changing_results() {
        let mut rng = mp2p_sim::SimRng::from_seed(12, 0);
        let terrain = mp2p_mobility::Terrain::paper_default();
        let mut builder = TopologyBuilder::new();
        let mut prev: Option<Topology> = None;
        for round in 0..5 {
            let positions: Vec<Point> = (0..60).map(|_| terrain.random_point(&mut rng)).collect();
            let up = vec![true; 60];
            let fresh = Topology::new(&positions, &up, 250.0);
            let rebuilt = builder.rebuild(prev.take(), &positions, &up, 250.0, |_, _| true);
            for i in 0..60u32 {
                assert_eq!(
                    fresh.neighbors(NodeId::new(i)),
                    rebuilt.neighbors(NodeId::new(i)),
                    "round {round}, node {i}"
                );
            }
            prev = Some(rebuilt);
        }
    }

    #[test]
    fn scratch_queries_match_allocating_queries() {
        let mut rng = mp2p_sim::SimRng::from_seed(13, 0);
        let terrain = mp2p_mobility::Terrain::new(1_000.0, 1_000.0);
        let positions: Vec<Point> = (0..40).map(|_| terrain.random_point(&mut rng)).collect();
        let t = Topology::new(&positions, &[true; 40], 250.0);
        let mut scratch = TopologyScratch::new();
        let mut buf = Vec::new();
        for a in 0..40u32 {
            let from = NodeId::new(a);
            for b in 0..40u32 {
                let to = NodeId::new(b);
                assert_eq!(t.hops_with(&mut scratch, from, to), t.hops(from, to));
                let found = t.shortest_path_with(&mut scratch, from, to, &mut buf);
                assert_eq!(
                    found.then(|| buf.clone()),
                    t.shortest_path(from, to),
                    "path {a}->{b}"
                );
            }
            for ttl in 0..4u32 {
                t.within_hops_with(&mut scratch, from, ttl, &mut buf);
                assert_eq!(buf, t.within_hops(from, ttl), "scope {a} ttl {ttl}");
            }
        }
        assert_eq!(t.components_with(&mut scratch), t.components());
    }

    #[test]
    fn empty_topology_is_well_formed() {
        let t = Topology::new(&[], &[], 250.0);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.edge_count(), 0);
        assert!(t.components().is_empty());
    }

    proptest! {
        /// Symmetry and irreflexivity of the neighbour relation on random
        /// geometric graphs.
        #[test]
        fn prop_neighbor_relation(seed in any::<u64>(), n in 2usize..40) {
            let mut rng = mp2p_sim::SimRng::from_seed(seed, 0);
            let terrain = mp2p_mobility::Terrain::paper_default();
            let positions: Vec<Point> = (0..n).map(|_| terrain.random_point(&mut rng)).collect();
            let t = Topology::new(&positions, &vec![true; n], 250.0);
            for i in 0..n {
                let a = NodeId::new(i as u32);
                prop_assert!(!t.are_neighbors(a, a));
                for &b in t.neighbors(a) {
                    prop_assert!(t.are_neighbors(b, a));
                    prop_assert!(positions[a.index()].distance(positions[b.index()]) <= 250.0);
                }
            }
        }

        /// BFS path length equals the reported hop count and the path is
        /// valid edge-by-edge.
        #[test]
        fn prop_path_matches_hops(seed in any::<u64>(), n in 2usize..30) {
            let mut rng = mp2p_sim::SimRng::from_seed(seed, 1);
            let terrain = mp2p_mobility::Terrain::new(800.0, 800.0);
            let positions: Vec<Point> = (0..n).map(|_| terrain.random_point(&mut rng)).collect();
            let t = Topology::new(&positions, &vec![true; n], 250.0);
            let (a, b) = (NodeId::new(0), NodeId::new(n as u32 - 1));
            match (t.hops(a, b), t.shortest_path(a, b)) {
                (Some(h), Some(path)) => {
                    prop_assert_eq!(path.len() as u32, h + 1);
                    for pair in path.windows(2) {
                        prop_assert!(t.are_neighbors(pair[0], pair[1]));
                    }
                }
                (None, None) => {}
                (hops, path) => prop_assert!(false, "hops {hops:?} vs path {path:?} disagree"),
            }
        }

        /// within_hops(ttl) is exactly the set at BFS distance 1..=ttl.
        #[test]
        fn prop_within_hops_consistent(seed in any::<u64>(), n in 2usize..25, ttl in 1u32..6) {
            let mut rng = mp2p_sim::SimRng::from_seed(seed, 2);
            let terrain = mp2p_mobility::Terrain::new(1_000.0, 1_000.0);
            let positions: Vec<Point> = (0..n).map(|_| terrain.random_point(&mut rng)).collect();
            let t = Topology::new(&positions, &vec![true; n], 250.0);
            let root = NodeId::new(0);
            let mut reach: Vec<NodeId> = t.within_hops(root, ttl);
            reach.sort_unstable();
            let mut expected: Vec<NodeId> = (1..n)
                .map(|i| NodeId::new(i as u32))
                .filter(|&v| matches!(t.hops(root, v), Some(h) if h <= ttl))
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(reach, expected);
        }
    }
}
