//! Wire-level frame types.

use mp2p_sim::NodeId;

/// Globally unique identifier of one flood: the originating node plus its
/// per-node flood sequence number. Used for duplicate suppression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloodId {
    /// The node that started the flood.
    pub origin: NodeId,
    /// The origin's flood sequence number.
    pub seq: u64,
}

/// Routing-control payloads (the AODV-style discovery machinery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteControl {
    /// Route request, flooded by a node that needs a route to `target`.
    Rreq {
        /// The requesting node.
        origin: NodeId,
        /// The node a route is wanted to.
        target: NodeId,
        /// Per-origin request id (dedup key together with `origin`).
        req_id: u64,
    },
    /// Route reply, unicast from the target back to the requester; the
    /// reverse path learns the forward route as the reply travels.
    Rrep {
        /// The node that requested the route.
        requester: NodeId,
    },
    /// Route error: the sender could not forward towards `broken_dest`.
    Rerr {
        /// Destination whose route broke.
        broken_dest: NodeId,
    },
}

/// What a frame carries: application payload or routing control.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetPayload<M> {
    /// An application-layer message (a consistency-protocol message).
    App(M),
    /// Routing control.
    Control(RouteControl),
}

/// A radio frame as transmitted on the channel.
///
/// The transmitting node is supplied out-of-band at reception
/// ([`crate::NetStack::on_frame`]'s `from` argument), mirroring how a MAC
/// layer knows the transmitter of every frame it hears.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame<M> {
    /// A TTL-scoped flood; every receiver processes and (if TTL remains)
    /// rebroadcasts once.
    Flood {
        /// Dedup identity.
        id: FloodId,
        /// Remaining hops this frame may still travel (≥ 1 on the air).
        ttl: u8,
        /// Hops travelled so far (0 on the origin's own transmission).
        hops: u8,
        /// Carried payload.
        payload: NetPayload<M>,
        /// Frame size in bytes (header + payload).
        size: u32,
    },
    /// A hop-by-hop routed point-to-point frame.
    Unicast {
        /// The node that created the frame.
        origin: NodeId,
        /// The origin's frame sequence number (provenance identity; drawn
        /// from the same per-node counter as flood sequence numbers and
        /// never serialised on the wire, so it adds no bytes to the
        /// size model).
        seq: u64,
        /// Final destination.
        dest: NodeId,
        /// Hops travelled so far.
        hops: u8,
        /// Carried payload.
        payload: NetPayload<M>,
        /// Frame size in bytes (header + payload).
        size: u32,
    },
}

impl<M> Frame<M> {
    /// Frame size in bytes.
    pub fn size(&self) -> u32 {
        match self {
            Frame::Flood { size, .. } | Frame::Unicast { size, .. } => *size,
        }
    }

    /// Hops this frame has travelled so far.
    pub fn hops(&self) -> u8 {
        match self {
            Frame::Flood { hops, .. } | Frame::Unicast { hops, .. } => *hops,
        }
    }

    /// Provenance identity `(origin, seq)`: the node that created the
    /// frame plus its origin-local monotonic sequence number. Floods and
    /// unicasts draw from the same per-origin counter, so the pair is
    /// unique across both frame shapes.
    pub fn provenance(&self) -> (NodeId, u64) {
        match self {
            Frame::Flood { id, .. } => (id.origin, id.seq),
            Frame::Unicast { origin, seq, .. } => (*origin, *seq),
        }
    }

    /// The application payload, if this is not a control frame.
    pub fn app_payload(&self) -> Option<&M> {
        match self {
            Frame::Flood {
                payload: NetPayload::App(m),
                ..
            }
            | Frame::Unicast {
                payload: NetPayload::App(m),
                ..
            } => Some(m),
            _ => None,
        }
    }

    /// True if this frame carries routing control rather than application
    /// payload.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Frame::Flood {
                payload: NetPayload::Control(_),
                ..
            } | Frame::Unicast {
                payload: NetPayload::Control(_),
                ..
            }
        )
    }
}

/// Reception metadata handed to the application with each delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetMeta {
    /// The node that created the message.
    pub origin: NodeId,
    /// Hops the message travelled to reach this node.
    pub hops: u8,
    /// True if the message arrived via a flood (vs. routed unicast).
    pub via_flood: bool,
    /// The carrying frame's origin-local sequence number, when the
    /// message actually crossed the channel (`None` for loopback
    /// self-delivery, which never becomes a frame).
    pub frame: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_accessors() {
        let f: Frame<u8> = Frame::Flood {
            id: FloodId {
                origin: NodeId::new(1),
                seq: 9,
            },
            ttl: 3,
            hops: 1,
            payload: NetPayload::App(7),
            size: 64,
        };
        assert_eq!(f.size(), 64);
        assert_eq!(f.hops(), 1);
        assert_eq!(f.app_payload(), Some(&7));
        assert!(!f.is_control());
        assert_eq!(f.provenance(), (NodeId::new(1), 9));

        let c: Frame<u8> = Frame::Unicast {
            origin: NodeId::new(0),
            seq: 4,
            dest: NodeId::new(2),
            hops: 0,
            payload: NetPayload::Control(RouteControl::Rerr {
                broken_dest: NodeId::new(2),
            }),
            size: 32,
        };
        assert!(c.is_control());
        assert_eq!(c.app_payload(), None);
        assert_eq!(c.provenance(), (NodeId::new(0), 4));
    }
}
