//! Regression tests for the link-failure and loop-guard machinery —
//! each of these scenarios produced a real bug during development:
//! unbounded forwarding loops from hop-count-learned routes, and
//! discovery storms from stale-route repair.

use mp2p_mobility::Point;
use mp2p_net::{Frame, NetAction, NetConfig, NetPayload, NetStack, NetTimer, Topology};
use mp2p_sim::{NodeId, SimTime};

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

/// A line topology 0—1—2—3 (200 m spacing, 250 m range).
fn line_topology(count: usize) -> Topology {
    let positions: Vec<Point> = (0..count)
        .map(|i| Point::new(i as f64 * 200.0, 0.0))
        .collect();
    Topology::new(&positions, &vec![true; count], 250.0)
}

#[test]
fn split_horizon_refuses_to_bounce_a_frame_back() {
    // Node 1 receives a data frame from node 0 addressed to node 3, but
    // its (poisoned) route to 3 points back at 0. It must not forward —
    // that is the two-node loop — and must instead send an RERR.
    let mut stack: NetStack<u8> = NetStack::new(n(1), NetConfig::default());
    let t0 = SimTime::ZERO;
    // Teach node 1 a route to 3 via 0 by receiving a frame whose origin
    // is 3 from transmitter 0.
    let teach = Frame::Unicast {
        origin: n(3),
        seq: 0,
        dest: n(1),
        hops: 2,
        payload: NetPayload::App(0u8),
        size: 32,
    };
    let _ = stack.on_frame(t0, n(0), teach);
    // Now 0 hands us a frame for 3: the only route points straight back.
    let data = Frame::Unicast {
        origin: n(0),
        seq: 0,
        dest: n(3),
        hops: 1,
        payload: NetPayload::App(7u8),
        size: 64,
    };
    let actions = stack.on_frame(t0, n(0), data);
    for action in &actions {
        if let NetAction::Send { next_hop, frame } = action {
            assert!(
                frame.is_control(),
                "split horizon must block the data forward to {next_hop}"
            );
        }
    }
}

#[test]
fn hop_budget_kills_runaway_frames() {
    // A frame that claims to have travelled max_unicast_hops already must
    // be dropped (with at most an RERR), not forwarded.
    let cfg = NetConfig::default();
    let mut stack: NetStack<u8> = NetStack::new(n(1), cfg);
    // Teach a forward route to 3 via 2.
    let teach = Frame::Unicast {
        origin: n(3),
        seq: 0,
        dest: n(0),
        hops: 1,
        payload: NetPayload::App(0u8),
        size: 32,
    };
    let _ = stack.on_frame(SimTime::ZERO, n(2), teach);
    let tired = Frame::Unicast {
        origin: n(0),
        seq: 1,
        dest: n(3),
        hops: cfg.max_unicast_hops,
        payload: NetPayload::App(9u8),
        size: 64,
    };
    let actions = stack.on_frame(SimTime::ZERO, n(0), tired);
    for action in &actions {
        if let NetAction::Send { frame, .. } = action {
            assert!(
                frame.is_control(),
                "exhausted frames must not be forwarded as data"
            );
        }
        assert!(
            !matches!(action, NetAction::Broadcast(_)),
            "a dying frame must not trigger floods"
        );
    }
}

#[test]
fn send_failure_purges_routes_and_rediscovers() {
    let topo = line_topology(4);
    let mut stack: NetStack<u8> = NetStack::new(n(0), NetConfig::default());
    let t0 = SimTime::ZERO;
    // Learn a route to 3 via 1 (frame from origin 3 arrives via 1).
    let teach = Frame::Unicast {
        origin: n(3),
        seq: 0,
        dest: n(0),
        hops: 2,
        payload: NetPayload::App(0u8),
        size: 32,
    };
    let _ = stack.on_frame(t0, n(1), teach);
    assert!(stack.has_route(n(3), t0));
    // Send data: it goes to next hop 1.
    let actions = stack.send_app(t0, n(3), 42u8, 64);
    let frame = match &actions[..] {
        [NetAction::Send { next_hop, frame }] => {
            assert_eq!(*next_hop, n(1));
            frame.clone()
        }
        other => panic!("expected one unicast send, got {other:?}"),
    };
    // The driver reports the hop dead: routes through 1 purge, the packet
    // re-queues behind a fresh discovery.
    let actions = stack.on_send_failed(t0, n(1), frame);
    assert!(
        !stack.has_route(n(3), t0),
        "failed hop must purge the route"
    );
    assert!(
        actions
            .iter()
            .any(|a| matches!(a, NetAction::Broadcast(f) if f.is_control())),
        "a fresh RREQ must go out"
    );
    assert!(
        actions.iter().any(|a| matches!(
            a,
            NetAction::SetTimer {
                timer: NetTimer::RreqTimeout { .. },
                ..
            }
        )),
        "the discovery must be guarded by a timeout"
    );
    let _ = topo; // geometry documented above; the stack itself is topology-blind
}

#[test]
fn discovery_failure_returns_every_buffered_packet() {
    let mut stack: NetStack<u8> = NetStack::new(n(0), NetConfig::default());
    let t0 = SimTime::ZERO;
    // Queue three packets to an unknown destination.
    for payload in [1u8, 2, 3] {
        let _ = stack.send_app(t0, n(9), payload, 64);
    }
    // Exhaust the retries.
    let cfg = NetConfig::default();
    let mut returned = Vec::new();
    for attempt in 1..=cfg.rreq_retries + 1 {
        let actions = stack.on_timer(
            t0,
            NetTimer::RreqTimeout {
                dest: n(9),
                attempt,
            },
        );
        for action in actions {
            if let NetAction::Undeliverable { dest, payload } = action {
                assert_eq!(dest, n(9));
                returned.push(payload);
            }
        }
    }
    returned.sort_unstable();
    assert_eq!(
        returned,
        vec![1, 2, 3],
        "every buffered packet must come back exactly once"
    );
}

#[test]
fn duplicate_rreq_timeouts_are_harmless() {
    let mut stack: NetStack<u8> = NetStack::new(n(0), NetConfig::default());
    let t0 = SimTime::ZERO;
    let _ = stack.send_app(t0, n(5), 1u8, 64);
    let first = stack.on_timer(
        t0,
        NetTimer::RreqTimeout {
            dest: n(5),
            attempt: 1,
        },
    );
    assert!(!first.is_empty(), "retry must act");
    // The same timer firing twice (scheduling race) must not double-retry
    // with the same attempt counter once the pending state advanced.
    let dup = stack.on_timer(
        t0,
        NetTimer::RreqTimeout {
            dest: n(5),
            attempt: 1,
        },
    );
    assert!(
        dup.iter()
            .all(|a| !matches!(a, NetAction::Undeliverable { .. })),
        "a stale duplicate timer must not fail the discovery"
    );
}
