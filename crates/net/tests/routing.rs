//! End-to-end tests of the network layer over static topologies, driven
//! by a miniature event loop (the real driver lives in `mp2p-rpcc`).

use mp2p_mobility::Point;
use mp2p_net::{Frame, LinkModel, NetAction, NetConfig, NetMeta, NetStack, NetTimer, Topology};
use mp2p_sim::{EventQueue, NodeId, SimRng, SimTime};

/// A static-network test driver: applies `NetAction`s, delivers frames
/// after link delays, and records deliveries/undeliverables/traffic.
struct TestNet {
    topo: Topology,
    stacks: Vec<NetStack<String>>,
    queue: EventQueue<Event>,
    link: LinkModel,
    rng: SimRng,
    now: SimTime,
    delivered: Vec<(NodeId, String, NetMeta)>,
    undeliverable: Vec<(NodeId, NodeId, String)>,
    transmissions: usize,
    control_transmissions: usize,
}

enum Event {
    Rx {
        at: NodeId,
        from: NodeId,
        frame: Frame<String>,
    },
    Timer {
        at: NodeId,
        timer: NetTimer,
    },
}

impl TestNet {
    fn new(positions: Vec<Point>, range: f64) -> Self {
        let n = positions.len();
        let topo = Topology::new(&positions, &vec![true; n], range);
        let stacks = (0..n)
            .map(|i| NetStack::new(NodeId::new(i as u32), NetConfig::default()))
            .collect();
        TestNet {
            topo,
            stacks,
            queue: EventQueue::new(),
            link: LinkModel::default(),
            rng: SimRng::from_seed(7, 0),
            now: SimTime::ZERO,
            delivered: Vec::new(),
            undeliverable: Vec::new(),
            transmissions: 0,
            control_transmissions: 0,
        }
    }

    fn line(n: usize, spacing: f64) -> Self {
        TestNet::new(
            (0..n)
                .map(|i| Point::new(i as f64 * spacing, 0.0))
                .collect(),
            250.0,
        )
    }

    fn apply(&mut self, node: NodeId, actions: Vec<NetAction<String>>) {
        for action in actions {
            match action {
                NetAction::Broadcast(frame) => {
                    self.transmissions += 1;
                    if frame.is_control() {
                        self.control_transmissions += 1;
                    }
                    let delay = self.link.hop_delay(frame.size(), &mut self.rng);
                    for &nb in self.topo.neighbors(node) {
                        self.queue.push(
                            self.now + delay,
                            Event::Rx {
                                at: nb,
                                from: node,
                                frame: frame.clone(),
                            },
                        );
                    }
                }
                NetAction::Send { next_hop, frame } => {
                    self.transmissions += 1;
                    if frame.is_control() {
                        self.control_transmissions += 1;
                    }
                    if self.topo.are_neighbors(node, next_hop) {
                        let delay = self.link.hop_delay(frame.size(), &mut self.rng);
                        self.queue.push(
                            self.now + delay,
                            Event::Rx {
                                at: next_hop,
                                from: node,
                                frame,
                            },
                        );
                    } else {
                        let now = self.now;
                        let fail = self.stacks[node.index()].on_send_failed(now, next_hop, frame);
                        self.apply(node, fail);
                    }
                }
                NetAction::Deliver { payload, meta } => self.delivered.push((node, payload, meta)),
                NetAction::SetTimer { after, timer } => {
                    self.queue
                        .push(self.now + after, Event::Timer { at: node, timer });
                }
                NetAction::Undeliverable { dest, payload } => {
                    self.undeliverable.push((node, dest, payload));
                }
            }
        }
    }

    fn run(&mut self) {
        while let Some((t, event)) = self.queue.pop() {
            self.now = t;
            match event {
                Event::Rx { at, from, frame } => {
                    let actions = self.stacks[at.index()].on_frame(t, from, frame);
                    self.apply(at, actions);
                }
                Event::Timer { at, timer } => {
                    let actions = self.stacks[at.index()].on_timer(t, timer);
                    self.apply(at, actions);
                }
            }
        }
    }

    fn flood(&mut self, from: NodeId, ttl: u8, msg: &str) {
        let actions = self.stacks[from.index()].flood_app(self.now, ttl, msg.to_string(), 48);
        self.apply(from, actions);
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: &str) {
        let actions = self.stacks[from.index()].send_app(self.now, to, msg.to_string(), 128);
        self.apply(from, actions);
    }

    fn receivers_of(&self, msg: &str) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self
            .delivered
            .iter()
            .filter(|(_, m, _)| m == msg)
            .map(|(n, _, _)| *n)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

#[test]
fn flood_reaches_exactly_ttl_hops_on_a_line() {
    let mut net = TestNet::line(8, 200.0);
    net.flood(n(0), 3, "inv");
    net.run();
    assert_eq!(net.receivers_of("inv"), vec![n(1), n(2), n(3)]);
}

#[test]
fn flood_is_duplicate_suppressed_on_dense_graph() {
    // A 5-node clique: everyone hears everyone; each node must deliver
    // exactly once and rebroadcast at most once.
    let mut net = TestNet::new(
        (0..5).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect(),
        250.0,
    );
    net.flood(n(0), 4, "inv");
    net.run();
    assert_eq!(net.receivers_of("inv"), vec![n(1), n(2), n(3), n(4)]);
    assert_eq!(net.delivered.len(), 4, "each node delivers exactly once");
    // Transmissions: origin + at most one rebroadcast per other node.
    assert!(
        net.transmissions <= 5,
        "dup suppression failed: {} txs",
        net.transmissions
    );
}

#[test]
fn flood_ttl_one_reaches_only_neighbors() {
    let mut net = TestNet::line(4, 200.0);
    net.flood(n(1), 1, "hello");
    net.run();
    assert_eq!(net.receivers_of("hello"), vec![n(0), n(2)]);
    assert_eq!(net.transmissions, 1, "TTL 1 floods are never rebroadcast");
}

#[test]
fn unicast_discovers_route_and_delivers_multi_hop() {
    let mut net = TestNet::line(6, 200.0);
    net.send(n(0), n(5), "update");
    net.run();
    let got = net.receivers_of("update");
    assert_eq!(got, vec![n(5)]);
    let (_, _, meta) = net
        .delivered
        .iter()
        .find(|(_, m, _)| m == "update")
        .unwrap();
    assert_eq!(meta.hops, 5);
    assert_eq!(meta.origin, n(0));
    assert!(!meta.via_flood);
    assert!(
        net.control_transmissions > 0,
        "discovery should cost control traffic"
    );
}

#[test]
fn second_send_reuses_cached_route() {
    let mut net = TestNet::line(5, 200.0);
    net.send(n(0), n(4), "first");
    net.run();
    let control_after_first = net.control_transmissions;
    net.send(n(0), n(4), "second");
    net.run();
    assert_eq!(net.receivers_of("second"), vec![n(4)]);
    assert_eq!(
        net.control_transmissions, control_after_first,
        "cached route must not trigger a second discovery"
    );
}

#[test]
fn reply_path_is_learned_from_request() {
    // After 0 -> 4 delivery, node 4 can answer without its own discovery.
    let mut net = TestNet::line(5, 200.0);
    net.send(n(0), n(4), "poll");
    net.run();
    let control_after = net.control_transmissions;
    net.send(n(4), n(0), "poll_ack");
    net.run();
    assert_eq!(net.receivers_of("poll_ack"), vec![n(0)]);
    assert_eq!(
        net.control_transmissions, control_after,
        "reverse route was free"
    );
}

#[test]
fn unreachable_destination_reports_undeliverable() {
    // Two far-apart islands.
    let mut net = TestNet::new(
        vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(5_000.0, 0.0),
        ],
        250.0,
    );
    net.send(n(0), n(2), "lost");
    net.run();
    assert!(net.receivers_of("lost").is_empty());
    assert_eq!(net.undeliverable.len(), 1);
    let (at, dest, payload) = &net.undeliverable[0];
    assert_eq!((*at, *dest, payload.as_str()), (n(0), n(2), "lost"));
}

#[test]
fn loopback_delivers_without_traffic() {
    let mut net = TestNet::line(3, 200.0);
    net.send(n(1), n(1), "self");
    net.run();
    assert_eq!(net.receivers_of("self"), vec![n(1)]);
    assert_eq!(net.transmissions, 0);
}

#[test]
fn many_floods_with_distinct_ids_all_deliver() {
    let mut net = TestNet::line(4, 200.0);
    for i in 0..10 {
        net.flood(n(0), 4, &format!("inv{i}"));
    }
    net.run();
    for i in 0..10 {
        assert_eq!(net.receivers_of(&format!("inv{i}")), vec![n(1), n(2), n(3)]);
    }
}

#[test]
fn concurrent_discoveries_to_same_dest_share_one_rreq() {
    let mut net = TestNet::line(5, 200.0);
    let a1 = net.stacks[0].send_app(SimTime::ZERO, n(4), "m1".into(), 64);
    let a2 = net.stacks[0].send_app(SimTime::ZERO, n(4), "m2".into(), 64);
    // Second send while discovery pending: no second RREQ broadcast.
    let rreqs_in = |actions: &[NetAction<String>]| {
        actions
            .iter()
            .filter(|a| matches!(a, NetAction::Broadcast(_)))
            .count()
    };
    assert_eq!(rreqs_in(&a1), 1);
    assert_eq!(rreqs_in(&a2), 0);
    net.apply(n(0), a1);
    net.apply(n(0), a2);
    net.run();
    assert_eq!(net.receivers_of("m1"), vec![n(4)]);
    assert_eq!(net.receivers_of("m2"), vec![n(4)]);
}
