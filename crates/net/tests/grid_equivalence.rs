//! Equivalence proptests: the spatial-hash topology build must be
//! indistinguishable — down to per-node neighbour list *order* — from the
//! reference O(n²) pairwise scan, across node counts, terrain densities,
//! down-node patterns and link filters. Byte-identical snapshots are what
//! let the engine swap builds without perturbing seeded paper runs.

use proptest::prelude::*;

use mp2p_mobility::{Point, Terrain};
use mp2p_net::Topology;
use mp2p_sim::{NodeId, SimRng};

/// Scenario knobs the proptest explores. Positions and the up/down mask
/// are derived from `seed` so shrinking stays meaningful.
#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    n: usize,
    /// Terrain side in metres: from one-cell dense clusters (everything
    /// within a single grid cell) to sparse fields many cells wide.
    side: f64,
    /// Probability that a node is switched off.
    down_prob: f64,
    filter: Filter,
}

#[derive(Debug, Clone, Copy)]
enum Filter {
    None,
    /// Severs links crossing the vertical terrain midline (the fault
    /// injector's partition shape).
    Bisect,
    /// An arbitrary asymmetric pair predicate.
    PairParity,
}

fn scenarios() -> impl Strategy<Value = Scenario> {
    (
        any::<u64>(),
        1usize..120,
        prop_oneof![Just(100.0), Just(400.0), Just(1_500.0), Just(4_000.0)],
        prop_oneof![Just(0.0), Just(0.2), Just(0.6)],
        prop_oneof![
            Just(Filter::None),
            Just(Filter::Bisect),
            Just(Filter::PairParity)
        ],
    )
        .prop_map(|(seed, n, side, down_prob, filter)| Scenario {
            seed,
            n,
            side,
            down_prob,
            filter,
        })
}

fn materialize(s: &Scenario) -> (Vec<Point>, Vec<bool>) {
    let terrain = Terrain::new(s.side, s.side);
    let mut rng = SimRng::from_seed(s.seed, 0xE0);
    let positions: Vec<Point> = (0..s.n).map(|_| terrain.random_point(&mut rng)).collect();
    let up: Vec<bool> = (0..s.n).map(|_| !rng.bernoulli(s.down_prob)).collect();
    (positions, up)
}

fn build_both(s: &Scenario) -> (Topology, Topology) {
    let (positions, up) = materialize(s);
    let mid = s.side / 2.0;
    let keep = |a: usize, b: usize| match s.filter {
        Filter::None => true,
        Filter::Bisect => (positions[a].x < mid) == (positions[b].x < mid),
        Filter::PairParity => !(a * 31 + b * 17).is_multiple_of(5),
    };
    let grid = Topology::with_link_filter(&positions, &up, 250.0, keep);
    let naive = Topology::with_link_filter_naive(&positions, &up, 250.0, keep);
    (grid, naive)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The CSR snapshots agree node-by-node, in order.
    #[test]
    fn prop_neighbor_lists_identical(s in scenarios()) {
        let (grid, naive) = build_both(&s);
        prop_assert_eq!(grid.len(), naive.len());
        prop_assert_eq!(grid.edge_count(), naive.edge_count());
        for i in 0..s.n {
            let id = NodeId::new(i as u32);
            prop_assert_eq!(grid.is_up(id), naive.is_up(id));
            prop_assert_eq!(
                grid.neighbors(id),
                naive.neighbors(id),
                "node {} neighbour lists (order included) diverged",
                i
            );
        }
    }

    /// Graph queries agree: hop counts, TTL scopes (in discovery order)
    /// and the component decomposition.
    #[test]
    fn prop_queries_identical(s in scenarios()) {
        let (grid, naive) = build_both(&s);
        let mut probe = SimRng::from_seed(s.seed, 0xE1);
        for _ in 0..20 {
            let a = NodeId::new(probe.uniform_u64(s.n as u64) as u32);
            let b = NodeId::new(probe.uniform_u64(s.n as u64) as u32);
            prop_assert_eq!(grid.hops(a, b), naive.hops(a, b), "hops {:?}->{:?}", a, b);
            prop_assert_eq!(
                grid.shortest_path(a, b).map(|p| p.len()),
                naive.shortest_path(a, b).map(|p| p.len()),
                "path length {:?}->{:?}",
                a,
                b
            );
            let ttl = probe.uniform_u64(5) as u32;
            prop_assert_eq!(
                grid.within_hops(a, ttl),
                naive.within_hops(a, ttl),
                "ttl-{} scope of {:?} (discovery order included)",
                ttl,
                a
            );
        }
        prop_assert_eq!(grid.components(), naive.components());
    }

    /// are_neighbors (binary search on the grid build) matches the
    /// reference relation on every pair.
    #[test]
    fn prop_are_neighbors_identical(s in scenarios()) {
        let (grid, naive) = build_both(&s);
        for i in 0..s.n {
            for j in 0..s.n {
                let (a, b) = (NodeId::new(i as u32), NodeId::new(j as u32));
                prop_assert_eq!(grid.are_neighbors(a, b), naive.are_neighbors(a, b));
            }
        }
    }
}
