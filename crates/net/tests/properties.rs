//! Property tests of the network layer over random static geometries: the
//! flood reach matches the topology's TTL ball, and unicast delivery
//! succeeds exactly on connected pairs.

use proptest::prelude::*;

use mp2p_mobility::{Point, Terrain};
use mp2p_net::{Frame, LinkModel, NetAction, NetConfig, NetStack, NetTimer, Topology};
use mp2p_sim::{EventQueue, NodeId, SimRng, SimTime};

/// Minimal synchronous driver (mirrors the one in routing.rs, kept local
/// so each test file stands alone).
struct Driver {
    topo: Topology,
    stacks: Vec<NetStack<u64>>,
    queue: EventQueue<Ev>,
    link: LinkModel,
    rng: SimRng,
    now: SimTime,
    delivered: Vec<(NodeId, u64)>,
    undeliverable: Vec<(NodeId, u64)>,
}

enum Ev {
    Rx {
        at: NodeId,
        from: NodeId,
        frame: Frame<u64>,
    },
    Timer {
        at: NodeId,
        timer: NetTimer,
    },
}

impl Driver {
    fn new(positions: &[Point]) -> Self {
        let n = positions.len();
        Driver {
            topo: Topology::new(positions, &vec![true; n], 250.0),
            stacks: (0..n)
                .map(|i| NetStack::new(NodeId::new(i as u32), NetConfig::default()))
                .collect(),
            queue: EventQueue::new(),
            link: LinkModel::default(),
            rng: SimRng::from_seed(99, 0),
            now: SimTime::ZERO,
            delivered: Vec::new(),
            undeliverable: Vec::new(),
        }
    }

    fn apply(&mut self, node: NodeId, actions: Vec<NetAction<u64>>) {
        for action in actions {
            match action {
                NetAction::Broadcast(frame) => {
                    let delay = self.link.hop_delay(frame.size(), &mut self.rng);
                    for &nb in self.topo.neighbors(node) {
                        self.queue.push(
                            self.now + delay,
                            Ev::Rx {
                                at: nb,
                                from: node,
                                frame: frame.clone(),
                            },
                        );
                    }
                }
                NetAction::Send { next_hop, frame } => {
                    if self.topo.are_neighbors(node, next_hop) {
                        let delay = self.link.hop_delay(frame.size(), &mut self.rng);
                        self.queue.push(
                            self.now + delay,
                            Ev::Rx {
                                at: next_hop,
                                from: node,
                                frame,
                            },
                        );
                    } else {
                        let now = self.now;
                        let fail = self.stacks[node.index()].on_send_failed(now, next_hop, frame);
                        self.apply(node, fail);
                    }
                }
                NetAction::Deliver { payload, .. } => self.delivered.push((node, payload)),
                NetAction::SetTimer { after, timer } => {
                    self.queue
                        .push(self.now + after, Ev::Timer { at: node, timer });
                }
                NetAction::Undeliverable { dest: _, payload } => {
                    self.undeliverable.push((node, payload));
                }
            }
        }
    }

    fn run(&mut self) {
        let mut steps = 0usize;
        while let Some((t, ev)) = self.queue.pop() {
            steps += 1;
            assert!(steps < 2_000_000, "event storm: likely a loop");
            self.now = t;
            match ev {
                Ev::Rx { at, from, frame } => {
                    let actions = self.stacks[at.index()].on_frame(t, from, frame);
                    self.apply(at, actions);
                }
                Ev::Timer { at, timer } => {
                    let actions = self.stacks[at.index()].on_timer(t, timer);
                    self.apply(at, actions);
                }
            }
        }
    }
}

fn random_positions(seed: u64, n: usize) -> Vec<Point> {
    let mut rng = SimRng::from_seed(seed, 1);
    let terrain = Terrain::new(1_200.0, 1_200.0);
    (0..n).map(|_| terrain.random_point(&mut rng)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A TTL-k flood delivers to exactly the nodes within k hops.
    #[test]
    fn prop_flood_reach_is_the_ttl_ball(seed in any::<u64>(), n in 3usize..20, ttl in 1u8..5) {
        let positions = random_positions(seed, n);
        let mut driver = Driver::new(&positions);
        let origin = NodeId::new(0);
        let actions = driver.stacks[0].flood_app(SimTime::ZERO, ttl, 7u64, 48);
        driver.apply(origin, actions);
        driver.run();
        let mut got: Vec<NodeId> = driver
            .delivered
            .iter()
            .filter(|(_, p)| *p == 7)
            .map(|(node, _)| *node)
            .collect();
        got.sort_unstable();
        got.dedup();
        let mut expected = driver.topo.within_hops(origin, u32::from(ttl));
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Unicast delivers iff the pair is connected; otherwise the stack
    /// reports the payload undeliverable. Exactly one of the two happens.
    #[test]
    fn prop_unicast_delivers_iff_connected(seed in any::<u64>(), n in 2usize..16) {
        let positions = random_positions(seed, 2 + n);
        let count = positions.len();
        let mut driver = Driver::new(&positions);
        let src = NodeId::new(0);
        let dst = NodeId::new(count as u32 - 1);
        let connected = driver.topo.hops(src, dst).is_some();
        let actions = driver.stacks[0].send_app(SimTime::ZERO, dst, 99u64, 64);
        driver.apply(src, actions);
        driver.run();
        let delivered = driver.delivered.iter().any(|&(node, p)| node == dst && p == 99);
        let bounced = driver.undeliverable.iter().any(|&(node, p)| node == src && p == 99);
        prop_assert_eq!(delivered, connected, "delivery must match connectivity");
        prop_assert_eq!(bounced, !connected, "disconnection must surface as undeliverable");
        prop_assert!(delivered != bounced, "exactly one outcome");
    }

    /// Back-to-back unicasts all arrive, in order of transmission, over a
    /// static topology.
    #[test]
    fn prop_unicast_stream_is_complete(seed in any::<u64>(), k in 1usize..12) {
        let positions = random_positions(seed, 10);
        let mut driver = Driver::new(&positions);
        let src = NodeId::new(0);
        let dst = NodeId::new(9);
        if driver.topo.hops(src, dst).is_none() {
            return Ok(()); // disconnected geometry: covered elsewhere
        }
        for i in 0..k as u64 {
            let actions = driver.stacks[0].send_app(SimTime::ZERO, dst, i, 64);
            driver.apply(src, actions);
        }
        driver.run();
        let got: Vec<u64> = driver
            .delivered
            .iter()
            .filter(|&&(node, _)| node == dst)
            .map(|&(_, p)| p)
            .collect();
        prop_assert_eq!(got.len(), k, "every message arrives exactly once");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..k as u64).collect::<Vec<_>>());
    }
}
