//! Proof that the scalable substrate is allocation-free where it claims
//! to be: topology queries against a warm [`TopologyScratch`] and
//! steady-state snapshot rebuilds through [`TopologyBuilder`] must not
//! touch the heap. A counting global allocator makes the claim a hard
//! assertion rather than a code-review promise.
//!
//! The counter only tracks allocations made *between* [`arm`] and
//! [`disarm`] on this (single-threaded) test binary.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use mp2p_mobility::{Point, Terrain};
use mp2p_net::{Topology, TopologyBuilder, TopologyScratch};
use mp2p_sim::{NodeId, SimRng};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn arm() {
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
}

fn disarm() -> u64 {
    ARMED.store(false, Ordering::SeqCst);
    ALLOCATIONS.load(Ordering::SeqCst)
}

fn random_field(n: usize, seed: u64) -> (Vec<Point>, Vec<bool>) {
    let terrain = Terrain::new(2_000.0, 2_000.0);
    let mut rng = SimRng::from_seed(seed, 0xA11C);
    let positions: Vec<Point> = (0..n).map(|_| terrain.random_point(&mut rng)).collect();
    (positions, vec![true; n])
}

/// hops/shortest_path/within_hops against warm scratch and output
/// buffers: zero heap traffic across hundreds of queries.
#[test]
fn warm_queries_do_not_allocate() {
    let n = 300;
    let (positions, up) = random_field(n, 7);
    let topo = Topology::new(&positions, &up, 250.0);
    let mut scratch = TopologyScratch::new();
    let mut buf = Vec::new();

    let run_queries = |scratch: &mut TopologyScratch, buf: &mut Vec<NodeId>| {
        let mut probe = SimRng::from_seed(8, 0xA11D);
        for _ in 0..200 {
            let a = NodeId::new(probe.uniform_u64(n as u64) as u32);
            let b = NodeId::new(probe.uniform_u64(n as u64) as u32);
            topo.hops_with(scratch, a, b);
            topo.shortest_path_with(scratch, a, b, buf);
            topo.within_hops_with(scratch, a, 4, buf);
            topo.are_neighbors(a, b);
        }
    };

    // Warm-up: the identical workload once, growing scratch and output
    // buffers to everything the armed pass will need.
    run_queries(&mut scratch, &mut buf);

    arm();
    run_queries(&mut scratch, &mut buf);
    let count = disarm();
    assert_eq!(
        count, 0,
        "topology queries allocated {count} times after warm-up"
    );
}

/// Rebuilding a snapshot through the builder with recycled CSR arrays is
/// allocation-free at steady state (same node population).
#[test]
fn warm_rebuild_does_not_allocate() {
    let n = 500;
    let (positions, up) = random_field(n, 9);
    let mut builder = TopologyBuilder::new();

    // Two warm-up rounds: the first sizes the builder's bins and the CSR
    // arrays, the second settles recycled capacities.
    let mut topo = builder.build(&positions, &up, 250.0, |_, _| true);
    topo = builder.rebuild(Some(topo), &positions, &up, 250.0, |_, _| true);

    arm();
    let rebuilt = builder.rebuild(Some(topo), &positions, &up, 250.0, |_, _| true);
    let count = disarm();
    assert_eq!(
        count, 0,
        "steady-state topology rebuild allocated {count} times"
    );
    assert_eq!(rebuilt.len(), n);
}
