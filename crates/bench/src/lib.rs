//! Criterion benches live in `benches/`; the library is intentionally empty.
