//! Chaos-harness overhead benches: the contract is that a disabled fault
//! plan costs nothing. `FaultPlan::none()` must leave the world's hot
//! path (per-frame delivery, per-transmission scheduling) with only an
//! `Option` discriminant check — compare the `none` and pre-chaos-shaped
//! numbers here against `hostile` to see what an *active* plan costs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mp2p_net::{FaultPlan, GeParams, GilbertElliott, LinkModel};
use mp2p_rpcc::{LevelMix, Strategy, World, WorldConfig};
use mp2p_sim::{SimDuration, SimRng};

fn scenario(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::paper_default(seed);
    cfg.n_peers = 20;
    cfg.terrain = mp2p_mobility::Terrain::new(900.0, 900.0);
    cfg.c_num = 5;
    cfg.sim_time = SimDuration::from_mins(8);
    cfg.warmup = SimDuration::from_mins(2);
    cfg.strategy = Strategy::Rpcc;
    cfg.level_mix = LevelMix::hybrid();
    cfg
}

/// Whole-run cost with the fault subsystem disabled vs active. The
/// `none` number is the regression guard: it must match the pre-chaos
/// baseline for this scenario, because a disabled plan never constructs
/// a `FaultRuntime` at all.
fn bench_fault_plan_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_plan_overhead");
    group.sample_size(10);
    group.bench_function("none", |b| {
        b.iter(|| {
            let cfg = scenario(21); // default faults: FaultPlan::none()
            black_box(World::new(cfg).run().traffic.transmissions())
        })
    });
    group.bench_function("hostile", |b| {
        b.iter(|| {
            let mut cfg = scenario(21);
            cfg.proto = cfg.proto.hardened();
            cfg.faults = FaultPlan::hostile(cfg.sim_time);
            black_box(World::new(cfg).run().traffic.transmissions())
        })
    });
    group.finish();
}

/// Per-frame loss-check micro-costs: the lossless Bernoulli path (what
/// every fault-free frame pays — no RNG draw at loss 0) vs the
/// Gilbert–Elliott chain (two draws per frame when a burst plan is on).
fn bench_loss_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("loss_check_1m_frames");
    group.bench_function("bernoulli_lossless", |b| {
        let link = LinkModel::default().lossless();
        let mut rng = SimRng::from_seed(3, 0);
        b.iter(|| {
            let mut delivered = 0u64;
            for _ in 0..1_000_000 {
                delivered += u64::from(link.delivered(&mut rng));
            }
            black_box(delivered)
        })
    });
    group.bench_function("gilbert_elliott", |b| {
        let mut ge = GilbertElliott::new(GeParams {
            p_good_to_bad: 0.02,
            p_bad_to_good: 0.25,
            loss_good: 0.01,
            loss_bad: 0.6,
        });
        let mut rng = SimRng::from_seed(3, 1);
        b.iter(|| {
            let mut delivered = 0u64;
            for _ in 0..1_000_000 {
                delivered += u64::from(ge.delivered(&mut rng));
            }
            black_box(delivered)
        })
    });
    group.finish();
}

criterion_group!(faults, bench_fault_plan_overhead, bench_loss_check);
criterion_main!(faults);
