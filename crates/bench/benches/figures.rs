//! One Criterion group per paper artefact: each benchmark runs the exact
//! simulation that regenerates one point of the corresponding table or
//! figure (at reduced scale, so `cargo bench` stays minutes, not hours).
//! The full-resolution regenerators are the `mp2p-experiments` binaries
//! (`fig7`, `fig8`, `fig9`, `table1`, `all`).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mp2p_rpcc::{LevelMix, Strategy, WorkloadMode, World, WorldConfig};
use mp2p_sim::SimDuration;

/// The benchmark scenario: Table 1 semantics at 20 peers / 8 simulated
/// minutes.
fn bench_config(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::paper_default(seed);
    cfg.n_peers = 20;
    cfg.terrain = mp2p_mobility::Terrain::new(900.0, 900.0);
    cfg.c_num = 5;
    cfg.sim_time = SimDuration::from_mins(8);
    cfg.warmup = SimDuration::from_mins(2);
    cfg
}

fn run(cfg: WorldConfig) -> u64 {
    let report = World::new(cfg).run();
    report.traffic.transmissions() + report.audit.served()
}

/// Table 1: the default scenario itself, once per strategy.
fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_default_scenario");
    group.sample_size(10);
    for strategy in [Strategy::Pull, Strategy::Push, Strategy::Rpcc] {
        group.bench_function(strategy.label(), |b| {
            b.iter(|| {
                let mut cfg = bench_config(42);
                cfg.strategy = strategy;
                black_box(run(cfg))
            })
        });
    }
    group.finish();
}

/// Fig. 7(a) / Fig. 8(a): the update-interval sweep's extreme points.
fn bench_fig7a_fig8a(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a_fig8a_update_interval");
    group.sample_size(10);
    for (label, secs) in [("update_30s", 30), ("update_8min", 480)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = bench_config(7);
                cfg.strategy = Strategy::Rpcc;
                cfg.level_mix = LevelMix::strong_only();
                cfg.i_update = SimDuration::from_secs(secs);
                black_box(run(cfg))
            })
        });
    }
    group.finish();
}

/// Fig. 7(b) / Fig. 8(b): the query-interval sweep's extreme points.
fn bench_fig7b_fig8b(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7b_fig8b_query_interval");
    group.sample_size(10);
    for (label, secs) in [("query_5s", 5), ("query_80s", 80)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = bench_config(8);
                cfg.strategy = Strategy::Pull;
                cfg.i_query = SimDuration::from_secs(secs);
                black_box(run(cfg))
            })
        });
    }
    group.finish();
}

/// Fig. 7(c) / Fig. 8(c): the cache-number sweep's extreme points.
fn bench_fig7c_fig8c(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7c_fig8c_cache_number");
    group.sample_size(10);
    for (label, c_num) in [("cache_2", 2), ("cache_12", 12)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = bench_config(9);
                cfg.strategy = Strategy::Push;
                cfg.c_num = c_num;
                black_box(run(cfg))
            })
        });
    }
    group.finish();
}

/// Fig. 9: the single-item TTL sweep's extreme points.
fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_invalidation_ttl");
    group.sample_size(10);
    for ttl in [1u8, 7u8] {
        group.bench_function(format!("rpcc_sc_ttl_{ttl}"), |b| {
            b.iter(|| {
                let mut cfg = bench_config(10);
                cfg.workload = WorkloadMode::SingleItem;
                cfg.strategy = Strategy::Rpcc;
                cfg.level_mix = LevelMix::strong_only();
                cfg.proto.invalidation_ttl = ttl;
                black_box(run(cfg))
            })
        });
    }
    group.finish();
}

criterion_group!(
    figures,
    bench_table1,
    bench_fig7a_fig8a,
    bench_fig7b_fig8b,
    bench_fig7c_fig8c,
    bench_fig9
);
criterion_main!(figures);
