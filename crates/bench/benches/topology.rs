//! Substrate scaling benches: old O(n²) pairwise topology build vs the
//! spatial-hash/CSR build, and allocation-free scratch queries, at the
//! node counts the large-n perf matrix uses (50 paper-scale, 500, 5000).
//! Node density is held at the paper's (one peer per ~45 000 m²) so the
//! average degree — and thus per-node work — stays comparable across n;
//! what changes with n is exactly the build strategy's complexity class.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mp2p_experiments::perf::bench_terrain;
use mp2p_mobility::Point;
use mp2p_net::{Topology, TopologyBuilder, TopologyScratch};
use mp2p_sim::{NodeId, SimRng};

const RANGE: f64 = 250.0;
const SIZES: [usize; 3] = [50, 500, 5_000];

fn field(n: usize) -> (Vec<Point>, Vec<bool>) {
    let terrain = bench_terrain(n);
    let mut rng = SimRng::from_seed(n as u64, 0xBE);
    let positions: Vec<Point> = (0..n).map(|_| terrain.random_point(&mut rng)).collect();
    (positions, vec![true; n])
}

/// Snapshot construction: the reference pairwise scan, the spatial-hash
/// build from scratch, and the steady-state rebuild that recycles the
/// previous snapshot's CSR arrays (the path `World` actually runs).
fn bench_build(c: &mut Criterion) {
    for n in SIZES {
        let (positions, up) = field(n);
        let mut group = c.benchmark_group(format!("topology_build_n{n}"));
        // The O(n²) reference is too slow to be worth timing at 5 000
        // nodes beyond one confirmation run; keep it for the smaller
        // sizes where the crossover is visible.
        if n <= 500 {
            group.bench_function("naive_pairwise", |b| {
                b.iter(|| {
                    black_box(Topology::with_link_filter_naive(
                        &positions,
                        &up,
                        RANGE,
                        |_, _| true,
                    ))
                })
            });
        }
        group.bench_function("grid_fresh", |b| {
            b.iter(|| black_box(Topology::new(&positions, &up, RANGE)))
        });
        group.bench_function("grid_recycled", |b| {
            let mut builder = TopologyBuilder::new();
            let mut prev = Some(builder.build(&positions, &up, RANGE, |_, _| true));
            b.iter(|| {
                let topo = builder.rebuild(prev.take(), &positions, &up, RANGE, |_, _| true);
                let edges = topo.edge_count();
                prev = Some(topo);
                black_box(edges)
            })
        });
        group.finish();
    }
}

/// Scratch-based BFS queries on a warm scratch: the TTL-scope scan every
/// flood pays and the shortest-path walk oracle mode pays.
fn bench_queries(c: &mut Criterion) {
    for n in SIZES {
        let (positions, up) = field(n);
        let topo = Topology::new(&positions, &up, RANGE);
        let mut group = c.benchmark_group(format!("topology_query_n{n}"));
        group.bench_function("within_hops_ttl5", |b| {
            let mut scratch = TopologyScratch::new();
            let mut out = Vec::new();
            let mut probe = SimRng::from_seed(n as u64, 0xBF);
            b.iter(|| {
                let from = NodeId::new(probe.uniform_u64(n as u64) as u32);
                topo.within_hops_with(&mut scratch, from, 5, &mut out);
                black_box(out.len())
            })
        });
        group.bench_function("shortest_path", |b| {
            let mut scratch = TopologyScratch::new();
            let mut out = Vec::new();
            let mut probe = SimRng::from_seed(n as u64, 0xC0);
            b.iter(|| {
                let from = NodeId::new(probe.uniform_u64(n as u64) as u32);
                let to = NodeId::new(probe.uniform_u64(n as u64) as u32);
                let found = topo.shortest_path_with(&mut scratch, from, to, &mut out);
                black_box((found, out.len()))
            })
        });
        group.bench_function("are_neighbors", |b| {
            let mut probe = SimRng::from_seed(n as u64, 0xC1);
            b.iter(|| {
                let a = NodeId::new(probe.uniform_u64(n as u64) as u32);
                let bb = NodeId::new(probe.uniform_u64(n as u64) as u32);
                black_box(topo.are_neighbors(a, bb))
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_build, bench_queries);
criterion_main!(benches);
