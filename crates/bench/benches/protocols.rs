//! Protocol-level benchmarks and the ablations DESIGN.md calls out:
//! relay-selection hysteresis, the nearest-relay poll optimisation
//! (flood-only vs unicast-first), and the level mixes.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mp2p_cache::{CacheStore, DataItem, Version};
use mp2p_rpcc::Protocol;
use mp2p_rpcc::{
    Coefficients, ConsistencyLevel, Ctx, LevelMix, ProtocolConfig, Rpcc, Strategy, World,
    WorldConfig,
};
use mp2p_sim::{ItemId, NodeId, SimDuration, SimRng, SimTime};

fn scenario(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::paper_default(seed);
    cfg.n_peers = 20;
    cfg.terrain = mp2p_mobility::Terrain::new(900.0, 900.0);
    cfg.c_num = 5;
    cfg.sim_time = SimDuration::from_mins(8);
    cfg.warmup = SimDuration::from_mins(2);
    cfg
}

/// The consistency-level mixes at identical workloads: how much does each
/// guarantee cost to *simulate* (a proxy for protocol work)?
fn bench_level_mixes(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpcc_level_mixes");
    group.sample_size(10);
    for (label, mix) in [
        ("weak", LevelMix::weak_only()),
        ("delta", LevelMix::delta_only()),
        ("strong", LevelMix::strong_only()),
        ("hybrid", LevelMix::hybrid()),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = scenario(11);
                cfg.strategy = Strategy::Rpcc;
                cfg.level_mix = mix;
                black_box(World::new(cfg).run().audit.served())
            })
        });
    }
    group.finish();
}

/// Ablation: single-tick demotion (the paper's literal Fig. 5 rule) vs
/// the default two-tick hysteresis.
fn bench_ablation_demotion_hysteresis(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_demotion_hysteresis");
    group.sample_size(10);
    for ticks in [1u8, 2, 4] {
        group.bench_function(format!("grace_{ticks}_ticks"), |b| {
            b.iter(|| {
                let mut cfg = scenario(12);
                cfg.strategy = Strategy::Rpcc;
                cfg.level_mix = LevelMix::strong_only();
                cfg.proto.demote_grace_ticks = ticks;
                let r = World::new(cfg).run();
                black_box((r.relay_gauge.mean() * 100.0) as u64 + r.traffic.transmissions())
            })
        });
    }
    group.finish();
}

/// Ablation: how the POLL ring's starting TTL trades traffic for misses.
fn bench_ablation_poll_ring(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_poll_ring");
    group.sample_size(10);
    for ttl in [1u8, 2, 4, 8] {
        group.bench_function(format!("first_ttl_{ttl}"), |b| {
            b.iter(|| {
                let mut cfg = scenario(13);
                cfg.strategy = Strategy::Rpcc;
                cfg.level_mix = LevelMix::strong_only();
                cfg.proto.poll_ttl = ttl;
                black_box(World::new(cfg).run().traffic.transmissions())
            })
        });
    }
    group.finish();
}

/// Raw handler throughput: how fast the RPCC state machine processes a
/// poll storm (no network, no world — pure protocol work).
fn bench_handler_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpcc_handler");
    group.bench_function("poll_storm_10k", |b| {
        let cfg = ProtocolConfig::default();
        b.iter(|| {
            let mut proto = Rpcc::new(&cfg, true);
            let mut cache = CacheStore::new(10);
            cache.insert(ItemId::new(1), Version::INITIAL, 1_024, SimTime::ZERO);
            let mut own = DataItem::new(ItemId::new(0), 1_024);
            let mut rng = SimRng::from_seed(1, 0);
            let mut outputs = 0usize;
            for i in 0..10_000u64 {
                let mut ctx = Ctx::new(
                    SimTime::from_millis(i),
                    NodeId::new(0),
                    &mut cache,
                    &mut own,
                    &mut rng,
                    &cfg,
                    1.0,
                    true,
                );
                proto.on_message(
                    &mut ctx,
                    NodeId::new((1 + i % 15) as u32),
                    mp2p_rpcc::ProtoMsg::Poll {
                        item: ItemId::new(0),
                        version: Version::INITIAL,
                        span: None,
                    },
                );
                outputs += ctx.take_outputs().len();
            }
            black_box(outputs)
        })
    });
    group.bench_function("coefficient_ticks_100k", |b| {
        b.iter(|| {
            let mut coeffs = Coefficients::new(0.2);
            for i in 0..100_000u32 {
                for _ in 0..(i % 8) {
                    coeffs.note_access();
                }
                coeffs.tick(i % 3 == 0, 0.9);
            }
            black_box(coeffs.car() + coeffs.cs() + coeffs.ce())
        })
    });
    group.finish();
}

/// Keep the query enum exhaustive in benches too.
fn bench_query_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpcc_query_paths");
    let cfg = ProtocolConfig::default();
    for level in ConsistencyLevel::ALL {
        group.bench_function(format!("on_query_{level}"), |b| {
            b.iter(|| {
                let mut proto = Rpcc::new(&cfg, true);
                let mut cache = CacheStore::new(10);
                cache.insert(ItemId::new(1), Version::INITIAL, 1_024, SimTime::ZERO);
                let mut own = DataItem::new(ItemId::new(0), 1_024);
                let mut rng = SimRng::from_seed(2, 0);
                let mut outputs = 0usize;
                for i in 0..1_000u64 {
                    let mut ctx = Ctx::new(
                        SimTime::from_millis(i),
                        NodeId::new(0),
                        &mut cache,
                        &mut own,
                        &mut rng,
                        &cfg,
                        1.0,
                        true,
                    );
                    proto.on_query(&mut ctx, mp2p_rpcc::QueryId(i), ItemId::new(1), level);
                    outputs += ctx.take_outputs().len();
                }
                black_box(outputs)
            })
        });
    }
    group.finish();
}

criterion_group!(
    protocols,
    bench_level_mixes,
    bench_ablation_demotion_hysteresis,
    bench_ablation_poll_ring,
    bench_handler_throughput,
    bench_query_paths
);
criterion_main!(protocols);
