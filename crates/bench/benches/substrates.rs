//! Micro-benchmarks of the substrates the simulation is built on: the
//! event queue, the RNG, mobility advancement, topology construction and
//! path queries, and the flooding/routing state machines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mp2p_mobility::{MobilityModel, Point, RandomWaypoint, Terrain};
use mp2p_net::{Frame, NetConfig, NetStack, Topology};
use mp2p_sim::{EventQueue, NodeId, SimDuration, SimRng, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            let mut rng = SimRng::from_seed(1, 0);
            for i in 0..10_000u64 {
                q.push(SimTime::from_millis(rng.uniform_u64(1_000_000)), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
    // Interleaved churn: steady-state push/pop traffic over a warm queue,
    // the access pattern `World::run` actually produces. Two sizes to
    // expose any super-linear behaviour in the binary heap.
    for &total in &[100_000u64, 1_000_000u64] {
        group.bench_function(format!("churn_{total}"), |b| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(1_024);
                let mut rng = SimRng::from_seed(5, 0);
                let mut now = 0u64;
                let mut sum = 0u64;
                // Keep ~512 events pending; each pop schedules a successor
                // at a later time, like handlers re-arming timers.
                for i in 0..512u64 {
                    q.push(SimTime::from_millis(rng.uniform_u64(1_000)), i);
                }
                for i in 512..total {
                    let (t, e) = q.pop().expect("queue stays warm");
                    now = now.max(t.as_millis());
                    sum = sum.wrapping_add(e);
                    q.push(SimTime::from_millis(now + 1 + rng.uniform_u64(1_000)), i);
                }
                while let Some((_, e)) = q.pop() {
                    sum = sum.wrapping_add(e);
                }
                black_box(sum)
            })
        });
    }
    group.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.bench_function("exponential_100k", |b| {
        let mut rng = SimRng::from_seed(2, 0);
        b.iter(|| {
            let mut total = 0.0;
            for _ in 0..100_000 {
                total += rng.exponential(20.0);
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_mobility(c: &mut Criterion) {
    let mut group = c.benchmark_group("mobility");
    group.bench_function("waypoint_advance_1h_in_1s_steps", |b| {
        b.iter(|| {
            let mut m = RandomWaypoint::new(
                Terrain::paper_default(),
                1.0,
                19.0,
                SimDuration::from_secs(10),
                SimRng::from_seed(3, 0),
            );
            let mut acc = 0.0;
            for step in 0..3_600u64 {
                let p = m.position_at(SimTime::from_millis(step * 1_000));
                acc += p.x;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_topology(c: &mut Criterion) {
    let mut rng = SimRng::from_seed(4, 0);
    let terrain = Terrain::paper_default();
    let positions: Vec<Point> = (0..50).map(|_| terrain.random_point(&mut rng)).collect();
    let up = vec![true; 50];
    let mut group = c.benchmark_group("topology");
    group.bench_function("build_50_nodes", |b| {
        b.iter(|| black_box(Topology::new(&positions, &up, 250.0)))
    });
    let topo = Topology::new(&positions, &up, 250.0);
    group.bench_function("shortest_path_all_pairs_from_0", |b| {
        b.iter(|| {
            let mut hops = 0u32;
            for i in 1..50u32 {
                if let Some(h) = topo.hops(NodeId::new(0), NodeId::new(i)) {
                    hops += h;
                }
            }
            black_box(hops)
        })
    });
    group.bench_function("within_hops_ttl3", |b| {
        b.iter(|| black_box(topo.within_hops(NodeId::new(0), 3).len()))
    });
    group.finish();
}

fn bench_netstack(c: &mut Criterion) {
    let mut group = c.benchmark_group("netstack");
    group.bench_function("flood_dedup_1k_frames", |b| {
        b.iter(|| {
            let mut stack: NetStack<u32> = NetStack::new(NodeId::new(0), NetConfig::default());
            let mut actions = 0usize;
            for seq in 0..1_000u64 {
                let frame = Frame::Flood {
                    id: mp2p_net::FloodId {
                        origin: NodeId::new(1),
                        seq,
                    },
                    ttl: 3,
                    hops: 1,
                    payload: mp2p_net::NetPayload::App(seq as u32),
                    size: 48,
                };
                actions += stack
                    .on_frame(SimTime::from_millis(seq), NodeId::new(1), frame)
                    .len();
                // Duplicate: must be suppressed.
                let dup = Frame::Flood {
                    id: mp2p_net::FloodId {
                        origin: NodeId::new(1),
                        seq,
                    },
                    ttl: 3,
                    hops: 2,
                    payload: mp2p_net::NetPayload::App(seq as u32),
                    size: 48,
                };
                actions += stack
                    .on_frame(SimTime::from_millis(seq), NodeId::new(2), dup)
                    .len();
            }
            black_box(actions)
        })
    });
    group.finish();
}

criterion_group!(
    substrates,
    bench_event_queue,
    bench_rng,
    bench_mobility,
    bench_topology,
    bench_netstack
);
criterion_main!(substrates);
