//! Plain-text tables and CSV emission for the experiment binaries.

use std::io::Write;
use std::path::Path;

use crate::sweep::Series;

/// Renders a generic aligned text table.
///
/// # Example
///
/// ```
/// use mp2p_experiments::render_table;
///
/// let out = render_table(
///     &["Parameter", "Value"],
///     &[vec!["N_Peers".into(), "50".into()], vec!["C_Num".into(), "10".into()]],
/// );
/// assert!(out.contains("N_Peers"));
/// assert!(out.lines().count() >= 4);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match header width");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let rule = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    rule(&mut out);
    for (i, h) in headers.iter().enumerate() {
        out.push_str(&format!("| {:width$} ", h, width = widths[i]));
    }
    out.push_str("|\n");
    rule(&mut out);
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("| {:width$} ", cell, width = widths[i]));
        }
        out.push_str("|\n");
    }
    rule(&mut out);
    out
}

/// Renders one figure's series as a table: one row per x value, one
/// column per strategy, selecting the metric with `value`.
pub fn render_series_table<F: Fn(&crate::sweep::MeasuredPoint) -> f64>(
    x_label: &str,
    series: &[Series],
    value: F,
    unit: &str,
) -> String {
    let mut headers: Vec<&str> = vec![x_label];
    for s in series {
        headers.push(s.name);
    }
    let x_count = series.first().map(|s| s.points.len()).unwrap_or(0);
    let mut rows = Vec::with_capacity(x_count);
    for i in 0..x_count {
        let mut row = vec![format_num(series[0].points[i].x)];
        for s in series {
            row.push(format!("{}{unit}", format_num(value(&s.points[i]))));
        }
        rows.push(row);
    }
    render_table(&headers, &rows)
}

fn format_num(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Writes a figure's full data as CSV (all metrics, one row per
/// strategy × x).
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_csv(path: &Path, figure: &str, series: &[Series]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "figure,strategy,x,traffic_per_min,latency_s,latency_p95_s,fail_rate,stale_frac,relay_mean,transmissions"
    )?;
    for s in series {
        for p in &s.points {
            writeln!(
                f,
                "{figure},{},{},{:.3},{:.4},{:.4},{:.4},{:.4},{:.2},{}",
                s.name,
                p.x,
                p.traffic_per_min,
                p.latency_s,
                p.latency_p95_s,
                p.fail_rate,
                p.stale_frac,
                p.relay_mean,
                p.transmissions
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::MeasuredPoint;

    fn point(x: f64, t: f64) -> MeasuredPoint {
        MeasuredPoint {
            x,
            traffic_per_min: t,
            latency_s: 0.5,
            latency_p95_s: 1.0,
            fail_rate: 0.0,
            stale_frac: 0.0,
            relay_mean: 2.0,
            transmissions: 100,
        }
    }

    #[test]
    fn table_is_aligned() {
        let out = render_table(
            &["a", "bee"],
            &[
                vec!["x".into(), "1".into()],
                vec!["yyyy".into(), "22".into()],
            ],
        );
        let widths: Vec<usize> = out.lines().map(str::len).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged table:\n{out}"
        );
    }

    #[test]
    fn series_table_has_row_per_x() {
        let series = vec![
            Series {
                name: "Pull",
                points: vec![point(1.0, 100.0), point(2.0, 50.0)],
            },
            Series {
                name: "Push",
                points: vec![point(1.0, 20.0), point(2.0, 20.0)],
            },
        ];
        let out = render_series_table("interval", &series, |p| p.traffic_per_min, "");
        assert!(out.contains("Pull") && out.contains("Push"));
        assert_eq!(
            out.matches('\n').count(),
            6,
            "rule + header + rule + 2 rows + rule:\n{out}"
        );
    }

    #[test]
    fn csv_round_trips_headers() {
        let dir = std::env::temp_dir().join("mp2p_csv_test");
        let path = dir.join("fig.csv");
        let series = vec![Series {
            name: "RPCC(SC)",
            points: vec![point(1.0, 10.0)],
        }];
        write_csv(&path, "fig7a", &series).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("figure,strategy,x,"));
        assert!(text.contains("fig7a,RPCC(SC),1,"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["only-one".into()]]);
    }
}
