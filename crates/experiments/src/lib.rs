//! Experiment harness: the paper's evaluation (Section 5) as runnable
//! sweeps.
//!
//! Every table and figure of the paper maps to a function here and a
//! binary under `src/bin/`:
//!
//! | Paper artefact | Function | Binary |
//! |---|---|---|
//! | Table 1 (simulation parameters) | [`table1_rows`] | `table1` |
//! | Fig. 7(a) traffic vs. update interval | [`fig7a`] | `fig7 a` |
//! | Fig. 7(b) traffic vs. query interval | [`fig7b`] | `fig7 b` |
//! | Fig. 7(c) traffic vs. cache number | [`fig7c`] | `fig7 c` |
//! | Fig. 8(a–c) latency, same sweeps | [`fig8a`]/[`fig8b`]/[`fig8c`] | `fig8 a|b|c` |
//! | Fig. 9(a/b) impact of invalidation TTL | [`fig9`] | `fig9` |
//!
//! Each sweep runs the full simulation once per (strategy, x-value, seed)
//! and averages across seeds. `RunOptions::quick()` uses shortened runs
//! for interactive use; `RunOptions::full()` reproduces the paper's five
//! simulated hours.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod cli;
mod figures;
pub mod matrix;
pub mod perf;
mod report;
pub mod scenario;
mod sweep;

pub use analysis::{
    analyze_file, analyze_journal, crosscheck, crosscheck_consistency, crosscheck_explain,
    explain_stale_serves, render_analysis, render_consistency, render_explain, render_health,
    ConsistencyReportTotals, ConsistencyTimeline, DivergenceSample, FrameBirth, Incident,
    NodeHealth, ProvenanceGraph, ReportTotals, SpanTotals, TraceAnalysis,
};
pub use figures::{fig7a, fig7b, fig7c, fig8a, fig8b, fig8c, fig9, table1_rows, FigureData};
pub use matrix::{
    compare_matrix, gate_violations, run_cell, run_matrix, CellRegression, GateAxis, MatrixCell,
    MatrixReport, MATRIX_SCHEMA,
};
pub use perf::{
    bench_config, bench_terrain, compare, parse_strategy, run_bench_point, strategy_token,
    BenchSnapshot, BucketShare, Comparison, AREA_PER_PEER_M2, BENCH_SCHEMA,
};
pub use report::{render_series_table, render_table, write_csv};
pub use scenario::{GateFloors, MobilitySpec, Scenario, ScenarioError, SCENARIO_SCHEMA};
pub use sweep::{
    extended_strategies, paper_strategies, run_parallel, sweep, MeasuredPoint, RunOptions, Series,
    StrategySpec,
};
