//! Shared command-line parsing for the experiment binaries.
//!
//! Every binary under `src/bin/` historically hand-rolled the same
//! `--flag value` scanning and the same token tables (strategy names,
//! level mixes, fault presets). This module is the single home for all
//! of it: [`Args`] wraps the raw argument vector with typed accessors,
//! and the `parse_*` functions map the CLI token vocabularies onto the
//! core types. `run`, `compare`, `chaos` and `matrix` all parse through
//! here, so a token accepted by one binary is accepted — with the same
//! spelling and the same error message — by all of them.

use mp2p_net::FaultPlan;
use mp2p_rpcc::{LevelMix, MobilityKind, Strategy};
use mp2p_sim::SimDuration;

use crate::perf;

/// The raw argument vector with typed, flag-oriented accessors.
///
/// Flags are scanned positionally (`--flag value`), matching the
/// historical behaviour of the binaries: a repeated flag resolves to its
/// first occurrence.
#[derive(Debug, Clone)]
pub struct Args {
    argv: Vec<String>,
}

impl Args {
    /// Captures the process arguments (program name skipped).
    pub fn from_env() -> Self {
        Args {
            argv: std::env::args().skip(1).collect(),
        }
    }

    /// Wraps an explicit argument vector (used by tests).
    pub fn new(argv: Vec<String>) -> Self {
        Args { argv }
    }

    /// True when the bare flag is present anywhere.
    pub fn flag(&self, name: &str) -> bool {
        self.argv.iter().any(|a| a == name)
    }

    /// The value following `--name`, if any.
    pub fn value_of(&self, name: &str) -> Option<&str> {
        self.argv
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.argv.get(i + 1))
            .map(String::as_str)
    }

    /// The value following `--name` parsed as `f64`.
    pub fn f64_of(&self, name: &str) -> Result<Option<f64>, String> {
        match self.value_of(name) {
            None => Ok(None),
            Some(text) => text
                .parse()
                .map(Some)
                .map_err(|_| format!("{name} expects a number, got {text:?}")),
        }
    }

    /// The value following `--name` parsed as `u64`.
    pub fn u64_of(&self, name: &str) -> Result<Option<u64>, String> {
        match self.value_of(name) {
            None => Ok(None),
            Some(text) => text
                .parse()
                .map(Some)
                .map_err(|_| format!("{name} expects a non-negative integer, got {text:?}")),
        }
    }

    /// The value following `--name` parsed as `usize`.
    pub fn usize_of(&self, name: &str) -> Result<Option<usize>, String> {
        match self.value_of(name) {
            None => Ok(None),
            Some(text) => text
                .parse()
                .map(Some)
                .map_err(|_| format!("{name} expects a non-negative integer, got {text:?}")),
        }
    }
}

/// Parses a strategy token (`rpcc`, `push`, `pull`, `push-ap`).
pub fn parse_strategy(token: &str) -> Result<Strategy, String> {
    perf::parse_strategy(token)
        .ok_or_else(|| format!("unknown strategy {token:?} (rpcc|push|pull|push-ap)"))
}

/// Parses a comma-separated strategy list (`rpcc,push,pull`).
pub fn parse_strategies(list: &str) -> Result<Vec<Strategy>, String> {
    let strategies: Vec<Strategy> = list
        .split(',')
        .filter(|t| !t.is_empty())
        .map(parse_strategy)
        .collect::<Result<_, _>>()?;
    if strategies.is_empty() {
        return Err("empty strategy list".into());
    }
    Ok(strategies)
}

/// Parses a level-mix token (`sc`, `dc`, `wc`, `hy`).
pub fn parse_mix(token: &str) -> Result<LevelMix, String> {
    match token {
        "sc" => Ok(LevelMix::strong_only()),
        "dc" => Ok(LevelMix::delta_only()),
        "wc" => Ok(LevelMix::weak_only()),
        "hy" => Ok(LevelMix::hybrid()),
        other => Err(format!("unknown mix {other:?} (sc|dc|wc|hy)")),
    }
}

/// Parses a mobility-model token into a [`MobilityKind`].
///
/// The token is the model name with optional colon-separated numeric
/// parameters; omitted parameters take the documented defaults:
///
/// | token | parameters | defaults |
/// |---|---|---|
/// | `waypoint[:MIN:MAX:PAUSE]` | speeds m/s, max pause s | `0.5:2.5:30` (Table 1) |
/// | `walk[:MIN:MAX:EPOCH]` | speeds m/s, epoch s | `0.5:2.5:60` |
/// | `manhattan[:BLOCK:SPEED]` | block m, speed m/s | `150:8` |
/// | `stationary` | — | — |
pub fn parse_mobility(token: &str) -> Result<MobilityKind, String> {
    let mut parts = token.split(':');
    let model = parts.next().unwrap_or("");
    let nums: Vec<f64> = parts
        .map(|p| {
            p.parse()
                .map_err(|_| format!("mobility parameter {p:?} is not a number"))
        })
        .collect::<Result<_, _>>()?;
    let num = |i: usize, default: f64| nums.get(i).copied().unwrap_or(default);
    let expect_at_most = |n: usize| -> Result<(), String> {
        if nums.len() > n {
            Err(format!(
                "mobility model {model:?} takes at most {n} parameters, got {}",
                nums.len()
            ))
        } else {
            Ok(())
        }
    };
    match model {
        "waypoint" => {
            expect_at_most(3)?;
            Ok(MobilityKind::Waypoint {
                speed_min: num(0, 0.5),
                speed_max: num(1, 2.5),
                max_pause: SimDuration::from_secs_f64(num(2, 30.0)),
            })
        }
        "walk" => {
            expect_at_most(3)?;
            Ok(MobilityKind::Walk {
                speed_min: num(0, 0.5),
                speed_max: num(1, 2.5),
                epoch: SimDuration::from_secs_f64(num(2, 60.0)),
            })
        }
        "manhattan" => {
            expect_at_most(2)?;
            Ok(MobilityKind::Manhattan {
                block: num(0, 150.0),
                speed: num(1, 8.0),
            })
        }
        "stationary" => {
            expect_at_most(0)?;
            Ok(MobilityKind::Stationary)
        }
        other => Err(format!(
            "unknown mobility model {other:?} (waypoint|walk|manhattan|stationary)"
        )),
    }
}

/// Parses a fault-preset name into a plan scaled to `sim_time`.
pub fn parse_faults(name: &str, sim_time: SimDuration) -> Result<FaultPlan, String> {
    FaultPlan::preset(name, sim_time).ok_or_else(|| {
        format!(
            "unknown fault plan {name:?} (none|{})",
            FaultPlan::PRESETS.join("|")
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::new(list.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn typed_accessors_parse_and_reject() {
        let a = args(&["--peers", "50", "--loss", "0.05", "--profile"]);
        assert_eq!(a.usize_of("--peers").unwrap(), Some(50));
        assert_eq!(a.f64_of("--loss").unwrap(), Some(0.05));
        assert!(a.flag("--profile"));
        assert!(!a.flag("--missing"));
        assert_eq!(a.u64_of("--missing").unwrap(), None);
        let bad = args(&["--peers", "many"]);
        assert!(bad.usize_of("--peers").is_err());
    }

    #[test]
    fn strategy_and_mix_tokens() {
        assert_eq!(parse_strategy("rpcc").unwrap(), Strategy::Rpcc);
        assert_eq!(
            parse_strategy("push-ap").unwrap(),
            Strategy::PushAdaptivePull
        );
        assert!(parse_strategy("gossip").is_err());
        assert_eq!(
            parse_strategies("rpcc,push,pull").unwrap(),
            vec![Strategy::Rpcc, Strategy::Push, Strategy::Pull]
        );
        assert!(parse_strategies("").is_err());
        assert_eq!(parse_mix("hy").unwrap(), LevelMix::hybrid());
        assert!(parse_mix("zz").is_err());
    }

    #[test]
    fn mobility_tokens_with_and_without_parameters() {
        assert_eq!(
            parse_mobility("manhattan").unwrap(),
            MobilityKind::Manhattan {
                block: 150.0,
                speed: 8.0
            }
        );
        assert_eq!(
            parse_mobility("manhattan:100:12.5").unwrap(),
            MobilityKind::Manhattan {
                block: 100.0,
                speed: 12.5
            }
        );
        assert_eq!(
            parse_mobility("waypoint:1:3:10").unwrap(),
            MobilityKind::Waypoint {
                speed_min: 1.0,
                speed_max: 3.0,
                max_pause: SimDuration::from_secs(10),
            }
        );
        assert_eq!(
            parse_mobility("stationary").unwrap(),
            MobilityKind::Stationary
        );
        assert!(parse_mobility("stationary:1").is_err());
        assert!(parse_mobility("manhattan:1:2:3").is_err());
        assert!(parse_mobility("manhattan:fast").is_err());
        assert!(parse_mobility("teleport").is_err());
    }

    #[test]
    fn fault_preset_tokens() {
        let sim = SimDuration::from_mins(10);
        assert_eq!(parse_faults("none", sim).unwrap().label, "none");
        for preset in FaultPlan::PRESETS {
            assert_eq!(parse_faults(preset, sim).unwrap().label, preset);
        }
        assert!(parse_faults("meteor", sim).is_err());
    }
}
