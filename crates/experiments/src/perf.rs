//! `BENCH_*.json` performance snapshots and the regression comparator.
//!
//! The `perf` binary runs a fixed strategy×size matrix with
//! [`mp2p_rpcc::World::enable_profiling`] switched on and freezes each
//! run's [`mp2p_sim::PerfReport`] into a schema-versioned
//! [`BenchSnapshot`]. A later run on the same machine reloads the
//! snapshot with [`BenchSnapshot::from_json`], reproduces the scenario
//! from its recorded knobs, and [`compare`]s throughput: events/sec
//! below `baseline × (1 − tolerance)` is a regression (CI exits
//! non-zero on it).
//!
//! Snapshots are wall-clock measurements, so they are only comparable
//! across runs on comparable hardware; the schema field exists so a
//! future layout change refuses old files instead of misreading them.

use mp2p_mobility::Terrain;
use mp2p_rpcc::{Strategy, World, WorldConfig};
use mp2p_sim::{PerfReport, QueueStats, SimDuration};
use mp2p_trace::json::{self, Value};

/// Version tag written into every snapshot. Bump on layout changes.
pub const BENCH_SCHEMA: u64 = 1;

/// Square metres of flatland per peer in the paper's Table 1 scenario:
/// 1500 m × 1500 m shared by 50 peers. Large-n bench scenarios keep this
/// density so hop counts and contention stay comparable as `n` grows.
pub const AREA_PER_PEER_M2: f64 = 45_000.0;

/// Terrain of a bench scenario. Up to the paper's 50 peers this is the
/// Table 1 flatland unchanged (so the historical 25- and 50-peer matrix
/// points keep their exact scenarios); beyond 50 peers the square is
/// scaled to hold [`AREA_PER_PEER_M2`] constant — 2 000 peers get a
/// 9.5 km side, 5 000 peers 15 km.
pub fn bench_terrain(peers: usize) -> Terrain {
    if peers <= 50 {
        Terrain::paper_default()
    } else {
        let side = (peers as f64 * AREA_PER_PEER_M2).sqrt();
        Terrain::new(side, side)
    }
}

/// The full scenario of one bench matrix point. This is the *only* place
/// bench scenarios are constructed: snapshot creation and `--baseline`
/// replay both call it, so a snapshot's recorded knobs (strategy, peers,
/// duration, warm-up, seed) always reproduce the same world — including
/// the density-scaled terrain, which is derived from `peers` rather than
/// stored.
pub fn bench_config(
    strategy: Strategy,
    peers: usize,
    sim: SimDuration,
    warmup: SimDuration,
    seed: u64,
) -> WorldConfig {
    let mut cfg = WorldConfig::paper_default(seed);
    cfg.strategy = strategy;
    cfg.n_peers = peers;
    cfg.terrain = bench_terrain(peers);
    cfg.sim_time = sim;
    cfg.warmup = warmup;
    cfg
}

/// Runs one profiled matrix point and freezes its snapshot.
pub fn run_bench_point(
    strategy: Strategy,
    peers: usize,
    sim: SimDuration,
    warmup: SimDuration,
    seed: u64,
) -> BenchSnapshot {
    let name = format!("{}_{}", strategy_token(strategy), peers);
    let mut world = World::new(bench_config(strategy, peers, sim, warmup, seed));
    world.enable_profiling();
    let report = world.run();
    let perf = report.perf.expect("profiling was enabled");
    BenchSnapshot::from_run(&name, strategy, peers, warmup.as_millis(), seed, &perf)
}

/// CLI token of a strategy (`rpcc`, `push`, `pull`, `push-ap`) — also
/// the snapshot's file-name stem, so it is lowercase and path-safe.
pub fn strategy_token(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::Rpcc => "rpcc",
        Strategy::Push => "push",
        Strategy::Pull => "pull",
        Strategy::PushAdaptivePull => "push-ap",
    }
}

/// Inverse of [`strategy_token`].
pub fn parse_strategy(token: &str) -> Option<Strategy> {
    match token {
        "rpcc" => Some(Strategy::Rpcc),
        "push" => Some(Strategy::Push),
        "pull" => Some(Strategy::Pull),
        "push-ap" => Some(Strategy::PushAdaptivePull),
        _ => None,
    }
}

/// One profiler bucket frozen into a snapshot (name, invocation count,
/// wall seconds, share of total measured wall time).
#[derive(Debug, Clone, PartialEq)]
pub struct BucketShare {
    /// Bucket label (`event:rx`, `msg:POLL`, ...).
    pub name: String,
    /// Scopes closed under this label.
    pub count: u64,
    /// Wall-clock seconds attributed to the label.
    pub wall_secs: f64,
    /// Fraction of all measured wall time, in `[0, 1]`.
    pub share: f64,
}

/// One frozen benchmark result: the scenario knobs needed to reproduce
/// the run plus the measured perf metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchSnapshot {
    /// Matrix-point name (`rpcc_50`); the file is `BENCH_<name>.json`.
    pub name: String,
    /// Strategy token (`rpcc`, `push`, ...).
    pub strategy: String,
    /// Peer count of the scenario.
    pub peers: u64,
    /// Simulated duration in milliseconds.
    pub sim_ms: u64,
    /// Warm-up offset in milliseconds.
    pub warmup_ms: u64,
    /// Master seed of the run.
    pub seed: u64,
    /// Wall-clock seconds the event loop took.
    pub wall_secs: f64,
    /// World events handled.
    pub events: u64,
    /// Event-loop throughput (the regression-gated figure).
    pub events_per_sec: f64,
    /// Simulated seconds per wall-clock second.
    pub sim_time_ratio: f64,
    /// Event-queue telemetry (push/pop totals, high-water marks).
    pub queue: QueueStats,
    /// MAC-level frames transmitted over the run.
    pub frames_sent: u64,
    /// Per-bucket wall-time breakdown, hottest first.
    pub buckets: Vec<BucketShare>,
}

impl BenchSnapshot {
    /// Freezes one profiled run. `perf` must come from the same run the
    /// scenario knobs describe.
    pub fn from_run(
        name: &str,
        strategy: Strategy,
        peers: usize,
        warmup_ms: u64,
        seed: u64,
        perf: &PerfReport,
    ) -> Self {
        BenchSnapshot {
            name: name.to_owned(),
            strategy: strategy_token(strategy).to_owned(),
            peers: peers as u64,
            sim_ms: perf.sim_millis,
            warmup_ms,
            seed,
            wall_secs: perf.wall_secs(),
            events: perf.events(),
            events_per_sec: perf.events_per_sec(),
            sim_time_ratio: perf.sim_time_ratio(),
            queue: perf.queue,
            frames_sent: perf.frames_sent,
            buckets: perf
                .buckets
                .iter()
                .map(|b| BucketShare {
                    name: b.name.to_owned(),
                    count: b.count,
                    wall_secs: b.secs(),
                    share: perf.share(b),
                })
                .collect(),
        }
    }

    /// Serialises the snapshot as one JSON object, `bench_schema` first.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            "{{\"bench_schema\":{BENCH_SCHEMA},\"name\":{},\"strategy\":{},\"peers\":{},\"sim_ms\":{},\"warmup_ms\":{},\"seed\":{}",
            json::escape(&self.name),
            json::escape(&self.strategy),
            self.peers,
            self.sim_ms,
            self.warmup_ms,
            self.seed,
        );
        let _ = write!(
            s,
            ",\"wall_secs\":{},\"events\":{},\"events_per_sec\":{},\"sim_time_ratio\":{}",
            self.wall_secs, self.events, self.events_per_sec, self.sim_time_ratio,
        );
        let _ = write!(
            s,
            ",\"queue\":{{\"pushes\":{},\"pops\":{},\"peak_len\":{},\"peak_capacity\":{}}},\"frames_sent\":{}",
            self.queue.pushes,
            self.queue.pops,
            self.queue.peak_len,
            self.queue.peak_capacity,
            self.frames_sent,
        );
        s.push_str(",\"buckets\":[");
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":{},\"count\":{},\"wall_secs\":{},\"share\":{}}}",
                json::escape(&b.name),
                b.count,
                b.wall_secs,
                b.share,
            );
        }
        s.push_str("]}");
        s
    }

    /// Parses a snapshot back, refusing unknown schema versions and any
    /// structural mismatch with a descriptive error.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).ok_or("snapshot is not valid JSON")?;
        let schema = v
            .get("bench_schema")
            .and_then(Value::as_u64)
            .ok_or("snapshot has no numeric bench_schema field")?;
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "snapshot schema {schema} unsupported (this build speaks {BENCH_SCHEMA})"
            ));
        }
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field {key:?}"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing integer field {key:?}"))
        };
        let f64_field = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let queue = {
            let q = v.get("queue").ok_or("missing queue object")?;
            let qfield = |key: &str| -> Result<u64, String> {
                q.get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("missing queue field {key:?}"))
            };
            QueueStats {
                pushes: qfield("pushes")?,
                pops: qfield("pops")?,
                peak_len: qfield("peak_len")? as usize,
                peak_capacity: qfield("peak_capacity")? as usize,
            }
        };
        let buckets = match v.get("buckets") {
            Some(Value::Arr(items)) => items
                .iter()
                .map(|b| {
                    Ok(BucketShare {
                        name: b
                            .get("name")
                            .and_then(Value::as_str)
                            .ok_or("bucket without name")?
                            .to_owned(),
                        count: b
                            .get("count")
                            .and_then(Value::as_u64)
                            .ok_or("bucket without count")?,
                        wall_secs: b
                            .get("wall_secs")
                            .and_then(Value::as_f64)
                            .ok_or("bucket without wall_secs")?,
                        share: b
                            .get("share")
                            .and_then(Value::as_f64)
                            .ok_or("bucket without share")?,
                    })
                })
                .collect::<Result<Vec<_>, &str>>()
                .map_err(str::to_owned)?,
            _ => return Err("missing buckets array".to_owned()),
        };
        Ok(BenchSnapshot {
            name: str_field("name")?,
            strategy: str_field("strategy")?,
            peers: u64_field("peers")?,
            sim_ms: u64_field("sim_ms")?,
            warmup_ms: u64_field("warmup_ms")?,
            seed: u64_field("seed")?,
            wall_secs: f64_field("wall_secs")?,
            events: u64_field("events")?,
            events_per_sec: f64_field("events_per_sec")?,
            sim_time_ratio: f64_field("sim_time_ratio")?,
            queue,
            frames_sent: u64_field("frames_sent")?,
            buckets,
        })
    }
}

/// Verdict of one baseline-vs-measured throughput comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Comparison {
    /// Baseline events/sec.
    pub baseline_eps: f64,
    /// Freshly measured events/sec.
    pub measured_eps: f64,
    /// The pass floor: `baseline × (1 − tolerance)`.
    pub floor: f64,
}

impl Comparison {
    /// True when the measurement fell below the floor.
    pub fn regressed(&self) -> bool {
        self.measured_eps < self.floor
    }

    /// Measured/baseline ratio (> 1 means faster than baseline).
    pub fn ratio(&self) -> f64 {
        if self.baseline_eps == 0.0 {
            f64::INFINITY
        } else {
            self.measured_eps / self.baseline_eps
        }
    }
}

/// Compares a fresh measurement against a stored baseline.
///
/// Errs — without a verdict — when the two snapshots describe different
/// scenarios (strategy, peer count, simulated duration or seed differ):
/// throughput numbers from different workloads must never be compared.
/// `tolerance` is the allowed fractional slowdown, e.g. `0.15` passes
/// anything no more than 15 % below baseline.
pub fn compare(
    baseline: &BenchSnapshot,
    measured: &BenchSnapshot,
    tolerance: f64,
) -> Result<Comparison, String> {
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("tolerance must be in [0, 1), got {tolerance}"));
    }
    for (what, base, fresh) in [
        (
            "strategy",
            baseline.strategy.as_str(),
            measured.strategy.as_str(),
        ),
        ("name", baseline.name.as_str(), measured.name.as_str()),
    ] {
        if base != fresh {
            return Err(format!("snapshot {what} differs: {base:?} vs {fresh:?}"));
        }
    }
    for (what, base, fresh) in [
        ("peers", baseline.peers, measured.peers),
        ("sim_ms", baseline.sim_ms, measured.sim_ms),
        ("warmup_ms", baseline.warmup_ms, measured.warmup_ms),
        ("seed", baseline.seed, measured.seed),
    ] {
        if base != fresh {
            return Err(format!("snapshot {what} differs: {base} vs {fresh}"));
        }
    }
    Ok(Comparison {
        baseline_eps: baseline.events_per_sec,
        measured_eps: measured.events_per_sec,
        floor: baseline.events_per_sec * (1.0 - tolerance),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchSnapshot {
        BenchSnapshot {
            name: "rpcc_50".into(),
            strategy: "rpcc".into(),
            peers: 50,
            sim_ms: 120_000,
            warmup_ms: 30_000,
            seed: 42,
            wall_secs: 0.5,
            events: 100_000,
            events_per_sec: 200_000.0,
            sim_time_ratio: 240.0,
            queue: QueueStats {
                pushes: 120_000,
                pops: 100_100,
                peak_len: 900,
                peak_capacity: 1024,
            },
            frames_sent: 40_000,
            buckets: vec![
                BucketShare {
                    name: "event:rx".into(),
                    count: 60_000,
                    wall_secs: 0.3,
                    share: 0.6,
                },
                BucketShare {
                    name: "msg:POLL".into(),
                    count: 9_000,
                    wall_secs: 0.2,
                    share: 0.4,
                },
            ],
        }
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let snap = sample();
        let json = snap.to_json();
        assert!(json.starts_with("{\"bench_schema\":1,\"name\":\"rpcc_50\""));
        assert!(mp2p_trace::json::is_valid(&json));
        let back = BenchSnapshot::from_json(&json).expect("roundtrip");
        assert_eq!(back, snap);
    }

    #[test]
    fn wrong_schema_and_garbage_are_refused() {
        let future = sample()
            .to_json()
            .replacen("\"bench_schema\":1", "\"bench_schema\":99", 1);
        let err = BenchSnapshot::from_json(&future).unwrap_err();
        assert!(err.contains("schema 99"), "{err}");
        assert!(BenchSnapshot::from_json("not json").is_err());
        assert!(BenchSnapshot::from_json("{}").is_err());
    }

    #[test]
    fn double_speed_baseline_is_a_regression() {
        // The acceptance case: a baseline claiming 2× our throughput
        // must trip the gate at any sane tolerance.
        let measured = sample();
        let mut baseline = sample();
        baseline.events_per_sec = measured.events_per_sec * 2.0;
        let cmp = compare(&baseline, &measured, 0.15).expect("same scenario");
        assert!(cmp.regressed());
        assert!(cmp.ratio() < 0.51);
        // And a matching baseline passes at the same tolerance.
        let cmp = compare(&sample(), &measured, 0.15).expect("same scenario");
        assert!(!cmp.regressed());
    }

    #[test]
    fn tolerance_sets_the_floor() {
        let mut slower = sample();
        slower.events_per_sec = sample().events_per_sec * 0.9;
        let lenient = compare(&sample(), &slower, 0.15).unwrap();
        assert!(!lenient.regressed(), "10% down is inside a 15% band");
        let strict = compare(&sample(), &slower, 0.05).unwrap();
        assert!(strict.regressed(), "10% down is outside a 5% band");
    }

    #[test]
    fn scenario_mismatch_is_an_error_not_a_verdict() {
        let mut other = sample();
        other.peers = 25;
        assert!(compare(&sample(), &other, 0.15).is_err());
        let mut other = sample();
        other.strategy = "push".into();
        assert!(compare(&sample(), &other, 0.15).is_err());
        assert!(compare(&sample(), &sample(), 1.5).is_err());
    }

    #[test]
    fn bench_terrain_keeps_density() {
        // Paper scale: Table 1 terrain verbatim.
        assert_eq!(bench_terrain(25), Terrain::paper_default());
        assert_eq!(bench_terrain(50), Terrain::paper_default());
        // Large n: the square grows to hold area/peer constant.
        for peers in [500usize, 2_000, 5_000] {
            let t = bench_terrain(peers);
            assert_eq!(t.width(), t.height(), "scaled terrain stays square");
            let per_peer = t.width() * t.height() / peers as f64;
            assert!(
                (per_peer - AREA_PER_PEER_M2).abs() < 1.0,
                "density drifted: {per_peer} m²/peer at n={peers}"
            );
        }
        // And the config builder wires the terrain through validation.
        let cfg = bench_config(
            Strategy::Rpcc,
            500,
            SimDuration::from_mins(1),
            SimDuration::from_secs(15),
            42,
        );
        cfg.validate();
        assert_eq!(cfg.terrain, bench_terrain(500));
    }

    #[test]
    fn strategy_tokens_roundtrip() {
        for strategy in [
            Strategy::Rpcc,
            Strategy::Push,
            Strategy::Pull,
            Strategy::PushAdaptivePull,
        ] {
            assert_eq!(parse_strategy(strategy_token(strategy)), Some(strategy));
        }
        assert_eq!(parse_strategy("bogus"), None);
    }
}
