//! Parameter-sweep execution: run the world once per (strategy, x, seed),
//! average across seeds, in parallel across OS threads.

use std::sync::Mutex;

use mp2p_rpcc::{LevelMix, RunReport, Strategy, World, WorldConfig};
use mp2p_sim::SimDuration;

/// One strategy curve of a figure: a consistency strategy plus the query
/// level mix it is driven with.
#[derive(Debug, Clone, Copy)]
pub struct StrategySpec {
    /// Curve label ("Pull", "RPCC(SC)", …).
    pub name: &'static str,
    /// The protocol under test.
    pub strategy: Strategy,
    /// The consistency mix of the query load.
    pub mix: LevelMix,
}

/// The six curves of Fig. 7/8: Pull, Push and the four RPCC variants.
pub fn paper_strategies() -> Vec<StrategySpec> {
    vec![
        StrategySpec {
            name: "Pull",
            strategy: Strategy::Pull,
            mix: LevelMix::strong_only(),
        },
        StrategySpec {
            name: "Push",
            strategy: Strategy::Push,
            mix: LevelMix::strong_only(),
        },
        StrategySpec {
            name: "RPCC(SC)",
            strategy: Strategy::Rpcc,
            mix: LevelMix::strong_only(),
        },
        StrategySpec {
            name: "RPCC(DC)",
            strategy: Strategy::Rpcc,
            mix: LevelMix::delta_only(),
        },
        StrategySpec {
            name: "RPCC(WC)",
            strategy: Strategy::Rpcc,
            mix: LevelMix::weak_only(),
        },
        StrategySpec {
            name: "RPCC(HY)",
            strategy: Strategy::Rpcc,
            mix: LevelMix::hybrid(),
        },
    ]
}

/// The paper's curves plus Lan et al.'s third strategy (push with
/// adaptive pull), which the paper cites but never plots.
pub fn extended_strategies() -> Vec<StrategySpec> {
    let mut specs = paper_strategies();
    specs.push(StrategySpec {
        name: "Push+AP",
        strategy: Strategy::PushAdaptivePull,
        mix: LevelMix::strong_only(),
    });
    specs
}

/// Sweep execution options.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Simulated duration per run.
    pub sim_time: SimDuration,
    /// Warm-up excluded from metrics.
    pub warmup: SimDuration,
    /// Independent seeds averaged per point.
    pub seeds: u64,
    /// First seed.
    pub base_seed: u64,
}

impl RunOptions {
    /// Shortened runs for interactive use: 45 simulated minutes, 2 seeds.
    pub fn quick() -> Self {
        RunOptions {
            sim_time: SimDuration::from_mins(45),
            warmup: SimDuration::from_mins(10),
            seeds: 2,
            base_seed: 42,
        }
    }

    /// The paper's full scale: 5 simulated hours, 3 seeds.
    pub fn full() -> Self {
        RunOptions {
            sim_time: SimDuration::from_hours(5),
            warmup: SimDuration::from_mins(10),
            seeds: 3,
            base_seed: 42,
        }
    }

    /// Minimal smoke-test runs (used by integration tests).
    pub fn smoke() -> Self {
        RunOptions {
            sim_time: SimDuration::from_mins(12),
            warmup: SimDuration::from_mins(3),
            seeds: 1,
            base_seed: 7,
        }
    }
}

/// Seed-averaged measurements at one sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredPoint {
    /// The sweep's x value (minutes, seconds, items or hops).
    pub x: f64,
    /// Transmissions per simulated minute (Fig. 7/9(a) y-axis).
    pub traffic_per_min: f64,
    /// Mean query latency in seconds (Fig. 8/9(b) y-axis).
    pub latency_s: f64,
    /// Approximate 95th-percentile latency in seconds.
    pub latency_p95_s: f64,
    /// Fraction of queries abandoned.
    pub fail_rate: f64,
    /// Fraction of served answers that were behind the master copy.
    pub stale_frac: f64,
    /// Mean relay-peer items held across the network (RPCC only).
    pub relay_mean: f64,
    /// Raw transmissions (summed over seeds, for reference).
    pub transmissions: u64,
}

/// One labelled curve of seed-averaged points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Curve label.
    pub name: &'static str,
    /// Points in sweep order.
    pub points: Vec<MeasuredPoint>,
}

fn average(x: f64, reports: &[RunReport]) -> MeasuredPoint {
    let n = reports.len().max(1) as f64;
    MeasuredPoint {
        x,
        traffic_per_min: reports
            .iter()
            .map(RunReport::traffic_per_minute)
            .sum::<f64>()
            / n,
        latency_s: reports
            .iter()
            .map(RunReport::mean_latency_secs)
            .sum::<f64>()
            / n,
        latency_p95_s: reports
            .iter()
            .map(|r| r.latency.percentile(0.95).as_secs_f64())
            .sum::<f64>()
            / n,
        fail_rate: reports.iter().map(RunReport::failure_rate).sum::<f64>() / n,
        stale_frac: reports
            .iter()
            .map(|r| 1.0 - r.audit.fresh_fraction())
            .sum::<f64>()
            / n,
        relay_mean: reports.iter().map(|r| r.relay_gauge.mean()).sum::<f64>() / n,
        transmissions: reports.iter().map(|r| r.traffic.transmissions()).sum(),
    }
}

/// Runs every job on a pool of OS threads and returns the results in
/// job order.
///
/// This is the sweep executor shared by [`sweep`] and the `matrix`
/// runner: jobs are pulled off a shared atomic index, so threads stay
/// busy regardless of how unevenly the jobs are sized, and each result
/// is written back to its job's slot, so the output order is
/// deterministic no matter which thread ran what.
pub fn run_parallel<J, R, F>(jobs: &[J], run: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..jobs.len()).map(|_| None).collect());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(jobs.len().max(1)) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(job) = jobs.get(i) else {
                    break;
                };
                let result = run(job);
                results.lock().expect("no panics hold the lock")[i] = Some(result);
            });
        }
    });
    results
        .into_inner()
        .expect("threads joined")
        .into_iter()
        .map(|r| r.expect("every job slot filled"))
        .collect()
}

/// Runs a full sweep: for every strategy and every x value, `configure`
/// derives the scenario from a paper-default config, runs `opts.seeds`
/// seeds, and the results are seed-averaged into one [`Series`] per
/// strategy.
///
/// Runs execute in parallel across OS threads (each run is a fully
/// independent deterministic world).
pub fn sweep<F>(
    strategies: &[StrategySpec],
    xs: &[f64],
    opts: RunOptions,
    configure: F,
) -> Vec<Series>
where
    F: Fn(&mut WorldConfig, f64) + Sync,
{
    // Build the flat job list: (strategy index, x index, seed).
    let mut jobs = Vec::new();
    for (si, spec) in strategies.iter().enumerate() {
        for (xi, &x) in xs.iter().enumerate() {
            for s in 0..opts.seeds {
                jobs.push((si, xi, x, *spec, opts.base_seed + s));
            }
        }
    }
    let reports = run_parallel(&jobs, |&(_, _, x, spec, seed)| {
        let mut cfg = WorldConfig::paper_default(seed);
        cfg.sim_time = opts.sim_time;
        cfg.warmup = opts.warmup;
        cfg.strategy = spec.strategy;
        cfg.level_mix = spec.mix;
        configure(&mut cfg, x);
        World::new(cfg).run()
    });
    let mut results: Vec<Vec<Vec<RunReport>>> = vec![vec![Vec::new(); xs.len()]; strategies.len()];
    for (&(si, xi, ..), report) in jobs.iter().zip(reports) {
        results[si][xi].push(report);
    }
    strategies
        .iter()
        .enumerate()
        .map(|(si, spec)| Series {
            name: spec.name,
            points: xs
                .iter()
                .enumerate()
                .map(|(xi, &x)| average(x, &results[si][xi]))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_strategy_set_is_complete() {
        let specs = paper_strategies();
        let names: Vec<_> = specs.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec!["Pull", "Push", "RPCC(SC)", "RPCC(DC)", "RPCC(WC)", "RPCC(HY)"]
        );
    }

    #[test]
    fn sweep_runs_every_point_and_averages() {
        let strategies = [StrategySpec {
            name: "Pull",
            strategy: Strategy::Pull,
            mix: LevelMix::strong_only(),
        }];
        let mut opts = RunOptions::smoke();
        opts.sim_time = SimDuration::from_mins(6);
        opts.warmup = SimDuration::from_mins(1);
        let xs = [10.0, 20.0];
        let series = sweep(&strategies, &xs, opts, |cfg, x| {
            cfg.n_peers = 10;
            cfg.c_num = 3;
            cfg.terrain = mp2p_mobility::Terrain::new(600.0, 600.0);
            cfg.i_query = SimDuration::from_secs(x as u64);
        });
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].points.len(), 2);
        for p in &series[0].points {
            assert!(p.transmissions > 0, "pull must generate traffic");
        }
        // Longer query interval ⇒ less pull traffic.
        assert!(series[0].points[0].traffic_per_min > series[0].points[1].traffic_per_min);
    }
}
