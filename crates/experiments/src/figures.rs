//! The paper's figures and table as concrete sweeps.

use mp2p_rpcc::{LevelMix, Strategy, WorkloadMode, WorldConfig};
use mp2p_sim::SimDuration;

use crate::sweep::{paper_strategies, sweep, RunOptions, Series, StrategySpec};

/// A regenerated figure: labelled series over a labelled x axis.
#[derive(Debug, Clone)]
pub struct FigureData {
    /// Figure id as in the paper ("Fig 7(a)" …).
    pub id: &'static str,
    /// What the paper's caption says it shows.
    pub caption: &'static str,
    /// X-axis label.
    pub x_label: &'static str,
    /// The measured curves.
    pub series: Vec<Series>,
}

/// Table 1 of the paper, as (parameter, description, default) rows taken
/// from the live configuration (so the table can never drift from the
/// code).
pub fn table1_rows() -> Vec<Vec<String>> {
    let cfg = WorldConfig::paper_default(0);
    let p = &cfg.proto;
    let row = |name: &str, desc: &str, value: String| vec![name.into(), desc.into(), value];
    vec![
        row(
            "N_Peers",
            "Number of peers in the network",
            cfg.n_peers.to_string(),
        ),
        row(
            "T_Area",
            "Physical terrain dimension of the network",
            format!(
                "{:.1}km*{:.1}km",
                cfg.terrain.width() / 1_000.0,
                cfg.terrain.height() / 1_000.0
            ),
        ),
        row(
            "C_Num",
            "Cache number of each mobile host",
            cfg.c_num.to_string(),
        ),
        row(
            "C_Range",
            "Communication range of mobile hosts",
            format!("{:.0}m", cfg.range),
        ),
        row("T_Sim", "Simulation time", format!("{}", cfg.sim_time)),
        row(
            "I_Update",
            "Average interval of data item update",
            format!("{}", cfg.i_update),
        ),
        row(
            "I_Query",
            "Average interval of query requests",
            format!("{}", cfg.i_query),
        ),
        row(
            "TTL_BR",
            "TTL of broadcast message in simple push/pull",
            format!("{} hops", p.broadcast_ttl),
        ),
        row(
            "",
            "TTL of invalidation message in RPCC",
            format!("{} hops", p.invalidation_ttl),
        ),
        row(
            "TTN_OP",
            "TTN of data item at owner peer",
            format!("{}", p.ttn),
        ),
        row(
            "TTR_RP",
            "TTR of data item at relay peer",
            format!("{}", p.ttr),
        ),
        row(
            "TTP_CP",
            "TTP of data item at cache peer",
            format!("{}", p.ttp),
        ),
        row(
            "I_Switch",
            "Switching interval of each peer",
            cfg.i_switch
                .map(|d| format!("{d}"))
                .unwrap_or_else(|| "off".into()),
        ),
        row(
            "mu_CAR",
            "Threshold of CAR (Eq. 4.2.3)",
            format!("{}", p.mu_car),
        ),
        row(
            "mu_CS",
            "Threshold of CS (Eq. 4.2.6)",
            format!("{}", p.mu_cs),
        ),
        row(
            "mu_CE",
            "Threshold of CE (Eq. 4.2.7)",
            format!("{}", p.mu_ce),
        ),
        row(
            "omega",
            "Weighting parameter of recent/history values",
            format!("{}", p.omega),
        ),
    ]
}

/// The update-interval sweep shared by Fig. 7(a) and Fig. 8(a):
/// `I_Update` ∈ {0.5, 1, 2, 4, 8} minutes.
fn update_interval_sweep(opts: RunOptions) -> Vec<Series> {
    let xs = [0.5, 1.0, 2.0, 4.0, 8.0];
    sweep(&paper_strategies(), &xs, opts, |cfg, x| {
        cfg.i_update = SimDuration::from_secs_f64(x * 60.0);
    })
}

/// The query-interval sweep shared by Fig. 7(b) and Fig. 8(b):
/// `I_Query` ∈ {5, 10, 20, 40, 80} seconds.
fn query_interval_sweep(opts: RunOptions) -> Vec<Series> {
    let xs = [5.0, 10.0, 20.0, 40.0, 80.0];
    sweep(&paper_strategies(), &xs, opts, |cfg, x| {
        cfg.i_query = SimDuration::from_secs_f64(x);
    })
}

/// The cache-number sweep shared by Fig. 7(c) and Fig. 8(c):
/// `C_Num` ∈ {2, 5, 10, 15, 20}.
fn cache_number_sweep(opts: RunOptions) -> Vec<Series> {
    let xs = [2.0, 5.0, 10.0, 15.0, 20.0];
    sweep(&paper_strategies(), &xs, opts, |cfg, x| {
        cfg.c_num = x as usize;
    })
}

/// Fig. 7(a): network traffic vs. data-update interval.
pub fn fig7a(opts: RunOptions) -> FigureData {
    FigureData {
        id: "Fig 7(a)",
        caption: "Network traffic under different update intervals",
        x_label: "update interval (min)",
        series: update_interval_sweep(opts),
    }
}

/// Fig. 7(b): network traffic vs. query-request interval.
pub fn fig7b(opts: RunOptions) -> FigureData {
    FigureData {
        id: "Fig 7(b)",
        caption: "Network traffic under different query intervals",
        x_label: "query interval (s)",
        series: query_interval_sweep(opts),
    }
}

/// Fig. 7(c): network traffic vs. cache number.
pub fn fig7c(opts: RunOptions) -> FigureData {
    FigureData {
        id: "Fig 7(c)",
        caption: "Network traffic under different cache numbers",
        x_label: "cache number",
        series: cache_number_sweep(opts),
    }
}

/// Fig. 8(a): query latency vs. data-update interval.
pub fn fig8a(opts: RunOptions) -> FigureData {
    FigureData {
        id: "Fig 8(a)",
        caption: "Query latency under different update intervals (log scale in the paper)",
        x_label: "update interval (min)",
        series: update_interval_sweep(opts),
    }
}

/// Fig. 8(b): query latency vs. query-request interval.
pub fn fig8b(opts: RunOptions) -> FigureData {
    FigureData {
        id: "Fig 8(b)",
        caption: "Query latency under different query intervals (log scale in the paper)",
        x_label: "query interval (s)",
        series: query_interval_sweep(opts),
    }
}

/// Fig. 8(c): query latency vs. cache number.
pub fn fig8c(opts: RunOptions) -> FigureData {
    FigureData {
        id: "Fig 8(c)",
        caption: "Query latency under different cache numbers (log scale in the paper)",
        x_label: "cache number",
        series: cache_number_sweep(opts),
    }
}

/// Fig. 9: impact of the invalidation-message TTL (1–7 hops) on RPCC(SC),
/// with simple push and pull as flat references. Uses the paper's
/// single-item scenario: "one peer is randomly selected as the source
/// host and its data item is cached by all other peers."
///
/// One [`FigureData`] carries both panels: read `traffic_per_min` for
/// Fig. 9(a) and `latency_s` for Fig. 9(b).
pub fn fig9(opts: RunOptions) -> FigureData {
    let xs: Vec<f64> = (1..=7).map(|t| t as f64).collect();
    let rpcc = [StrategySpec {
        name: "RPCC(SC)",
        strategy: Strategy::Rpcc,
        mix: LevelMix::strong_only(),
    }];
    let mut series = sweep(&rpcc, &xs, opts, |cfg, x| {
        cfg.workload = WorkloadMode::SingleItem;
        cfg.proto.invalidation_ttl = x as u8;
    });
    // Push and pull ignore the invalidation TTL; run each once and
    // replicate the point across the axis as the paper's reference lines.
    for spec in [
        StrategySpec {
            name: "Push",
            strategy: Strategy::Push,
            mix: LevelMix::strong_only(),
        },
        StrategySpec {
            name: "Pull",
            strategy: Strategy::Pull,
            mix: LevelMix::strong_only(),
        },
    ] {
        let one = sweep(&[spec], &[0.0], opts, |cfg, _| {
            cfg.workload = WorkloadMode::SingleItem;
        });
        let base = one.into_iter().next().expect("one series");
        let point = base.points[0];
        series.push(Series {
            name: spec.name,
            points: xs
                .iter()
                .map(|&x| crate::sweep::MeasuredPoint { x, ..point })
                .collect(),
        });
    }
    FigureData {
        id: "Fig 9",
        caption: "Impact of invalidation TTL: (a) network traffic, (b) query latency",
        x_label: "TTL (hops)",
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_defaults() {
        let rows = table1_rows();
        let find = |name: &str| {
            rows.iter()
                .find(|r| r[0] == name)
                .unwrap_or_else(|| panic!("row {name} missing"))[2]
                .clone()
        };
        assert_eq!(find("N_Peers"), "50");
        assert_eq!(find("T_Area"), "1.5km*1.5km");
        assert_eq!(find("C_Num"), "10");
        assert_eq!(find("C_Range"), "250m");
        assert_eq!(find("I_Update"), "2min");
        assert_eq!(find("I_Query"), "20.000s");
        assert_eq!(find("TTL_BR"), "8 hops");
        assert_eq!(find("TTN_OP"), "2min");
        assert_eq!(find("TTP_CP"), "4min");
        assert_eq!(find("I_Switch"), "5min");
        assert_eq!(find("mu_CAR"), "0.15");
        assert_eq!(find("omega"), "0.2");
    }
}
