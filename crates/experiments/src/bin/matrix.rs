//! Scenario-matrix observatory: sweep the scenario corpus across every
//! strategy × seed cell, emit per-cell snapshots, print the fleet
//! scorecard, and gate regressions against a committed baseline.
//!
//! ```text
//! matrix [--scenarios DIR] [--only NAME] [--smoke] [--out DIR] [--json FILE]
//! matrix --baseline MATRIX_BASELINE.json [--tolerance T] [--wall-tolerance W] ...
//! ```
//!
//! Sweep mode loads every `*.toml` under `--scenarios` (default
//! `scenarios/`), runs each scenario's strategy × seed cells in parallel
//! with profiling on, writes one schema-versioned
//! `MATRIX_<scenario>_<strategy>_s<seed>.json` per cell plus a combined
//! `MATRIX_REPORT.json` under `--out` (default `results/matrix`), and
//! prints the fleet scorecard. Every written cell file is read back and
//! re-parsed, so a malformed snapshot can never reach disk silently.
//! Cells are also checked against their scenario's absolute `[gates]`
//! floors; a violation exits 1.
//!
//! `--smoke` shrinks the sweep for CI: the first two scenarios by name,
//! first two strategies and first seed of each, with the horizon cut to
//! six simulated minutes (90 s warm-up).
//!
//! Baseline mode additionally reloads a committed [`MatrixReport`] and
//! compares every baseline cell on **three axes** — events/sec,
//! fresh fraction, p95 latency. Any cell regressing on any axis prints
//! a diff row naming the offending axis and exits 1. `--tolerance`
//! (default 0.02) bounds the two deterministic axes; `--wall-tolerance`
//! (default 0.5) separately bounds the wall-clock throughput axis.
//! Mismatched cell identities exit 2: numbers from different scenarios
//! are never compared.
//!
//! [`MatrixReport`]: mp2p_experiments::MatrixReport

use std::path::{Path, PathBuf};

use mp2p_experiments::matrix::{compare_matrix, gate_violations, run_matrix, MatrixReport};
use mp2p_experiments::scenario::Scenario;
use mp2p_experiments::{cli, render_table};
use mp2p_sim::SimDuration;

struct Options {
    scenario_dir: PathBuf,
    only: Option<String>,
    smoke: bool,
    out_dir: PathBuf,
    json: Option<PathBuf>,
    baseline: Option<PathBuf>,
    tolerance: f64,
    wall_tolerance: f64,
}

fn parse_options() -> Result<Options, String> {
    let args = cli::Args::from_env();
    if args.flag("--help") || args.flag("-h") {
        return Err("see the module docs at the top of matrix.rs for the flag list".into());
    }
    Ok(Options {
        scenario_dir: args
            .value_of("--scenarios")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("scenarios")),
        only: args.value_of("--only").map(str::to_owned),
        smoke: args.flag("--smoke"),
        out_dir: args
            .value_of("--out")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results/matrix")),
        json: args.value_of("--json").map(PathBuf::from),
        baseline: args.value_of("--baseline").map(PathBuf::from),
        tolerance: args.f64_of("--tolerance")?.unwrap_or(0.02),
        wall_tolerance: args.f64_of("--wall-tolerance")?.unwrap_or(0.5),
    })
}

/// Loads the corpus and applies `--only` / `--smoke` trimming.
fn load_corpus(opts: &Options) -> Result<Vec<Scenario>, String> {
    let mut scenarios = Scenario::load_dir(&opts.scenario_dir)?;
    if let Some(only) = &opts.only {
        scenarios.retain(|s| &s.name == only);
        if scenarios.is_empty() {
            return Err(format!(
                "no scenario named {only:?} under {}",
                opts.scenario_dir.display()
            ));
        }
    }
    if scenarios.is_empty() {
        return Err(format!(
            "no *.toml scenarios under {}",
            opts.scenario_dir.display()
        ));
    }
    if opts.smoke {
        scenarios.truncate(2);
        for s in &mut scenarios {
            s.strategies.truncate(2);
            s.seeds.truncate(1);
            s.sim_secs = SimDuration::from_mins(6).as_secs_f64();
            s.warmup_secs = SimDuration::from_secs(90).as_secs_f64();
        }
    }
    Ok(scenarios)
}

/// Writes one cell snapshot and re-parses the written bytes, so a
/// malformed file fails the run instead of poisoning later gates.
fn write_cell(dir: &Path, cell: &mp2p_experiments::MatrixCell) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join(format!(
        "MATRIX_{}_{}_s{}.json",
        cell.scenario, cell.strategy, cell.seed
    ));
    std::fs::write(&path, cell.to_json())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    let back = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot re-read {}: {e}", path.display()))?;
    let parsed = mp2p_experiments::MatrixCell::from_json(&back)
        .map_err(|e| format!("{} is not well-formed: {e}", path.display()))?;
    if &parsed != cell {
        return Err(format!("{} does not round-trip", path.display()));
    }
    Ok(path)
}

const SCORECARD_HEADER: [&str; 9] = [
    "cell", "fresh", "stale", "blame", "lat ms", "p95 ms", "tx/min", "fail %", "kev/s",
];

fn scorecard(report: &MatrixReport) -> String {
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|c| {
            vec![
                c.key(),
                format!("{:.4}", c.fresh_fraction),
                c.stale_served.to_string(),
                c.dominant_blame.clone(),
                format!("{:.0}", c.mean_latency_secs * 1000.0),
                format!("{:.0}", c.p95_latency_secs * 1000.0),
                format!("{:.0}", c.traffic_per_min),
                format!("{:.1}", c.failure_rate * 100.0),
                format!("{:.0}", c.events_per_sec / 1000.0),
            ]
        })
        .collect();
    render_table(&SCORECARD_HEADER, &rows)
}

const DIFF_HEADER: [&str; 4] = ["cell", "axis", "baseline/limit", "measured"];

fn diff_table(regressions: &[mp2p_experiments::CellRegression]) -> String {
    let rows: Vec<Vec<String>> = regressions
        .iter()
        .map(|r| {
            vec![
                r.cell.clone(),
                r.axis.label().to_owned(),
                format!("{:.4} (limit {:.4})", r.baseline, r.limit),
                format!("{:.4}", r.measured),
            ]
        })
        .collect();
    render_table(&DIFF_HEADER, &rows)
}

/// Runs the sweep and all gates. `Ok(true)` = pass, `Ok(false)` = at
/// least one gate tripped (exit 1), `Err` = usage/IO error (exit 2).
fn run(opts: &Options) -> Result<bool, String> {
    let scenarios = load_corpus(opts)?;
    let cells_expected: usize = scenarios
        .iter()
        .map(|s| s.strategies.len() * s.seeds.len())
        .sum();
    println!(
        "Sweeping {} scenario(s), {} cell(s){}...",
        scenarios.len(),
        cells_expected,
        if opts.smoke { " [smoke]" } else { "" },
    );
    let report = run_matrix(&scenarios, true);
    for cell in &report.cells {
        let path = write_cell(&opts.out_dir, cell)?;
        println!("{} -> {}", cell.key(), path.display());
    }
    let report_path = opts.out_dir.join("MATRIX_REPORT.json");
    std::fs::write(&report_path, report.to_json())
        .map_err(|e| format!("cannot write {}: {e}", report_path.display()))?;
    println!("fleet report -> {}", report_path.display());
    if let Some(path) = &opts.json {
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("fleet report -> {}", path.display());
    }
    print!("{}", scorecard(&report));

    let mut pass = true;
    let floors = gate_violations(&scenarios, &report);
    if !floors.is_empty() {
        pass = false;
        println!("\nGATE FLOOR VIOLATIONS ({}):", floors.len());
        print!("{}", diff_table(&floors));
    }
    if let Some(path) = &opts.baseline {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        let baseline = MatrixReport::from_json(&text)
            .map_err(|e| format!("baseline {}: {e}", path.display()))?;
        let regressions = compare_matrix(&baseline, &report, opts.tolerance, opts.wall_tolerance)?;
        if regressions.is_empty() {
            println!(
                "\nPASS: all {} baseline cell(s) within tolerance ({:.0}% deterministic, {:.0}% wall-clock)",
                baseline.cells.len(),
                opts.tolerance * 100.0,
                opts.wall_tolerance * 100.0,
            );
        } else {
            pass = false;
            println!("\nREGRESSIONS ({}):", regressions.len());
            print!("{}", diff_table(&regressions));
        }
    }
    Ok(pass)
}

fn main() {
    let opts = match parse_options() {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    match run(&opts) {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
