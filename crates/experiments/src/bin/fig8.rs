//! Regenerates Fig. 8 (query latency): `fig8 [a|b|c] [--full]`.
//!
//! The paper plots these in log scale; the table prints seconds.

use std::path::PathBuf;

use mp2p_experiments::{
    fig8a, fig8b, fig8c, render_series_table, write_csv, FigureData, RunOptions,
};

fn emit(fig: FigureData) {
    println!("\n{} — {}", fig.id, fig.caption);
    print!(
        "{}",
        render_series_table(fig.x_label, &fig.series, |p| p.latency_s, "s")
    );
    println!("(mean query latency over served queries)");
    let file = PathBuf::from("results").join(format!(
        "{}.csv",
        fig.id.to_lowercase().replace([' ', '(', ')'], "")
    ));
    match write_csv(&file, fig.id, &fig.series) {
        Ok(()) => println!("wrote {}", file.display()),
        Err(e) => eprintln!("could not write {}: {e}", file.display()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let opts = if full {
        RunOptions::full()
    } else {
        RunOptions::quick()
    };
    let panel = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str);
    match panel {
        Some("a") => emit(fig8a(opts)),
        Some("b") => emit(fig8b(opts)),
        Some("c") => emit(fig8c(opts)),
        None => {
            emit(fig8a(opts));
            emit(fig8b(opts));
            emit(fig8c(opts));
        }
        Some(other) => {
            eprintln!("unknown panel {other:?}; use a, b or c");
            std::process::exit(2);
        }
    }
}
